#include "relational/query_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "obs/metrics.h"
#include "relational/column_batch.h"

namespace dbre {
namespace {

// Dictionary streams run after the paged source verified clean at open; a
// failure here is a real environment fault and the memoizing entry points
// have no error channel (see the contract in relational/paged_source.h).
void CheckDictStream(const Status& status) {
  if (status.ok()) return;
  std::fprintf(stderr,
               "dbre: unrecoverable paged dictionary stream failure: %s\n",
               status.ToString().c_str());
  std::abort();
}

// Hit/miss counter pair for one memoized result kind. Call sites hold the
// pair in a function-local static so the hot path is two relaxed atomics,
// no registry lookup.
struct HitMiss {
  obs::Counter* hits;
  obs::Counter* misses;
  void Count(bool hit) const { (hit ? hits : misses)->Add(1); }
};

HitMiss CacheCounters(const char* kind) {
  obs::Registry& registry = obs::Registry::Default();
  return {registry.GetCounter(
              "dbre_query_cache_hits_total", {{"kind", kind}},
              "Query-cache lookups served from a memoized result"),
          registry.GetCounter(
              "dbre_query_cache_misses_total", {{"kind", kind}},
              "Query-cache lookups that had to build their result")};
}

// Open-addressing group table over precomputed 64-bit row hashes; slot
// collisions fall back to comparing against the group's representative
// code tuple. Fixed capacity (at most one group per row), linear probing,
// no rehash — the multi-column partition builder's replacement for a
// node-based unordered_map, fed batch-at-a-time with the hashes computed
// by the vectorized kernels. Storing groups rather than rows keeps probes
// away from the code columns entirely, so the builder streams pages in
// paged mode without random re-reads.
class GroupTable {
 public:
  explicit GroupTable(size_t expected) {
    int bits = flat_hash_internal::CapacityBits(expected);
    shift_ = 64 - bits;
    mask_ = (size_t{1} << bits) - 1;
    slot_group_.assign(size_t{1} << bits, kEmpty);
  }

  void Prefetch(uint64_t hash) const {
    __builtin_prefetch(slot_group_.data() + Start(hash));
  }

  // Group whose representative codes equal the current row's (per `same`),
  // inserting `fresh` if unseen. `same(group)` compares the current row's
  // projected codes against `group`'s representative tuple.
  template <typename SameGroup>
  uint32_t FindOrInsert(uint64_t hash, uint32_t fresh,
                        const SameGroup& same) {
    size_t i = Start(hash);
    while (slot_group_[i] != kEmpty) {
      if (same(slot_group_[i])) return slot_group_[i];
      i = (i + 1) & mask_;
    }
    slot_group_[i] = fresh;
    return fresh;
  }

 private:
  // Group ids are at most the row count, which Table::query_cache() caps
  // below kNullCode == UINT32_MAX, so the sentinel never collides.
  static constexpr uint32_t kEmpty = UINT32_MAX;

  size_t Start(uint64_t hash) const {
    return (hash * flat_hash_internal::kMultiplier) >> shift_;
  }

  int shift_;
  size_t mask_;
  std::vector<uint32_t> slot_group_;
};

}  // namespace

std::unique_ptr<QueryCache> QueryCache::BuildDelta(
    QueryCache& base, size_t base_rows,
    std::shared_ptr<const std::vector<ValueVector>> rows,
    std::vector<DataType> types,
    const std::vector<size_t>& updated_columns) {
  static const HitMiss counters = CacheCounters("delta_build");
  auto cache = std::make_unique<QueryCache>(
      EncodedTable(std::move(rows), std::move(types)));
  const size_t new_rows = cache->encoded_.num_rows();
  const auto touched = [&updated_columns](size_t c) {
    return std::binary_search(updated_columns.begin(), updated_columns.end(),
                              c);
  };
  std::lock_guard<std::mutex> lock(base.mutex_);
  if (base.encoded_.paged() || new_rows < base_rows) {
    // Nothing reusable: a paged base has no in-memory codes to extend, and
    // a shrunk extension invalidates row-positional state wholesale. The
    // fresh cache encodes cold on demand.
    counters.Count(false);
    return cache;
  }
  counters.Count(true);
  for (size_t c = 0; c < cache->encoded_.num_columns(); ++c) {
    if (touched(c) || c >= base.encoded_.num_columns()) continue;
    if (!base.encoded_.column_ready(c)) continue;
    cache->encoded_.ExtendColumnFrom(base.encoded_, c, base_rows);
  }
  if (new_rows != base_rows) return cache;
  // Pure in-place update: row count and untouched columns are unchanged,
  // so every memo keyed only by untouched columns is still exact. (With
  // appended rows none carry over — partitions are row-positional and the
  // single-column NULL group id shifts when the dictionary grows.)
  const auto untouched = [&](const std::vector<size_t>& columns) {
    for (size_t c : columns) {
      if (touched(c)) return false;
    }
    return true;
  };
  for (const auto& [key, value] : base.partitions_) {
    if (untouched(key.first)) cache->partitions_.emplace(key, value);
  }
  for (const auto& [key, value] : base.distinct_sets_) {
    if (untouched(key)) cache->distinct_sets_.emplace(key, value);
  }
  for (const auto& [key, value] : base.dictionary_sets_) {
    if (!touched(key)) cache->dictionary_sets_.emplace(key, value);
  }
  for (const auto& [key, value] : base.int64_dictionary_sets_) {
    if (!touched(key)) cache->int64_dictionary_sets_.emplace(key, value);
  }
  for (const auto& [key, value] : base.dictionary_keys_) {
    if (!touched(key)) cache->dictionary_keys_.emplace(key, value);
  }
  for (const auto& [key, value] : base.column_sketches_) {
    if (!touched(key)) cache->column_sketches_.emplace(key, value);
  }
  for (const auto& [key, value] : base.projection_sketches_) {
    if (untouched(key)) cache->projection_sketches_.emplace(key, value);
  }
  for (const auto& [key, value] : base.fd_verdicts_) {
    if (untouched(key.first) && untouched(key.second)) {
      cache->fd_verdicts_.emplace(key, value);
    }
  }
  for (const auto& [key, value] : base.fd_errors_) {
    if (untouched(key.first) && untouched(key.second)) {
      cache->fd_errors_.emplace(key, value);
    }
  }
  return cache;
}

std::shared_ptr<const CodePartition> QueryCache::BuildPartition(
    const std::vector<size_t>& columns, NullPolicy policy) const {
  auto partition = std::make_shared<CodePartition>();
  const size_t num_rows = encoded_.num_rows();
  partition->group_of_row.assign(num_rows, CodePartition::kSkipped);

  if (columns.size() == 1) {
    // Single column: codes already are dense group ids; under kNullAsValue
    // the NULL rows — if any — form one extra group appended after the
    // dictionary.
    EncodedTable::CodeReader reader = encoded_.codes_reader(columns[0]);
    const uint32_t dict_size =
        static_cast<uint32_t>(encoded_.dict_size(columns[0]));
    const bool nulls_group = policy == NullPolicy::kNullAsValue &&
                             encoded_.has_null(columns[0]);
    partition->representative.assign(dict_size + (nulls_group ? 1 : 0),
                                     CodePartition::kSkipped);
    batch::BatchIterator single_batches(num_rows);
    size_t start = 0;
    size_t count = 0;
    while (single_batches.Next(&start, &count)) {
      const uint32_t* codes = reader.Fetch(start, count);
      for (size_t i = 0; i < count; ++i) {
        uint32_t code = codes[i];
        if (code == EncodedTable::kNullCode) {
          if (!nulls_group) continue;
          code = dict_size;
        }
        const size_t row = start + i;
        partition->group_of_row[row] = code;
        ++partition->included_rows;
        if (partition->representative[code] == CodePartition::kSkipped) {
          partition->representative[code] = static_cast<uint32_t>(row);
        }
      }
    }
    return partition;
  }

  // Multi-column: hash each row's code tuple batch-at-a-time (vectorized
  // kernels over the flat code batches), then group through an open-
  // addressing table. Rows insert in row order, so group ids keep the
  // first-appearance numbering the deterministic paths rely on. Collision
  // probes compare against `rep_codes` — each group's representative tuple,
  // captured at insertion — so grouping never re-reads earlier rows and the
  // code columns stream strictly forward (one pass over each page in paged
  // mode).
  const size_t width = columns.size();
  std::vector<EncodedTable::CodeReader> readers;
  readers.reserve(width);
  for (size_t c : columns) readers.push_back(encoded_.codes_reader(c));
  std::vector<const uint32_t*> batch_codes(width);
  std::vector<uint32_t> rep_codes;  // width entries per group
  size_t cur = 0;                   // batch-local index being grouped
  const auto same_group = [&](uint32_t group) {
    const uint32_t* rep = rep_codes.data() + size_t{group} * width;
    for (size_t k = 0; k < width; ++k) {
      if (rep[k] != batch_codes[k][cur]) return false;
    }
    return true;
  };

  GroupTable groups(num_rows);
  uint64_t hashes[batch::kBatchSize];
  uint8_t valid[batch::kBatchSize];
  batch::BatchIterator batches(num_rows);
  size_t start = 0;
  size_t count = 0;
  while (batches.Next(&start, &count)) {
    for (size_t k = 0; k < width; ++k) {
      batch_codes[k] = readers[k].Fetch(start, count);
    }
    for (size_t i = 0; i < count; ++i) hashes[i] = kRowHashSeed;
    for (size_t i = 0; i < count; ++i) valid[i] = 1;
    for (size_t k = 0; k < width; ++k) {
      const uint32_t* c = batch_codes[k];
      for (size_t i = 0; i < count; ++i) {
        hashes[i] = SketchHashCombine(hashes[i], c[i]);
        valid[i] &= c[i] != EncodedTable::kNullCode ? 1 : 0;
      }
    }
    const bool skip_nulls = policy == NullPolicy::kSkipNullRows;
    for (size_t i = 0; i < count; ++i) {
      if (skip_nulls && !valid[i]) continue;
      groups.Prefetch(hashes[i]);
    }
    for (size_t i = 0; i < count; ++i) {
      if (skip_nulls && !valid[i]) continue;
      cur = i;
      const uint32_t row = static_cast<uint32_t>(start + i);
      const uint32_t fresh =
          static_cast<uint32_t>(partition->representative.size());
      const uint32_t group = groups.FindOrInsert(hashes[i], fresh, same_group);
      if (group == fresh) {
        partition->representative.push_back(row);
        for (size_t k = 0; k < width; ++k) {
          rep_codes.push_back(batch_codes[k][i]);
        }
      }
      partition->group_of_row[row] = group;
      ++partition->included_rows;
    }
    batch::AddKernelRows(batch::Kernel::kPartition, count);
  }
  return partition;
}

void QueryCache::EnsureColumnsLocked(const std::vector<size_t>& columns) {
  for (size_t c : columns) encoded_.EnsureColumn(c);
}

void QueryCache::EnsureEncoded(const std::vector<size_t>& columns) {
  std::lock_guard<std::mutex> lock(mutex_);
  EnsureColumnsLocked(columns);
}

bool QueryCache::ColumnHasNull(size_t column) {
  std::lock_guard<std::mutex> lock(mutex_);
  encoded_.EnsureColumn(column);
  return encoded_.has_null(column);
}

std::shared_ptr<const ValueSet> QueryCache::DictionarySet(size_t column) {
  static const HitMiss counters = CacheCounters("dictionary_set");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = dictionary_sets_.find(column);
  counters.Count(it != dictionary_sets_.end());
  if (it != dictionary_sets_.end()) return it->second;
  encoded_.EnsureColumn(column);
  auto set = std::make_shared<ValueSet>();
  set->reserve(encoded_.dict_size(column));
  CheckDictStream(encoded_.ForEachDictValue(
      column, [&set](uint32_t, const Value& value) { set->insert(value); }));
  dictionary_sets_.emplace(column, set);
  return set;
}

std::shared_ptr<const FlatSet64> QueryCache::Int64DictionarySet(
    size_t column) {
  static const HitMiss counters = CacheCounters("int64_dictionary_set");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = int64_dictionary_sets_.find(column);
  counters.Count(it != int64_dictionary_sets_.end());
  if (it != int64_dictionary_sets_.end()) return it->second;
  encoded_.EnsureColumn(column);
  if (encoded_.declared_type(column) != DataType::kInt64 ||
      !encoded_.column_typed(column)) {
    return nullptr;
  }
  auto set = std::make_shared<FlatSet64>(encoded_.dict_size(column));
  CheckDictStream(encoded_.ForEachDictValue(
      column, [&set](uint32_t, const Value& value) {
        set->Insert(static_cast<uint64_t>(value.as_int()));
      }));
  int64_dictionary_sets_.emplace(column, set);
  return set;
}

std::shared_ptr<const CodePartition> QueryCache::Partition(
    const std::vector<size_t>& columns, NullPolicy policy) {
  static const HitMiss counters = CacheCounters("partition");
  PartitionKey key(columns, static_cast<int>(policy));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = partitions_.find(key);
  counters.Count(it != partitions_.end());
  if (it != partitions_.end()) return it->second;
  EnsureColumnsLocked(columns);
  std::shared_ptr<const CodePartition> partition =
      BuildPartition(columns, policy);
  partitions_.emplace(std::move(key), partition);
  return partition;
}

size_t QueryCache::DistinctCount(const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    encoded_.EnsureColumn(columns[0]);
    return encoded_.dict_size(columns[0]);
  }
  return Partition(columns, NullPolicy::kSkipNullRows)->num_groups();
}

std::shared_ptr<const ValueVectorSet> QueryCache::DistinctProjection(
    const std::vector<size_t>& columns) {
  static const HitMiss counters = CacheCounters("distinct_projection");
  std::shared_ptr<const CodePartition> partition =
      Partition(columns, NullPolicy::kSkipNullRows);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = distinct_sets_.find(columns);
  counters.Count(it != distinct_sets_.end());
  if (it != distinct_sets_.end()) return it->second;
  auto set = std::make_shared<ValueVectorSet>();
  set->reserve(partition->num_groups());
  EncodedTable::RowReader reader =
      encoded_.row_reader(std::vector<size_t>(columns));
  ValueVector sub_row;
  for (uint32_t row : partition->representative) {
    reader.Read(row, &sub_row);
    set->insert(std::move(sub_row));
  }
  distinct_sets_.emplace(columns, set);
  return set;
}

bool QueryCache::FdHolds(const std::vector<size_t>& lhs_columns,
                         const std::vector<size_t>& rhs_columns) {
  static const HitMiss counters = CacheCounters("fd_holds");
  const FdKey key(lhs_columns, rhs_columns);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fd_verdicts_.find(key);
    counters.Count(it != fd_verdicts_.end());
    if (it != fd_verdicts_.end()) return it->second;
  }
  const bool verdict = ComputeFdHolds(lhs_columns, rhs_columns);
  std::lock_guard<std::mutex> lock(mutex_);
  fd_verdicts_.emplace(key, verdict);
  return verdict;
}

bool QueryCache::ComputeFdHolds(const std::vector<size_t>& lhs_columns,
                                const std::vector<size_t>& rhs_columns) {
  std::shared_ptr<const CodePartition> lhs =
      Partition(lhs_columns, NullPolicy::kSkipNullRows);
  std::shared_ptr<const CodePartition> rhs =
      Partition(rhs_columns, NullPolicy::kNullAsValue);
  if (SketchesEnabled()) {
    // Exact distinct-count prunes over the memoized partition sizes; each
    // one is a proof, so the refinement pass below is skipped, not
    // approximated. (Gated only so the crosscheck tests can A/B the
    // routes; results are identical either way.)
    obs::Registry& registry = obs::Registry::Default();
    if (lhs->num_groups() == lhs->included_rows) {
      // Every LHS class is a singleton — nothing can disagree.
      static obs::Counter* const accepts = registry.GetCounter(
          "dbre_fd_fast_accepts_total", {{"kind", "unique_lhs"}},
          "FD checks accepted by exact distinct-count pruning");
      accepts->Add(1);
      return true;
    }
    if (rhs->num_groups() <= 1) {
      // A single RHS class can never split an LHS class.
      static obs::Counter* const accepts = registry.GetCounter(
          "dbre_fd_fast_accepts_total", {{"kind", "constant_rhs"}},
          "FD checks accepted by exact distinct-count pruning");
      accepts->Add(1);
      return true;
    }
    if (lhs->included_rows == encoded_.num_rows() &&
        rhs->num_groups() > lhs->num_groups()) {
      // With every row included on the left, π_{X∪A} refines both sides,
      // so |π_{X∪A}| ≥ |π_A| > |π_X| forces a split somewhere.
      static obs::Counter* const refutes = registry.GetCounter(
          "dbre_sketch_refutes_total", {{"kind", "fd_distinct"}},
          "Candidates refuted by a provable sketch/count pre-pass");
      refutes->Add(1);
      return false;
    }
  }
  // X → A holds iff every X-group maps into a single A-group, i.e.
  // |π_X| == |π_{X∪A}| over the non-NULL-X rows.
  constexpr uint32_t kUnseen = UINT32_MAX;
  std::vector<uint32_t> witness(lhs->num_groups(), kUnseen);
  const size_t num_rows = encoded_.num_rows();
  const uint32_t* lhs_groups = lhs->group_of_row.data();
  const uint32_t* rhs_groups = rhs->group_of_row.data();
  batch::BatchIterator batches(num_rows);
  size_t start = 0;
  size_t count = 0;
  while (batches.Next(&start, &count)) {
    // Per batch: detect a split branch-light, then locate it only if one
    // exists (the common all-consistent batch takes the flat path).
    uint32_t split = 0;
    for (size_t i = start; i < start + count; ++i) {
      uint32_t g = lhs_groups[i];
      if (g == CodePartition::kSkipped) continue;
      uint32_t r = rhs_groups[i];
      uint32_t& w = witness[g];
      w = w == kUnseen ? r : w;
      split |= w ^ r;
    }
    batch::AddKernelRows(batch::Kernel::kPartition, count);
    if (split != 0) return false;
  }
  return true;
}

double QueryCache::FdError(const std::vector<size_t>& lhs_columns,
                           const std::vector<size_t>& rhs_columns) {
  static const HitMiss counters = CacheCounters("fd_error");
  const FdKey key(lhs_columns, rhs_columns);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fd_errors_.find(key);
    counters.Count(it != fd_errors_.end());
    if (it != fd_errors_.end()) return it->second;
  }
  const double error = ComputeFdError(lhs_columns, rhs_columns);
  std::lock_guard<std::mutex> lock(mutex_);
  fd_errors_.emplace(key, error);
  return error;
}

double QueryCache::ComputeFdError(const std::vector<size_t>& lhs_columns,
                                  const std::vector<size_t>& rhs_columns) {
  std::shared_ptr<const CodePartition> lhs =
      Partition(lhs_columns, NullPolicy::kSkipNullRows);
  std::shared_ptr<const CodePartition> rhs =
      Partition(rhs_columns, NullPolicy::kNullAsValue);
  if (lhs->included_rows == 0) return 0.0;
  // Count each (X-group, A-group) pair through a flat map (pair key →
  // dense index into a count array), then keep the plurality A-group of
  // every X-group.
  const size_t num_rows = encoded_.num_rows();
  FlatMap64 pair_index(lhs->included_rows);
  std::vector<uint32_t> pair_group;
  std::vector<size_t> pair_count;
  const uint32_t* lhs_groups = lhs->group_of_row.data();
  const uint32_t* rhs_groups = rhs->group_of_row.data();
  for (size_t i = 0; i < num_rows; ++i) {
    uint32_t g = lhs_groups[i];
    if (g == CodePartition::kSkipped) continue;
    const uint64_t key = (static_cast<uint64_t>(g) << 32) | rhs_groups[i];
    const uint32_t fresh = static_cast<uint32_t>(pair_count.size());
    const uint32_t index = pair_index.FindOrInsert(key, fresh);
    if (index == fresh) {
      pair_group.push_back(g);
      pair_count.push_back(0);
    }
    ++pair_count[index];
  }
  batch::AddKernelRows(batch::Kernel::kPartition, num_rows);
  std::vector<size_t> best(lhs->num_groups(), 0);
  for (size_t p = 0; p < pair_count.size(); ++p) {
    if (pair_count[p] > best[pair_group[p]]) best[pair_group[p]] = pair_count[p];
  }
  size_t kept = 0;
  for (size_t b : best) kept += b;
  return static_cast<double>(lhs->included_rows - kept) /
         static_cast<double>(lhs->included_rows);
}

std::shared_ptr<const DictionaryKeys> QueryCache::DictKeys(size_t column) {
  static const HitMiss counters = CacheCounters("dict_keys");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = dictionary_keys_.find(column);
  counters.Count(it != dictionary_keys_.end());
  if (it != dictionary_keys_.end()) return it->second;
  encoded_.EnsureColumn(column);
  auto keys = std::make_shared<DictionaryKeys>();
  const size_t dict_size = encoded_.dict_size(column);
  keys->hashes.reserve(dict_size);
  const bool int64_typed = encoded_.column_typed(column) &&
                           encoded_.declared_type(column) == DataType::kInt64;
  if (int64_typed) keys->int64_keys.reserve(dict_size);
  CheckDictStream(encoded_.ForEachDictValue(
      column, [&keys, int64_typed](uint32_t, const Value& value) {
        keys->hashes.push_back(SketchHash(value));
        if (int64_typed) {
          keys->int64_keys.push_back(static_cast<uint64_t>(value.as_int()));
        }
      }));
  dictionary_keys_.emplace(column, keys);
  return keys;
}

std::shared_ptr<const ColumnSketch> QueryCache::ColumnSketchFor(
    size_t column) {
  static const HitMiss counters = CacheCounters("column_sketch");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = column_sketches_.find(column);
    counters.Count(it != column_sketches_.end());
    if (it != column_sketches_.end()) return it->second;
  }
  // Build outside the lock from the (memoized) flat keys, then publish.
  std::shared_ptr<const DictionaryKeys> keys = DictKeys(column);
  auto sketch = std::make_shared<ColumnSketch>(keys->hashes.size());
  for (uint64_t h : keys->hashes) {
    sketch->bloom.AddHash(h);
    sketch->hll.AddHash(h);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return column_sketches_.emplace(column, std::move(sketch)).first->second;
}

std::shared_ptr<const ColumnSketch> QueryCache::MaybeColumnSketch(
    size_t column) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = column_sketches_.find(column);
  return it != column_sketches_.end() ? it->second : nullptr;
}

std::shared_ptr<const ProjectionSketch> QueryCache::ProjectionSketchFor(
    const std::vector<size_t>& columns) {
  static const HitMiss counters = CacheCounters("projection_sketch");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = projection_sketches_.find(columns);
    counters.Count(it != projection_sketches_.end());
    if (it != projection_sketches_.end()) return it->second;
  }
  // Per-column value-hash tables make the row-hash pass decode-free.
  std::vector<std::shared_ptr<const DictionaryKeys>> keys;
  keys.reserve(columns.size());
  for (size_t c : columns) keys.push_back(DictKeys(c));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = projection_sketches_.find(columns);
  if (it != projection_sketches_.end()) return it->second;
  const size_t num_rows = encoded_.num_rows();
  auto sketch = std::make_shared<ProjectionSketch>(num_rows);
  std::vector<EncodedTable::CodeReader> readers;
  readers.reserve(columns.size());
  for (size_t c : columns) readers.push_back(encoded_.codes_reader(c));

  uint64_t hashes[batch::kBatchSize];
  uint8_t valid[batch::kBatchSize];
  batch::BatchIterator batches(num_rows);
  size_t start = 0;
  size_t count = 0;
  while (batches.Next(&start, &count)) {
    for (size_t i = 0; i < count; ++i) hashes[i] = kRowHashSeed;
    for (size_t i = 0; i < count; ++i) valid[i] = 1;
    for (size_t k = 0; k < columns.size(); ++k) {
      const uint32_t* c = readers[k].Fetch(start, count);
      const uint64_t* value_hash = keys[k]->hashes.data();
      for (size_t i = 0; i < count; ++i) {
        const bool null_cell = c[i] == EncodedTable::kNullCode;
        hashes[i] =
            SketchHashCombine(hashes[i], null_cell ? 0 : value_hash[c[i]]);
        valid[i] &= null_cell ? 0 : 1;
      }
    }
    for (size_t i = 0; i < count; ++i) {
      if (!valid[i]) continue;
      sketch->bloom.AddHash(hashes[i]);
      sketch->hll.AddHash(hashes[i]);
    }
    batch::AddKernelRows(batch::Kernel::kPartition, count);
  }
  return projection_sketches_.emplace(columns, std::move(sketch))
      .first->second;
}

bool QueryCache::HasDistinctProjection(const std::vector<size_t>& columns) {
  std::lock_guard<std::mutex> lock(mutex_);
  return distinct_sets_.find(columns) != distinct_sets_.end();
}

double QueryCache::EstimateDistinct(const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    encoded_.EnsureColumn(columns[0]);
    return static_cast<double>(encoded_.dict_size(columns[0]));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PartitionKey key(columns, static_cast<int>(NullPolicy::kSkipNullRows));
    auto it = partitions_.find(key);
    if (it != partitions_.end()) {
      return static_cast<double>(it->second->num_groups());
    }
  }
  return ProjectionSketchFor(columns)->hll.Estimate();
}

bool QueryCache::LookupJoinCounts(
    const std::shared_ptr<const QueryCache>& peer,
    const std::vector<size_t>& my_columns,
    const std::vector<size_t>& peer_columns, JoinCountsValue* out) {
  static const HitMiss counters = CacheCounters("join_counts");
  std::lock_guard<std::mutex> lock(mutex_);
  JoinMemoKey key(peer.get(), my_columns, peer_columns);
  auto it = join_memo_.find(key);
  if (it != join_memo_.end()) {
    // Guard against address reuse: the entry is valid only while the peer
    // cache object it was stored under is still alive at that address.
    if (it->second.peer.lock().get() == peer.get()) {
      counters.Count(true);
      *out = it->second.counts;
      return true;
    }
    join_memo_.erase(it);
  }
  counters.Count(false);
  return false;
}

void QueryCache::StoreJoinCounts(
    const std::shared_ptr<const QueryCache>& peer,
    const std::vector<size_t>& my_columns,
    const std::vector<size_t>& peer_columns, const JoinCountsValue& counts) {
  std::lock_guard<std::mutex> lock(mutex_);
  JoinMemoKey key(peer.get(), my_columns, peer_columns);
  join_memo_[key] = JoinMemoEntry{peer, counts};
}

}  // namespace dbre
