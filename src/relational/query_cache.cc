#include "relational/query_cache.h"

#include <unordered_map>

#include "obs/metrics.h"

namespace dbre {
namespace {

// Hit/miss counter pair for one memoized result kind. Call sites hold the
// pair in a function-local static so the hot path is two relaxed atomics,
// no registry lookup.
struct HitMiss {
  obs::Counter* hits;
  obs::Counter* misses;
  void Count(bool hit) const { (hit ? hits : misses)->Add(1); }
};

HitMiss CacheCounters(const char* kind) {
  obs::Registry& registry = obs::Registry::Default();
  return {registry.GetCounter(
              "dbre_query_cache_hits_total", {{"kind", kind}},
              "Query-cache lookups served from a memoized result"),
          registry.GetCounter(
              "dbre_query_cache_misses_total", {{"kind", kind}},
              "Query-cache lookups that had to build their result")};
}

// Hash/equality over the projected code tuple of a row, reading straight
// from the column arrays — no per-row key materialization.
struct RowKeyOps {
  const EncodedTable* encoded;
  const std::vector<size_t>* columns;

  size_t operator()(uint32_t row) const {  // hash
    size_t h = 14695981039346656037ULL;
    for (size_t c : *columns) {
      h ^= encoded->codes(c)[row];
      h *= 1099511628211ULL;
    }
    return h;
  }
  bool operator()(uint32_t a, uint32_t b) const {  // equality
    for (size_t c : *columns) {
      if (encoded->codes(c)[a] != encoded->codes(c)[b]) return false;
    }
    return true;
  }
};

}  // namespace

std::shared_ptr<const CodePartition> QueryCache::BuildPartition(
    const std::vector<size_t>& columns, NullPolicy policy) const {
  auto partition = std::make_shared<CodePartition>();
  const size_t num_rows = encoded_.num_rows();
  partition->group_of_row.assign(num_rows, CodePartition::kSkipped);

  if (columns.size() == 1) {
    // Single column: codes already are dense group ids; under kNullAsValue
    // the NULL rows — if any — form one extra group appended after the
    // dictionary.
    const std::vector<uint32_t>& codes = encoded_.codes(columns[0]);
    const uint32_t dict_size =
        static_cast<uint32_t>(encoded_.dict_size(columns[0]));
    const bool nulls_group = policy == NullPolicy::kNullAsValue &&
                             encoded_.has_null(columns[0]);
    partition->representative.assign(dict_size + (nulls_group ? 1 : 0),
                                     CodePartition::kSkipped);
    for (size_t i = 0; i < num_rows; ++i) {
      uint32_t code = codes[i];
      if (code == EncodedTable::kNullCode) {
        if (!nulls_group) continue;
        code = dict_size;
      }
      partition->group_of_row[i] = code;
      ++partition->included_rows;
      if (partition->representative[code] == CodePartition::kSkipped) {
        partition->representative[code] = static_cast<uint32_t>(i);
      }
    }
    return partition;
  }

  RowKeyOps ops{&encoded_, &columns};
  std::unordered_map<uint32_t, uint32_t, RowKeyOps, RowKeyOps> groups(
      /*bucket_count=*/num_rows * 2 + 1, ops, ops);
  for (size_t i = 0; i < num_rows; ++i) {
    if (policy == NullPolicy::kSkipNullRows) {
      bool has_null = false;
      for (size_t c : columns) {
        if (encoded_.codes(c)[i] == EncodedTable::kNullCode) {
          has_null = true;
          break;
        }
      }
      if (has_null) continue;
    }
    auto [it, inserted] = groups.try_emplace(
        static_cast<uint32_t>(i),
        static_cast<uint32_t>(partition->representative.size()));
    if (inserted) partition->representative.push_back(static_cast<uint32_t>(i));
    partition->group_of_row[i] = it->second;
    ++partition->included_rows;
  }
  return partition;
}

void QueryCache::EnsureColumnsLocked(const std::vector<size_t>& columns) {
  for (size_t c : columns) encoded_.EnsureColumn(c);
}

void QueryCache::EnsureEncoded(const std::vector<size_t>& columns) {
  std::lock_guard<std::mutex> lock(mutex_);
  EnsureColumnsLocked(columns);
}

bool QueryCache::ColumnHasNull(size_t column) {
  std::lock_guard<std::mutex> lock(mutex_);
  encoded_.EnsureColumn(column);
  return encoded_.has_null(column);
}

std::shared_ptr<const ValueSet> QueryCache::DictionarySet(size_t column) {
  static const HitMiss counters = CacheCounters("dictionary_set");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = dictionary_sets_.find(column);
  counters.Count(it != dictionary_sets_.end());
  if (it != dictionary_sets_.end()) return it->second;
  encoded_.EnsureColumn(column);
  auto set = std::make_shared<ValueSet>();
  const uint32_t dict_size = static_cast<uint32_t>(encoded_.dict_size(column));
  set->reserve(dict_size);
  for (uint32_t code = 0; code < dict_size; ++code) {
    set->insert(encoded_.Decode(column, code));
  }
  dictionary_sets_.emplace(column, set);
  return set;
}

std::shared_ptr<const FlatSet64> QueryCache::Int64DictionarySet(
    size_t column) {
  static const HitMiss counters = CacheCounters("int64_dictionary_set");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = int64_dictionary_sets_.find(column);
  counters.Count(it != int64_dictionary_sets_.end());
  if (it != int64_dictionary_sets_.end()) return it->second;
  encoded_.EnsureColumn(column);
  if (encoded_.declared_type(column) != DataType::kInt64 ||
      !encoded_.column_typed(column)) {
    return nullptr;
  }
  const uint32_t dict_size = static_cast<uint32_t>(encoded_.dict_size(column));
  auto set = std::make_shared<FlatSet64>(dict_size);
  for (uint32_t code = 0; code < dict_size; ++code) {
    set->Insert(static_cast<uint64_t>(encoded_.Decode(column, code).as_int()));
  }
  int64_dictionary_sets_.emplace(column, set);
  return set;
}

std::shared_ptr<const CodePartition> QueryCache::Partition(
    const std::vector<size_t>& columns, NullPolicy policy) {
  static const HitMiss counters = CacheCounters("partition");
  PartitionKey key(columns, static_cast<int>(policy));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = partitions_.find(key);
  counters.Count(it != partitions_.end());
  if (it != partitions_.end()) return it->second;
  EnsureColumnsLocked(columns);
  std::shared_ptr<const CodePartition> partition =
      BuildPartition(columns, policy);
  partitions_.emplace(std::move(key), partition);
  return partition;
}

size_t QueryCache::DistinctCount(const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    encoded_.EnsureColumn(columns[0]);
    return encoded_.dict_size(columns[0]);
  }
  return Partition(columns, NullPolicy::kSkipNullRows)->num_groups();
}

std::shared_ptr<const ValueVectorSet> QueryCache::DistinctProjection(
    const std::vector<size_t>& columns) {
  static const HitMiss counters = CacheCounters("distinct_projection");
  std::shared_ptr<const CodePartition> partition =
      Partition(columns, NullPolicy::kSkipNullRows);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = distinct_sets_.find(columns);
  counters.Count(it != distinct_sets_.end());
  if (it != distinct_sets_.end()) return it->second;
  auto set = std::make_shared<ValueVectorSet>();
  set->reserve(partition->num_groups());
  for (uint32_t row : partition->representative) {
    set->insert(encoded_.DecodeRow(row, columns));
  }
  distinct_sets_.emplace(columns, set);
  return set;
}

bool QueryCache::FdHolds(const std::vector<size_t>& lhs_columns,
                         const std::vector<size_t>& rhs_columns) {
  std::shared_ptr<const CodePartition> lhs =
      Partition(lhs_columns, NullPolicy::kSkipNullRows);
  std::shared_ptr<const CodePartition> rhs =
      Partition(rhs_columns, NullPolicy::kNullAsValue);
  // X → A holds iff every X-group maps into a single A-group, i.e.
  // |π_X| == |π_{X∪A}| over the non-NULL-X rows.
  constexpr uint32_t kUnseen = UINT32_MAX;
  std::vector<uint32_t> witness(lhs->num_groups(), kUnseen);
  const size_t num_rows = encoded_.num_rows();
  for (size_t i = 0; i < num_rows; ++i) {
    uint32_t g = lhs->group_of_row[i];
    if (g == CodePartition::kSkipped) continue;
    uint32_t r = rhs->group_of_row[i];
    if (witness[g] == kUnseen) {
      witness[g] = r;
    } else if (witness[g] != r) {
      return false;
    }
  }
  return true;
}

double QueryCache::FdError(const std::vector<size_t>& lhs_columns,
                           const std::vector<size_t>& rhs_columns) {
  std::shared_ptr<const CodePartition> lhs =
      Partition(lhs_columns, NullPolicy::kSkipNullRows);
  std::shared_ptr<const CodePartition> rhs =
      Partition(rhs_columns, NullPolicy::kNullAsValue);
  if (lhs->included_rows == 0) return 0.0;
  // Count each (X-group, A-group) pair, then keep the plurality A-group of
  // every X-group.
  std::unordered_map<uint64_t, size_t> pair_counts;
  pair_counts.reserve(lhs->included_rows);
  const size_t num_rows = encoded_.num_rows();
  for (size_t i = 0; i < num_rows; ++i) {
    uint32_t g = lhs->group_of_row[i];
    if (g == CodePartition::kSkipped) continue;
    ++pair_counts[(static_cast<uint64_t>(g) << 32) | rhs->group_of_row[i]];
  }
  std::vector<size_t> best(lhs->num_groups(), 0);
  for (const auto& [pair, count] : pair_counts) {
    size_t g = static_cast<size_t>(pair >> 32);
    if (count > best[g]) best[g] = count;
  }
  size_t kept = 0;
  for (size_t b : best) kept += b;
  return static_cast<double>(lhs->included_rows - kept) /
         static_cast<double>(lhs->included_rows);
}

}  // namespace dbre
