// Runtime values stored in table cells.
//
// A `Value` is a tagged union of NULL, 64-bit integer, double, boolean and
// string. Values order NULL-first, then by type tag, then by payload; this
// total order lets value vectors act as map/set keys in projection and
// dependency-checking code.
#ifndef DBRE_RELATIONAL_VALUE_H_
#define DBRE_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace dbre {

// Declared type of an attribute in the data dictionary.
enum class DataType {
  kInt64,
  kDouble,
  kBool,
  kString,
};

// Stable lowercase name ("int64", "double", "bool", "string").
const char* DataTypeName(DataType type);

// Parses a type name as produced by DataTypeName (case-insensitive).
Result<DataType> DataTypeFromName(std::string_view name);

class Value {
 public:
  // NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Boolean(bool v) { return Value(Payload(v)); }
  static Value Text(std::string v) { return Value(Payload(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_text() const { return std::holds_alternative<std::string>(data_); }

  // Accessors abort if the tag does not match; check first.
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_real() const { return std::get<double>(data_); }
  bool as_bool() const { return std::get<bool>(data_); }
  const std::string& as_text() const { return std::get<std::string>(data_); }

  // True if this value's tag matches the declared attribute type (NULL
  // matches every type).
  bool MatchesType(DataType type) const;

  // Renders the value for display; NULL renders as "NULL", strings verbatim.
  std::string ToString() const;

  // Controls how Parse treats NULL-lookalike text.
  enum class NullHandling {
    // The literal "NULL" (case-insensitive) or whitespace-only text parses
    // as the NULL value.
    kLenient,
    // Text always parses as a typed value or fails; callers that already
    // know the field is non-NULL (e.g. a quoted CSV field) use this so
    // "NULL" round-trips as data rather than collapsing to SQL NULL.
    kNeverNull,
  };

  // Parses `text` (trimmed of surrounding whitespace) as a value of
  // declared type `type`.
  static Result<Value> Parse(std::string_view text, DataType type,
                             NullHandling nulls = NullHandling::kLenient);

  // NULL-first total order across type tags; used for container keys, not
  // SQL comparison semantics.
  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.data_ < b.data_;
  }

  // Hash compatible with operator==.
  size_t Hash() const;

 private:
  using Payload =
      std::variant<std::monostate, int64_t, double, bool, std::string>;
  explicit Value(Payload payload) : data_(std::move(payload)) {}

  Payload data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

// A row (or a projected sub-row) of values.
using ValueVector = std::vector<Value>;

struct ValueVectorHash {
  size_t operator()(const ValueVector& values) const;
};

struct ValueHash {
  size_t operator()(const Value& value) const { return value.Hash(); }
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_VALUE_H_
