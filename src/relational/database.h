// A relational database (R, E, ∅): a catalog of relations with extensions
// and only the dictionary-level constraints (unique / not null) declared.
//
// §4 of the paper derives two sets from the dictionary:
//   K = { R.X : X declared unique }
//   N = { R.a : a declared not null } ∪ { R.a ∈ R.X : R.X ∈ K }
// Database::KeySet and Database::NotNullSet compute exactly those.
#ifndef DBRE_RELATIONAL_DATABASE_H_
#define DBRE_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/table.h"

namespace dbre {

class Database {
 public:
  Database() = default;

  // Databases own large extensions; keep them move-only to prevent
  // accidental deep copies. Use Clone() for an explicit copy.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  Database Clone() const;

  // Adds an empty table for `schema`; fails on duplicate relation names.
  Status CreateRelation(RelationSchema schema);

  // Adds a fully built table (schema + rows).
  Status AddTable(Table table);

  Status DropRelation(std::string_view name);

  bool HasRelation(std::string_view name) const;

  Result<const Table*> GetTable(std::string_view name) const;
  Result<Table*> GetMutableTable(std::string_view name);

  // Relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  size_t NumRelations() const { return tables_.size(); }

  // The paper's K: every unique-declared attribute set, qualified.
  std::vector<QualifiedAttributes> KeySet() const;

  // The paper's N: not-null attributes (declared or key-implied), as
  // singleton qualified sets, i.e. elements R.a.
  std::vector<QualifiedAttributes> NotNullSet() const;

  // True if `attributes` is a declared key of relation `relation`.
  bool IsDeclaredKey(std::string_view relation,
                     const AttributeSet& attributes) const;

  // Verifies unique and not-null declarations of every relation against its
  // extension.
  Status VerifyDeclaredConstraints() const;

  // Multi-line catalog dump for diagnostics.
  std::string DescribeSchema() const;

 private:
  std::map<std::string, Table, std::less<>> tables_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_DATABASE_H_
