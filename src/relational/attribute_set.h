// AttributeSet: an ordered set of attribute names within one relation.
//
// The paper manipulates sets of attributes constantly (X, Y, XY, X - Y, ...).
// This class provides those operations with deterministic iteration order so
// that algorithm outputs are reproducible and printable.
#ifndef DBRE_RELATIONAL_ATTRIBUTE_SET_H_
#define DBRE_RELATIONAL_ATTRIBUTE_SET_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dbre {

class AttributeSet {
 public:
  AttributeSet() = default;
  AttributeSet(std::initializer_list<std::string> names);
  explicit AttributeSet(std::vector<std::string> names);

  // Singleton set {name}.
  static AttributeSet Single(std::string name);

  bool empty() const { return names_.empty(); }
  size_t size() const { return names_.size(); }

  // Sorted, duplicate-free.
  const std::vector<std::string>& names() const { return names_; }

  auto begin() const { return names_.begin(); }
  auto end() const { return names_.end(); }

  bool Contains(std::string_view name) const;
  bool ContainsAll(const AttributeSet& other) const;  // other ⊆ this
  bool Intersects(const AttributeSet& other) const;

  void Insert(std::string name);
  void Remove(std::string_view name);

  // Set algebra; none of these mutate the operands.
  AttributeSet Union(const AttributeSet& other) const;
  AttributeSet Minus(const AttributeSet& other) const;
  AttributeSet Intersect(const AttributeSet& other) const;

  // Renders as "{a, b, c}".
  std::string ToString() const;

  friend bool operator==(const AttributeSet& a, const AttributeSet& b) {
    return a.names_ == b.names_;
  }
  friend bool operator!=(const AttributeSet& a, const AttributeSet& b) {
    return !(a == b);
  }
  friend bool operator<(const AttributeSet& a, const AttributeSet& b) {
    return a.names_ < b.names_;
  }

 private:
  void Normalize();

  std::vector<std::string> names_;
};

std::ostream& operator<<(std::ostream& os, const AttributeSet& set);

// An attribute set qualified by its relation, e.g. "HEmployee.{no}". This is
// the element type of the paper's sets K, N (singletons), LHS and H.
struct QualifiedAttributes {
  std::string relation;
  AttributeSet attributes;

  std::string ToString() const;

  friend bool operator==(const QualifiedAttributes& a,
                         const QualifiedAttributes& b) {
    return a.relation == b.relation && a.attributes == b.attributes;
  }
  friend bool operator<(const QualifiedAttributes& a,
                        const QualifiedAttributes& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.attributes < b.attributes;
  }
};

std::ostream& operator<<(std::ostream& os, const QualifiedAttributes& qa);

}  // namespace dbre

#endif  // DBRE_RELATIONAL_ATTRIBUTE_SET_H_
