// Vectorized batch execution over dictionary-encoded columns.
//
// The tuple-at-a-time paths (executor predicate evaluation, cross-table
// membership probes, multi-column grouping) pay an interpretation and
// cache-miss penalty per row. This layer restructures them column-at-a-time
// over fixed-size batches of dictionary codes, in the style of the
// tpl/NoisePage VectorProjectionIterator design:
//
//   * a batch is up to kBatchSize consecutive rows of one column's code
//     array; NULL rows carry EncodedTable::kNullCode and flow through a
//     dedicated null channel (Val-style: data plus null indicator, no
//     per-row branching in the callers);
//   * predicates evaluate as SQL ternary-logic vectors (Truth arrays), one
//     lane per row, composed with Kleene AND/OR/NOT kernels; a final
//     SelectTrue compacts the kTrue lanes into a selection vector of row
//     ids;
//   * membership tests gather per-row 64-bit keys through a code-indexed
//     table, then probe a FlatSet64 / BloomFilter with software prefetch
//     issued a fixed distance ahead, overlapping the random-access loads
//     that dominate large probes.
//
// Kernels are branch-light loops over flat arrays — the form compilers
// auto-vectorize — and every kernel reports its processed rows to the
// dbre_batch_rows_total metric so throughput is observable per kernel.
#ifndef DBRE_RELATIONAL_COLUMN_BATCH_H_
#define DBRE_RELATIONAL_COLUMN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "relational/sketch.h"

namespace dbre::batch {

// Rows per batch: large enough to amortize per-batch overhead, small
// enough that a batch's working vectors stay L1/L2-resident.
inline constexpr size_t kBatchSize = 2048;

// SQL three-valued logic, one lane per row.
enum class Truth : uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

// A view of one column's codes for `count` (≤ kBatchSize) consecutive rows
// starting at absolute row `start`.
struct ColumnBatch {
  const uint32_t* codes = nullptr;
  size_t start = 0;
  size_t count = 0;
};

// Chunks [0, num_rows) into kBatchSize batches.
class BatchIterator {
 public:
  explicit BatchIterator(size_t num_rows) : num_rows_(num_rows) {}

  // Produces the next [start, start+count) chunk; false when exhausted.
  bool Next(size_t* start, size_t* count) {
    if (pos_ >= num_rows_) return false;
    *start = pos_;
    *count = num_rows_ - pos_ < kBatchSize ? num_rows_ - pos_ : kBatchSize;
    pos_ += *count;
    return true;
  }

 private:
  size_t pos_ = 0;
  size_t num_rows_;
};

// Kernel families, for the per-kernel row-throughput metric.
enum class Kernel {
  kFilter,     // ternary predicate evaluation + selection
  kProbe,      // hash/bloom membership probes
  kPartition,  // grouped-distinct building
  kScan,       // executor scan/filter batches
  kJoin,       // executor hash-join probes
};

// Adds `rows` to dbre_batch_rows_total{kernel=...}.
void AddKernelRows(Kernel kernel, size_t rows);

// --- Ternary predicate kernels -------------------------------------------

// out[i] = codes[i] == null_code ? null_truth : code_truth[codes[i]].
// `code_truth` is a per-dictionary-code truth table (the predicate
// evaluated once per distinct value instead of once per row).
void GatherTruth(const uint32_t* codes, size_t n, const Truth* code_truth,
                 Truth null_truth, uint32_t null_code, Truth* out);

void FillTruth(Truth value, size_t n, Truth* out);

// Kleene logic, lane-wise. `out` may alias `a`.
void TruthAnd(const Truth* a, const Truth* b, size_t n, Truth* out);
void TruthOr(const Truth* a, const Truth* b, size_t n, Truth* out);
void TruthNot(const Truth* a, size_t n, Truth* out);

// Compacts lanes with truth[i] == kTrue into absolute row ids base+i.
// Returns the number selected; `sel_out` needs room for n entries.
size_t SelectTrue(const Truth* truth, size_t n, size_t base,
                  uint32_t* sel_out);

// --- Key gather / membership kernels -------------------------------------

// out[i] = codes[i] == null_code ? null_key : code_keys[codes[i]].
void GatherKeys(const uint32_t* codes, size_t n, const uint64_t* code_keys,
                uint64_t null_key, uint32_t null_code, uint64_t* out);

// inout[i] = SketchHashCombine(inout[i], gathered key) — builds multi-
// column row hashes one column at a time.
void CombineKeys(const uint32_t* codes, size_t n, const uint64_t* code_keys,
                 uint64_t null_key, uint32_t null_code, uint64_t* inout);

// Probes `keys[0..n)` against a flat set with prefetch lookahead.
// hit[i] ∈ {0,1}; returns the number of hits.
size_t ProbeSet(const FlatSet64& set, const uint64_t* keys, size_t n,
                uint8_t* hit);

// Same against a Bloom filter; hit[i] == 0 proves keys[i] is absent from
// every set the filter was built over.
size_t ProbeBloom(const BloomFilter& bloom, const uint64_t* keys, size_t n,
                  uint8_t* hit);

}  // namespace dbre::batch

#endif  // DBRE_RELATIONAL_COLUMN_BATCH_H_
