// Equi-join specifications — the elements of the paper's set Q.
//
// An equi-join R_k[A_k] ⋈ R_l[A_l] pairs attributes positionally:
// left_attributes[i] joins with right_attributes[i]. The pairing matters for
// multi-attribute joins, so attributes are kept as parallel vectors rather
// than as sets; `Canonicalize` produces a normal form (pairs sorted, smaller
// side first) used to deduplicate Q.
#ifndef DBRE_RELATIONAL_EQUI_JOIN_H_
#define DBRE_RELATIONAL_EQUI_JOIN_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"

namespace dbre {

struct EquiJoin {
  std::string left_relation;
  std::vector<std::string> left_attributes;
  std::string right_relation;
  std::vector<std::string> right_attributes;

  // Convenience constructor for the common single-attribute case.
  static EquiJoin Single(std::string left_relation, std::string left_attribute,
                         std::string right_relation,
                         std::string right_attribute);

  size_t arity() const { return left_attributes.size(); }

  // Both sides' attributes as sets (loses pairing; for display and
  // LHS-style analyses).
  AttributeSet LeftAttributeSet() const;
  AttributeSet RightAttributeSet() const;

  // Returns an equivalent join in normal form: attribute pairs sorted by
  // (left name, right name), then sides swapped if the right side compares
  // lexicographically smaller than the left. Joins describing the same
  // condition canonicalize identically.
  EquiJoin Canonicalize() const;

  // Swaps the two sides (the join itself is symmetric).
  EquiJoin Flipped() const;

  // Validates shape: non-empty, equal-length attribute lists, non-empty
  // names, and no self-join of an attribute with itself.
  Status Validate() const;

  // "R[a, b] |><| S[x, y]".
  std::string ToString() const;

  friend bool operator==(const EquiJoin& a, const EquiJoin& b) {
    return a.left_relation == b.left_relation &&
           a.left_attributes == b.left_attributes &&
           a.right_relation == b.right_relation &&
           a.right_attributes == b.right_attributes;
  }
  friend bool operator<(const EquiJoin& a, const EquiJoin& b);
};

std::ostream& operator<<(std::ostream& os, const EquiJoin& join);

// Deduplicates a workload: canonicalizes every join, removes duplicates,
// and returns them sorted.
std::vector<EquiJoin> CanonicalJoinSet(const std::vector<EquiJoin>& joins);

}  // namespace dbre

#endif  // DBRE_RELATIONAL_EQUI_JOIN_H_
