#include "relational/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>

#include "relational/query_cache.h"

namespace dbre {
namespace {

// Guards lazy cache construction across tables. Builds happen once per
// table per load, so a single process-wide mutex never contends in practice
// while keeping Table itself copyable (a per-table mutex would not be).
std::mutex g_query_cache_mutex;

}  // namespace

void Table::DiePagedAccess(const char* what) {
  std::fprintf(stderr,
               "dbre: Table::%s called on a paged extension; row-shaped "
               "consumers must read through the query cache\n",
               what);
  std::abort();
}

Status Table::AdoptPagedExtension(
    std::shared_ptr<const PagedSource> source) {
  if (source == nullptr) {
    return InvalidArgumentError("AdoptPagedExtension: null source");
  }
  if (source->num_columns() != schema_.arity()) {
    return InvalidArgumentError(
        "arity mismatch adopting paged extension for " + schema_.name() +
        ": got " + std::to_string(source->num_columns()) + " columns, want " +
        std::to_string(schema_.arity()));
  }
  for (size_t c = 0; c < schema_.arity(); ++c) {
    const Attribute& attribute = schema_.attributes()[c];
    if (source->declared_type(c) != attribute.type) {
      return InvalidArgumentError("declared type mismatch for " +
                                  schema_.name() + "." + attribute.name +
                                  " adopting paged extension");
    }
  }
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  cache_.reset();
  rows_ = std::make_shared<std::vector<ValueVector>>();
  paged_ = std::move(source);
  paged_columns_.resize(schema_.arity());
  std::iota(paged_columns_.begin(), paged_columns_.end(), 0u);
  return Status::Ok();
}

Result<std::shared_ptr<QueryCache>> Table::query_cache() const {
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  if (cache_ == nullptr) {
    if (num_rows() >= EncodedTable::kNullCode) {
      return InternalError("extension too large to encode: " +
                           schema_.name());
    }
    std::vector<DataType> types;
    types.reserve(schema_.arity());
    for (const Attribute& attribute : schema_.attributes()) {
      types.push_back(attribute.type);
    }
    cache_ = std::make_shared<QueryCache>(
        paged_ != nullptr
            ? EncodedTable(paged_, std::move(types), paged_columns_)
            : EncodedTable(shared_rows(), std::move(types)));
  }
  return cache_;
}

bool Table::AdoptSharedExtension(const Table& other) {
  if (&other == this) return true;
  const auto& ours = schema_.attributes();
  const auto& theirs = other.schema_.attributes();
  if (ours.size() != theirs.size()) return false;
  for (size_t i = 0; i < ours.size(); ++i) {
    if (ours[i].name != theirs[i].name || ours[i].type != theirs[i].type) {
      return false;
    }
  }
  if (paged_ != nullptr || other.paged_ != nullptr) {
    // Paged extensions share only with the exact same source over the same
    // column layout (the registry deduplicates sources by fingerprint, so
    // identical content means identical pointer).
    if (paged_ != other.paged_ || paged_columns_ != other.paged_columns_) {
      return false;
    }
    std::lock_guard<std::mutex> lock(g_query_cache_mutex);
    if (other.cache_ != nullptr) cache_ = other.cache_;
    return true;
  }
  if (rows_ != other.rows_ && *rows_ != *other.rows_) return false;
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  rows_ = other.rows_;
  if (other.cache_ != nullptr) cache_ = other.cache_;
  return true;
}

Status Table::AdoptExtension(std::shared_ptr<std::vector<ValueVector>> rows) {
  if (rows == nullptr) {
    return InvalidArgumentError("AdoptExtension: null row storage");
  }
  for (const ValueVector& row : *rows) {
    if (row.size() != schema_.arity()) {
      return InvalidArgumentError(
          "arity mismatch adopting extension for " + schema_.name() +
          ": got " + std::to_string(row.size()) + ", want " +
          std::to_string(schema_.arity()));
    }
  }
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  cache_.reset();
  paged_.reset();
  paged_columns_.clear();
  rows_ = std::move(rows);
  return Status::Ok();
}

size_t Table::ApproximateBytes() const {
  if (paged_ != nullptr) {
    // The extension lives on disk behind the shared buffer pool, whose
    // budget the service accounts separately; only the handle is heap.
    return sizeof(Table) + sizeof(uint32_t) * paged_columns_.capacity();
  }
  size_t bytes = sizeof(ValueVector) * rows_->capacity();
  for (const ValueVector& row : *rows_) {
    bytes += sizeof(Value) * row.capacity();
    for (const Value& value : row) {
      if (value.is_text()) bytes += value.as_text().capacity();
    }
  }
  return bytes;
}

Status Table::Insert(ValueVector row) {
  if (paged_ != nullptr) {
    return FailedPreconditionError("relation " + schema_.name() +
                                   " is paged and read-only");
  }
  if (row.size() != schema_.arity()) {
    return InvalidArgumentError(
        "arity mismatch inserting into " + schema_.name() + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.arity()));
  }
  const AttributeSet not_null = schema_.NotNullAttributes();
  for (size_t i = 0; i < row.size(); ++i) {
    const Attribute& attribute = schema_.attributes()[i];
    if (!row[i].MatchesType(attribute.type)) {
      return InvalidArgumentError("type mismatch for " + schema_.name() +
                                  "." + attribute.name + ": value " +
                                  row[i].ToString());
    }
    if (row[i].is_null() && not_null.Contains(attribute.name)) {
      return InvalidArgumentError("NULL in not-null attribute " +
                                  schema_.name() + "." + attribute.name);
    }
  }
  cache_.reset();
  mutable_rows().push_back(std::move(row));
  return Status::Ok();
}

Status Table::ForEachRow(
    const std::function<void(const ValueVector&)>& fn) const {
  if (paged_ == nullptr) {
    for (const ValueVector& row : *rows_) fn(row);
    return Status::Ok();
  }
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
  std::vector<size_t> columns(schema_.arity());
  std::iota(columns.begin(), columns.end(), size_t{0});
  cache->EnsureEncoded(columns);
  EncodedTable::RowReader reader =
      cache->encoded().row_reader(std::move(columns));
  ValueVector row;
  const size_t rows = num_rows();
  for (size_t i = 0; i < rows; ++i) {
    reader.Read(i, &row);
    fn(row);
  }
  return Status::Ok();
}

Status Table::DropAttribute(std::string_view name) {
  cache_.reset();
  DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
  DBRE_RETURN_IF_ERROR(schema_.RemoveAttribute(name));
  if (paged_ != nullptr) {
    // Projection only: the on-disk source keeps all its columns and the
    // column map stops referencing the dropped one.
    paged_columns_.erase(paged_columns_.begin() +
                         static_cast<ptrdiff_t>(index));
    return Status::Ok();
  }
  for (ValueVector& row : mutable_rows()) {
    row.erase(row.begin() + static_cast<ptrdiff_t>(index));
  }
  return Status::Ok();
}

Result<std::vector<size_t>> Table::ProjectionIndexes(
    const AttributeSet& attributes) const {
  if (attributes.empty()) {
    return InvalidArgumentError("projection on empty attribute set");
  }
  std::vector<size_t> indexes;
  indexes.reserve(attributes.size());
  for (const std::string& name : attributes) {
    DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
    indexes.push_back(index);
  }
  return indexes;
}

ValueVector Table::ProjectRow(const ValueVector& row,
                              const std::vector<size_t>& indexes) {
  ValueVector out;
  out.reserve(indexes.size());
  for (size_t index : indexes) out.push_back(row[index]);
  return out;
}

Result<ValueVectorSet> Table::DistinctProjection(
    const AttributeSet& attributes) const {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        ProjectionIndexes(attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
  return *cache->DistinctProjection(indexes);
}

Result<size_t> Table::DistinctCount(const AttributeSet& attributes) const {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        ProjectionIndexes(attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
  return cache->DistinctCount(indexes);
}

Status Table::VerifyUniqueConstraints() const {
  for (const AttributeSet& unique : schema_.unique_constraints()) {
    DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                          ProjectionIndexes(unique));
    DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
    // Unique iff no two NULL-free sub-rows coincide: every included row is
    // its own partition group.
    std::shared_ptr<const CodePartition> partition =
        cache->Partition(indexes, NullPolicy::kSkipNullRows);
    if (partition->num_groups() != partition->included_rows) {
      return FailedPreconditionError("unique constraint " + schema_.name() +
                                     "." + unique.ToString() +
                                     " is violated");
    }
  }
  return Status::Ok();
}

Status Table::VerifyNotNullConstraints() const {
  const AttributeSet not_null = schema_.NotNullAttributes();
  if (not_null.empty()) return Status::Ok();
  std::vector<size_t> indexes;
  for (const std::string& name : not_null) {
    DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
    indexes.push_back(index);
  }
  if (paged_ != nullptr) {
    // The snapshot records per-column NULL presence; no scan needed.
    for (size_t index : indexes) {
      if (paged_->has_null(paged_columns_[index])) {
        return FailedPreconditionError(
            "not-null attribute " + schema_.name() + "." +
            schema_.attributes()[index].name + " contains NULL");
      }
    }
    return Status::Ok();
  }
  for (const ValueVector& row : rows()) {
    for (size_t index : indexes) {
      if (row[index].is_null()) {
        return FailedPreconditionError(
            "not-null attribute " + schema_.name() + "." +
            schema_.attributes()[index].name + " contains NULL");
      }
    }
  }
  return Status::Ok();
}

}  // namespace dbre
