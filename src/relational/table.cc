#include "relational/table.h"

#include <algorithm>

namespace dbre {
namespace {

bool HasNull(const ValueVector& row) {
  return std::any_of(row.begin(), row.end(),
                     [](const Value& v) { return v.is_null(); });
}

}  // namespace

Status Table::Insert(ValueVector row) {
  if (row.size() != schema_.arity()) {
    return InvalidArgumentError(
        "arity mismatch inserting into " + schema_.name() + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.arity()));
  }
  const AttributeSet not_null = schema_.NotNullAttributes();
  for (size_t i = 0; i < row.size(); ++i) {
    const Attribute& attribute = schema_.attributes()[i];
    if (!row[i].MatchesType(attribute.type)) {
      return InvalidArgumentError("type mismatch for " + schema_.name() +
                                  "." + attribute.name + ": value " +
                                  row[i].ToString());
    }
    if (row[i].is_null() && not_null.Contains(attribute.name)) {
      return InvalidArgumentError("NULL in not-null attribute " +
                                  schema_.name() + "." + attribute.name);
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Status Table::DropAttribute(std::string_view name) {
  DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
  DBRE_RETURN_IF_ERROR(schema_.RemoveAttribute(name));
  for (ValueVector& row : rows_) {
    row.erase(row.begin() + static_cast<ptrdiff_t>(index));
  }
  return Status::Ok();
}

Result<std::vector<size_t>> Table::ProjectionIndexes(
    const AttributeSet& attributes) const {
  if (attributes.empty()) {
    return InvalidArgumentError("projection on empty attribute set");
  }
  std::vector<size_t> indexes;
  indexes.reserve(attributes.size());
  for (const std::string& name : attributes) {
    DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
    indexes.push_back(index);
  }
  return indexes;
}

ValueVector Table::ProjectRow(const ValueVector& row,
                              const std::vector<size_t>& indexes) {
  ValueVector out;
  out.reserve(indexes.size());
  for (size_t index : indexes) out.push_back(row[index]);
  return out;
}

Result<ValueVectorSet> Table::DistinctProjection(
    const AttributeSet& attributes) const {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        ProjectionIndexes(attributes));
  ValueVectorSet distinct;
  distinct.reserve(rows_.size());
  for (const ValueVector& row : rows_) {
    ValueVector projected = ProjectRow(row, indexes);
    if (HasNull(projected)) continue;
    distinct.insert(std::move(projected));
  }
  return distinct;
}

Result<size_t> Table::DistinctCount(const AttributeSet& attributes) const {
  DBRE_ASSIGN_OR_RETURN(ValueVectorSet distinct,
                        DistinctProjection(attributes));
  return distinct.size();
}

Status Table::VerifyUniqueConstraints() const {
  for (const AttributeSet& unique : schema_.unique_constraints()) {
    DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                          ProjectionIndexes(unique));
    ValueVectorSet seen;
    seen.reserve(rows_.size());
    for (const ValueVector& row : rows_) {
      ValueVector projected = ProjectRow(row, indexes);
      if (HasNull(projected)) continue;
      if (!seen.insert(std::move(projected)).second) {
        return FailedPreconditionError("unique constraint " +
                                       schema_.name() + "." +
                                       unique.ToString() + " is violated");
      }
    }
  }
  return Status::Ok();
}

Status Table::VerifyNotNullConstraints() const {
  const AttributeSet not_null = schema_.NotNullAttributes();
  if (not_null.empty()) return Status::Ok();
  std::vector<size_t> indexes;
  for (const std::string& name : not_null) {
    DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
    indexes.push_back(index);
  }
  for (const ValueVector& row : rows_) {
    for (size_t index : indexes) {
      if (row[index].is_null()) {
        return FailedPreconditionError(
            "not-null attribute " + schema_.name() + "." +
            schema_.attributes()[index].name + " contains NULL");
      }
    }
  }
  return Status::Ok();
}

}  // namespace dbre
