#include "relational/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>

#include "relational/query_cache.h"

namespace dbre {
namespace {

// Guards lazy cache construction across tables. Builds happen once per
// table per load, so a single process-wide mutex never contends in practice
// while keeping Table itself copyable (a per-table mutex would not be).
std::mutex g_query_cache_mutex;

}  // namespace

void Table::DiePagedAccess(const char* what) {
  std::fprintf(stderr,
               "dbre: Table::%s called on a paged extension; row-shaped "
               "consumers must read through the query cache\n",
               what);
  std::abort();
}

Status Table::AdoptPagedExtension(
    std::shared_ptr<const PagedSource> source) {
  if (source == nullptr) {
    return InvalidArgumentError("AdoptPagedExtension: null source");
  }
  if (source->num_columns() != schema_.arity()) {
    return InvalidArgumentError(
        "arity mismatch adopting paged extension for " + schema_.name() +
        ": got " + std::to_string(source->num_columns()) + " columns, want " +
        std::to_string(schema_.arity()));
  }
  for (size_t c = 0; c < schema_.arity(); ++c) {
    const Attribute& attribute = schema_.attributes()[c];
    if (source->declared_type(c) != attribute.type) {
      return InvalidArgumentError("declared type mismatch for " +
                                  schema_.name() + "." + attribute.name +
                                  " adopting paged extension");
    }
  }
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  NoteStructural();
  rows_ = std::make_shared<std::vector<ValueVector>>();
  paged_ = std::move(source);
  paged_columns_.resize(schema_.arity());
  std::iota(paged_columns_.begin(), paged_columns_.end(), 0u);
  return Status::Ok();
}

Result<std::shared_ptr<QueryCache>> Table::query_cache() const {
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  if (cache_ == nullptr) {
    if (num_rows() >= EncodedTable::kNullCode) {
      return InternalError("extension too large to encode: " +
                           schema_.name());
    }
    std::vector<DataType> types;
    types.reserve(schema_.arity());
    for (const Attribute& attribute : schema_.attributes()) {
      types.push_back(attribute.type);
    }
    if (paged_ != nullptr) {
      cache_ = std::make_shared<QueryCache>(
          EncodedTable(paged_, std::move(types), paged_columns_));
    } else if (delta_base_ != nullptr && rows_->size() >= delta_base_rows_) {
      cache_ = QueryCache::BuildDelta(*delta_base_, delta_base_rows_,
                                      shared_rows(), std::move(types),
                                      delta_updated_columns_);
    } else {
      cache_ = std::make_shared<QueryCache>(
          EncodedTable(shared_rows(), std::move(types)));
    }
    delta_base_.reset();
    delta_base_rows_ = 0;
    delta_updated_columns_.clear();
    delta_pinned_rows_ = nullptr;
  }
  return cache_;
}

void Table::NoteAppend() {
  if (delta_base_ == nullptr && cache_ != nullptr && paged_ == nullptr) {
    delta_base_ = std::move(cache_);
    delta_base_rows_ = rows_->size();
    delta_updated_columns_.clear();
    delta_pinned_rows_ = rows_.get();
  }
  cache_.reset();
}

void Table::NoteUpdate(const std::vector<size_t>& columns) {
  NoteAppend();
  if (delta_base_ == nullptr) return;
  std::vector<size_t> sorted(columns);
  std::sort(sorted.begin(), sorted.end());
  std::vector<size_t> merged;
  merged.reserve(delta_updated_columns_.size() + sorted.size());
  std::set_union(delta_updated_columns_.begin(), delta_updated_columns_.end(),
                 sorted.begin(), sorted.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  delta_updated_columns_ = std::move(merged);
}

void Table::NoteStructural() {
  cache_.reset();
  delta_base_.reset();
  delta_base_rows_ = 0;
  delta_updated_columns_.clear();
  delta_pinned_rows_ = nullptr;
}

void Table::DetachForMutation() {
  if (paged_ != nullptr) return;  // read-only; EnsureMaterialized detaches
  NoteAppend();
  mutable_rows_delta();
}

Status Table::EnsureMaterialized() {
  if (paged_ == nullptr) return Status::Ok();
  auto rows = std::make_shared<std::vector<ValueVector>>();
  rows->reserve(num_rows());
  DBRE_RETURN_IF_ERROR(ForEachRow(
      [&rows](const ValueVector& row) { rows->push_back(row); }));
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  NoteStructural();
  paged_.reset();
  paged_columns_.clear();
  rows_ = std::move(rows);
  return Status::Ok();
}

Result<size_t> Table::UpdateRows(
    const std::vector<size_t>& columns, const ValueVector& values,
    const std::function<bool(const ValueVector&)>& predicate) {
  if (paged_ != nullptr) {
    return FailedPreconditionError(
        "relation " + schema_.name() +
        " is paged and read-only; materialize before mutating");
  }
  if (columns.empty() || columns.size() != values.size()) {
    return InvalidArgumentError("UpdateRows: column/value count mismatch");
  }
  const AttributeSet not_null = schema_.NotNullAttributes();
  for (size_t k = 0; k < columns.size(); ++k) {
    if (columns[k] >= schema_.arity()) {
      return InvalidArgumentError("UpdateRows: column index out of range");
    }
    const Attribute& attribute = schema_.attributes()[columns[k]];
    if (!values[k].MatchesType(attribute.type)) {
      return InvalidArgumentError("type mismatch for " + schema_.name() +
                                  "." + attribute.name + ": value " +
                                  values[k].ToString());
    }
    if (values[k].is_null() && not_null.Contains(attribute.name)) {
      return InvalidArgumentError("NULL in not-null attribute " +
                                  schema_.name() + "." + attribute.name);
    }
  }
  // Match first: a predicate hitting nothing must not detach the shared
  // storage or invalidate the cache.
  std::vector<size_t> matched;
  for (size_t i = 0; i < rows_->size(); ++i) {
    if (predicate((*rows_)[i])) matched.push_back(i);
  }
  if (matched.empty()) return size_t{0};
  NoteUpdate(columns);
  auto& rows = mutable_rows_delta();
  for (size_t i : matched) {
    for (size_t k = 0; k < columns.size(); ++k) {
      rows[i][columns[k]] = values[k];
    }
  }
  return matched.size();
}

Result<size_t> Table::DeleteRows(
    const std::function<bool(const ValueVector&)>& predicate) {
  if (paged_ != nullptr) {
    return FailedPreconditionError(
        "relation " + schema_.name() +
        " is paged and read-only; materialize before mutating");
  }
  size_t matched = 0;
  for (const ValueVector& row : *rows_) {
    if (predicate(row)) ++matched;
  }
  if (matched == 0) return size_t{0};
  NoteStructural();
  auto& rows = mutable_rows();
  rows.erase(std::remove_if(rows.begin(), rows.end(), predicate),
             rows.end());
  return matched;
}

bool Table::AdoptSharedExtension(const Table& other) {
  if (&other == this) return true;
  const auto& ours = schema_.attributes();
  const auto& theirs = other.schema_.attributes();
  if (ours.size() != theirs.size()) return false;
  for (size_t i = 0; i < ours.size(); ++i) {
    if (ours[i].name != theirs[i].name || ours[i].type != theirs[i].type) {
      return false;
    }
  }
  if (paged_ != nullptr || other.paged_ != nullptr) {
    // Paged extensions share only with the exact same source over the same
    // column layout (the registry deduplicates sources by fingerprint, so
    // identical content means identical pointer).
    if (paged_ != other.paged_ || paged_columns_ != other.paged_columns_) {
      return false;
    }
    std::lock_guard<std::mutex> lock(g_query_cache_mutex);
    if (other.cache_ != nullptr) cache_ = other.cache_;
    return true;
  }
  if (rows_ != other.rows_ && *rows_ != *other.rows_) return false;
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  NoteStructural();
  rows_ = other.rows_;
  if (other.cache_ != nullptr) cache_ = other.cache_;
  return true;
}

Status Table::AdoptExtension(std::shared_ptr<std::vector<ValueVector>> rows) {
  if (rows == nullptr) {
    return InvalidArgumentError("AdoptExtension: null row storage");
  }
  for (const ValueVector& row : *rows) {
    if (row.size() != schema_.arity()) {
      return InvalidArgumentError(
          "arity mismatch adopting extension for " + schema_.name() +
          ": got " + std::to_string(row.size()) + ", want " +
          std::to_string(schema_.arity()));
    }
  }
  std::lock_guard<std::mutex> lock(g_query_cache_mutex);
  NoteStructural();
  paged_.reset();
  paged_columns_.clear();
  rows_ = std::move(rows);
  return Status::Ok();
}

size_t Table::ApproximateBytes() const {
  if (paged_ != nullptr) {
    // The extension lives on disk behind the shared buffer pool, whose
    // budget the service accounts separately; only the handle is heap.
    return sizeof(Table) + sizeof(uint32_t) * paged_columns_.capacity();
  }
  size_t bytes = sizeof(ValueVector) * rows_->capacity();
  for (const ValueVector& row : *rows_) {
    bytes += sizeof(Value) * row.capacity();
    for (const Value& value : row) {
      if (value.is_text()) bytes += value.as_text().capacity();
    }
  }
  return bytes;
}

Status Table::Insert(ValueVector row) {
  if (paged_ != nullptr) {
    return FailedPreconditionError("relation " + schema_.name() +
                                   " is paged and read-only");
  }
  if (row.size() != schema_.arity()) {
    return InvalidArgumentError(
        "arity mismatch inserting into " + schema_.name() + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.arity()));
  }
  const AttributeSet not_null = schema_.NotNullAttributes();
  for (size_t i = 0; i < row.size(); ++i) {
    const Attribute& attribute = schema_.attributes()[i];
    if (!row[i].MatchesType(attribute.type)) {
      return InvalidArgumentError("type mismatch for " + schema_.name() +
                                  "." + attribute.name + ": value " +
                                  row[i].ToString());
    }
    if (row[i].is_null() && not_null.Contains(attribute.name)) {
      return InvalidArgumentError("NULL in not-null attribute " +
                                  schema_.name() + "." + attribute.name);
    }
  }
  NoteAppend();
  mutable_rows_delta().push_back(std::move(row));
  return Status::Ok();
}

Status Table::ForEachRow(
    const std::function<void(const ValueVector&)>& fn) const {
  if (paged_ == nullptr) {
    for (const ValueVector& row : *rows_) fn(row);
    return Status::Ok();
  }
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
  std::vector<size_t> columns(schema_.arity());
  std::iota(columns.begin(), columns.end(), size_t{0});
  cache->EnsureEncoded(columns);
  EncodedTable::RowReader reader =
      cache->encoded().row_reader(std::move(columns));
  ValueVector row;
  const size_t rows = num_rows();
  for (size_t i = 0; i < rows; ++i) {
    reader.Read(i, &row);
    fn(row);
  }
  return Status::Ok();
}

Status Table::DropAttribute(std::string_view name) {
  NoteStructural();
  DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
  DBRE_RETURN_IF_ERROR(schema_.RemoveAttribute(name));
  if (paged_ != nullptr) {
    // Projection only: the on-disk source keeps all its columns and the
    // column map stops referencing the dropped one.
    paged_columns_.erase(paged_columns_.begin() +
                         static_cast<ptrdiff_t>(index));
    return Status::Ok();
  }
  for (ValueVector& row : mutable_rows()) {
    row.erase(row.begin() + static_cast<ptrdiff_t>(index));
  }
  return Status::Ok();
}

Result<std::vector<size_t>> Table::ProjectionIndexes(
    const AttributeSet& attributes) const {
  if (attributes.empty()) {
    return InvalidArgumentError("projection on empty attribute set");
  }
  std::vector<size_t> indexes;
  indexes.reserve(attributes.size());
  for (const std::string& name : attributes) {
    DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
    indexes.push_back(index);
  }
  return indexes;
}

ValueVector Table::ProjectRow(const ValueVector& row,
                              const std::vector<size_t>& indexes) {
  ValueVector out;
  out.reserve(indexes.size());
  for (size_t index : indexes) out.push_back(row[index]);
  return out;
}

Result<ValueVectorSet> Table::DistinctProjection(
    const AttributeSet& attributes) const {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        ProjectionIndexes(attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
  return *cache->DistinctProjection(indexes);
}

Result<size_t> Table::DistinctCount(const AttributeSet& attributes) const {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        ProjectionIndexes(attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
  return cache->DistinctCount(indexes);
}

Status Table::VerifyUniqueConstraints() const {
  for (const AttributeSet& unique : schema_.unique_constraints()) {
    DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                          ProjectionIndexes(unique));
    DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache, query_cache());
    // Unique iff no two NULL-free sub-rows coincide: every included row is
    // its own partition group.
    std::shared_ptr<const CodePartition> partition =
        cache->Partition(indexes, NullPolicy::kSkipNullRows);
    if (partition->num_groups() != partition->included_rows) {
      return FailedPreconditionError("unique constraint " + schema_.name() +
                                     "." + unique.ToString() +
                                     " is violated");
    }
  }
  return Status::Ok();
}

Status Table::VerifyNotNullConstraints() const {
  const AttributeSet not_null = schema_.NotNullAttributes();
  if (not_null.empty()) return Status::Ok();
  std::vector<size_t> indexes;
  for (const std::string& name : not_null) {
    DBRE_ASSIGN_OR_RETURN(size_t index, schema_.AttributeIndex(name));
    indexes.push_back(index);
  }
  if (paged_ != nullptr) {
    // The snapshot records per-column NULL presence; no scan needed.
    for (size_t index : indexes) {
      if (paged_->has_null(paged_columns_[index])) {
        return FailedPreconditionError(
            "not-null attribute " + schema_.name() + "." +
            schema_.attributes()[index].name + " contains NULL");
      }
    }
    return Status::Ok();
  }
  for (const ValueVector& row : rows()) {
    for (size_t index : indexes) {
      if (row[index].is_null()) {
        return FailedPreconditionError(
            "not-null attribute " + schema_.name() + "." +
            schema_.attributes()[index].name + " contains NULL");
      }
    }
  }
  return Status::Ok();
}

}  // namespace dbre
