// Relation schemas as recorded in a legacy data dictionary.
//
// A `RelationSchema` carries the attribute list with declared types plus the
// only constraints the paper assumes available a priori (§4): `unique`
// declarations (which induce the key set K) and `not null` declarations
// (which induce N). Functional and inclusion dependencies are deliberately
// absent — discovering them is the point of the method.
#ifndef DBRE_RELATIONAL_SCHEMA_H_
#define DBRE_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/value.h"

namespace dbre {

// One column of a relation.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;
  bool not_null = false;  // declared `not null` in the dictionary
};

class RelationSchema {
 public:
  RelationSchema() = default;
  explicit RelationSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  // Adds a column; fails on duplicate names.
  Status AddAttribute(Attribute attribute);
  Status AddAttribute(std::string name, DataType type, bool not_null = false);

  // Drops a column and removes it from every unique declaration it appears
  // in (declarations left empty are dropped). Used by Restruct when FD right
  // hand sides migrate to a new relation.
  Status RemoveAttribute(std::string_view name);

  bool HasAttribute(std::string_view name) const;
  Result<DataType> AttributeType(std::string_view name) const;

  // Index of `name` in attributes(), or error.
  Result<size_t> AttributeIndex(std::string_view name) const;

  // All attribute names as a set (the X_i of R_i(X_i)).
  AttributeSet AttributeNames() const;

  // Declares `attributes` unique; every involved attribute implicitly
  // becomes not-null (standard SQL, §4). Fails if any attribute is missing.
  Status DeclareUnique(AttributeSet attributes);

  // Marks a single attribute `not null`.
  Status DeclareNotNull(std::string_view name);

  // All unique declarations, in declaration order.
  const std::vector<AttributeSet>& unique_constraints() const {
    return unique_constraints_;
  }

  // The key of the relation per the paper's algorithms ("let K_i be the key
  // of R_i"): the first unique declaration, if any.
  std::optional<AttributeSet> PrimaryKey() const;

  // True if `attributes` exactly matches some unique declaration.
  bool IsKey(const AttributeSet& attributes) const;

  // Attributes that may not be null: declared not-null plus every attribute
  // of every unique declaration.
  AttributeSet NotNullAttributes() const;

  // Renders e.g. "Person(id*, name, street) unique{id}" for diagnostics.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<AttributeSet> unique_constraints_;
};

}  // namespace dbre

#endif  // DBRE_RELATIONAL_SCHEMA_H_
