#include "core/navigation_graph.h"

#include <fstream>
#include <set>

#include "common/string_util.h"

namespace dbre {
namespace {

std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Result<std::string> NavigationGraphToDot(
    const Database& database, const IndDiscoveryResult& discovery,
    const NavigationGraphOptions& options) {
  std::string out = "digraph " + options.graph_name + " {\n";
  out += "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  // Nodes: every relation touched by Q or by an IND, plus conceptualized
  // relations highlighted.
  std::set<std::string> relations;
  for (const JoinOutcome& outcome : discovery.outcomes) {
    relations.insert(outcome.join.left_relation);
    relations.insert(outcome.join.right_relation);
  }
  for (const InclusionDependency& ind : discovery.inds) {
    relations.insert(ind.lhs_relation);
    relations.insert(ind.rhs_relation);
  }
  std::set<std::string> conceptualized(discovery.new_relations.begin(),
                                       discovery.new_relations.end());
  for (const std::string& relation : relations) {
    out += "  " + Quote(relation);
    if (conceptualized.contains(relation)) {
      out += " [style=filled, fillcolor=lightyellow]";
    } else if (!database.HasRelation(relation)) {
      out += " [style=dashed]";  // vanished relation (should not happen)
    }
    out += ";\n";
  }

  // IND edges.
  for (const InclusionDependency& ind : discovery.inds) {
    bool satisfied = true;
    if (options.mark_unsatisfied) {
      auto holds = Satisfies(database, ind);
      satisfied = holds.ok() && *holds;
    }
    out += "  " + Quote(ind.lhs_relation) + " -> " +
           Quote(ind.rhs_relation) + " [label=" +
           Quote(Join(ind.lhs_attributes, ",") + " << " +
                 Join(ind.rhs_attributes, ",")) +
           (satisfied ? "" : ", style=dashed, color=red") + "];\n";
  }

  // Joins that elicited nothing: dotted gray (the navigation exists but
  // the data supports no dependency).
  for (const JoinOutcome& outcome : discovery.outcomes) {
    if (outcome.kind == JoinOutcomeKind::kEmptyIntersection ||
        outcome.kind == JoinOutcomeKind::kNeiIgnored) {
      out += "  " + Quote(outcome.join.left_relation) + " -> " +
             Quote(outcome.join.right_relation) +
             " [dir=none, style=dotted, color=gray, label=" +
             Quote(Join(outcome.join.left_attributes, ",")) + "];\n";
    }
  }
  out += "}\n";
  return out;
}

Status WriteNavigationGraph(const Database& database,
                            const IndDiscoveryResult& discovery,
                            const std::string& path,
                            const NavigationGraphOptions& options) {
  DBRE_ASSIGN_OR_RETURN(std::string dot,
                        NavigationGraphToDot(database, discovery, options));
  std::ofstream out(path, std::ios::trunc);
  if (!out) return IoError("cannot open " + path + " for writing");
  out << dot;
  if (!out) return IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace dbre
