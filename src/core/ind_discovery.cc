#include "core/ind_discovery.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/query_cache.h"
#include "relational/sketch.h"

namespace dbre {

const char* JoinOutcomeKindName(JoinOutcomeKind kind) {
  switch (kind) {
    case JoinOutcomeKind::kEmptyIntersection:
      return "empty_intersection";
    case JoinOutcomeKind::kLeftIncluded:
      return "left_included";
    case JoinOutcomeKind::kRightIncluded:
      return "right_included";
    case JoinOutcomeKind::kBothIncluded:
      return "both_included";
    case JoinOutcomeKind::kNeiConceptualized:
      return "nei_conceptualized";
    case JoinOutcomeKind::kNeiForced:
      return "nei_forced";
    case JoinOutcomeKind::kNeiIgnored:
      return "nei_ignored";
    case JoinOutcomeKind::kError:
      return "error";
  }
  return "unknown";
}

namespace {

// Derives a unique name for a conceptualized intersection relation.
std::string DeriveIntersectionName(const Database& database,
                                   const EquiJoin& join) {
  std::string base = join.left_relation + "_" + join.right_relation + "_" +
                     Join(join.left_attributes, "_");
  std::string name = base;
  int suffix = 2;
  while (database.HasRelation(name)) {
    name = base + "_" + std::to_string(suffix++);
  }
  return name;
}

// Creates R_p(A_p) in `database` with the intersection extension of the
// join's two projections. Attribute names and types come from the join's
// left side; the attribute set is declared unique (its extension is a set).
Status ConceptualizeIntersection(Database* database, const EquiJoin& join,
                                 const std::string& name) {
  DBRE_ASSIGN_OR_RETURN(const Table* left,
                        database->GetTable(join.left_relation));
  DBRE_ASSIGN_OR_RETURN(const Table* right,
                        database->GetTable(join.right_relation));

  RelationSchema schema(name);
  for (const std::string& attribute : join.left_attributes) {
    DBRE_ASSIGN_OR_RETURN(DataType type,
                          left->schema().AttributeType(attribute));
    DBRE_RETURN_IF_ERROR(schema.AddAttribute(attribute, type,
                                             /*not_null=*/true));
  }
  DBRE_RETURN_IF_ERROR(schema.DeclareUnique(join.LeftAttributeSet()));

  Table table(std::move(schema));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet left_values,
      OrderedDistinctProjection(*left, join.left_attributes));
  DBRE_ASSIGN_OR_RETURN(
      ValueVectorSet right_values,
      OrderedDistinctProjection(*right, join.right_attributes));
  // The left attribute list may repeat names (it cannot: EquiJoin::Validate
  // rejects empty, and schema.AddAttribute rejects duplicates), so the
  // projected rows insert directly.
  for (const ValueVector& row : left_values) {
    if (right_values.contains(row)) {
      DBRE_RETURN_IF_ERROR(table.Insert(row));
    }
  }
  return database->AddTable(std::move(table));
}

// Builds the memoized column sketch of every single-attribute join side up
// front. ComputeJoinCounts only *uses* a column sketch that already exists
// (a one-shot join is cheaper without the build), so a discovery sweep —
// which revisits the same columns across many candidate joins — is the
// place that pays the one-time build and turns the Bloom refute-fast
// pre-pass on. Resolution failures are ignored here; the fan-out below
// reports them per join.
void BuildJoinColumnSketches(const Database& database,
                             const std::vector<EquiJoin>& joins) {
  for (const EquiJoin& join : joins) {
    if (join.left_attributes.size() != 1) continue;
    for (int side = 0; side < 2; ++side) {
      const std::string& relation =
          side == 0 ? join.left_relation : join.right_relation;
      const std::string& attribute =
          side == 0 ? join.left_attributes[0] : join.right_attributes[0];
      Result<const Table*> table = database.GetTable(relation);
      if (!table.ok()) continue;
      Result<size_t> index = (*table)->schema().AttributeIndex(attribute);
      if (!index.ok()) continue;
      Result<std::shared_ptr<QueryCache>> cache = (*table)->query_cache();
      if (!cache.ok()) continue;
      (*cache)->ColumnSketchFor(*index);
    }
  }
}

}  // namespace

Result<IndDiscoveryResult> DiscoverInds(Database* database,
                                        const std::vector<EquiJoin>& joins,
                                        ExpertOracle* oracle,
                                        const IndDiscoveryOptions& options) {
  if (database == nullptr) return InvalidArgumentError("database is null");
  if (oracle == nullptr) return InvalidArgumentError("oracle is null");

  if (SketchesEnabled()) BuildJoinColumnSketches(*database, joins);

  // Fan the per-join valuations out first: they only read the catalog
  // (conceptualized relations are added below, but a later join can never
  // reference one — their names are freshly derived), so each worker
  // writes its counts into the slot of its join and the classification
  // loop consumes the slots in input order. Results are byte-identical to
  // a sequential run for any thread count.
  std::vector<std::optional<Result<JoinCounts>>> all_counts(joins.size());
  ParallelFor(joins.size(), options.num_threads, [&](size_t i) {
    all_counts[i].emplace(ComputeJoinCounts(*database, joins[i]));
  });

  IndDiscoveryResult result;
  for (size_t join_index = 0; join_index < joins.size(); ++join_index) {
    const EquiJoin& join = joins[join_index];
    JoinOutcome outcome;
    outcome.join = join;

    const Result<JoinCounts>& counts = *all_counts[join_index];
    if (!counts.ok()) {
      if (!options.skip_invalid_joins) return counts.status();
      outcome.kind = JoinOutcomeKind::kError;
      outcome.detail = counts.status().ToString();
      result.outcomes.push_back(std::move(outcome));
      continue;
    }
    outcome.counts = *counts;
    result.extension_queries += 3;  // N_k, N_l, N_kl

    const JoinCounts& c = *counts;
    if (c.EmptyIntersection()) {
      // (i) — possible data-integrity problem; nothing elicited.
      outcome.kind = JoinOutcomeKind::kEmptyIntersection;
    } else if (c.LeftIncluded() || c.RightIncluded()) {
      // (ii)/(iii); both fire on equal value sets.
      if (c.n_left <= c.n_right && c.LeftIncluded()) {
        result.inds.emplace_back(join.left_relation, join.left_attributes,
                                 join.right_relation, join.right_attributes);
      }
      if (c.n_right <= c.n_left && c.RightIncluded()) {
        result.inds.emplace_back(join.right_relation, join.right_attributes,
                                 join.left_relation, join.left_attributes);
      }
      outcome.kind = c.LeftIncluded() && c.RightIncluded()
                         ? JoinOutcomeKind::kBothIncluded
                         : (c.LeftIncluded() ? JoinOutcomeKind::kLeftIncluded
                                             : JoinOutcomeKind::kRightIncluded);
    } else {
      // NEI: (iv)-(vii), expert decision.
      NeiDecision decision = oracle->DecideNonEmptyIntersection(join, c);
      switch (decision.action) {
        case NeiAction::kConceptualize: {
          std::string name = decision.relation_name.empty()
                                 ? DeriveIntersectionName(*database, join)
                                 : decision.relation_name;
          if (database->HasRelation(name)) {
            return AlreadyExistsError(
                "conceptualized relation name already in use: " + name);
          }
          DBRE_RETURN_IF_ERROR(
              ConceptualizeIntersection(database, join, name));
          result.new_relations.push_back(name);
          // R_p[A_p] ≪ R_k[A_k] and R_p[A_p] ≪ R_l[A_l].
          result.inds.emplace_back(name, join.left_attributes,
                                   join.left_relation, join.left_attributes);
          result.inds.emplace_back(name, join.left_attributes,
                                   join.right_relation,
                                   join.right_attributes);
          outcome.kind = JoinOutcomeKind::kNeiConceptualized;
          outcome.detail = name;
          break;
        }
        case NeiAction::kForceLeftInRight:
          result.inds.emplace_back(join.left_relation, join.left_attributes,
                                   join.right_relation,
                                   join.right_attributes);
          outcome.kind = JoinOutcomeKind::kNeiForced;
          outcome.detail = result.inds.back().ToString();
          break;
        case NeiAction::kForceRightInLeft:
          result.inds.emplace_back(join.right_relation,
                                   join.right_attributes, join.left_relation,
                                   join.left_attributes);
          outcome.kind = JoinOutcomeKind::kNeiForced;
          outcome.detail = result.inds.back().ToString();
          break;
        case NeiAction::kIgnore:
          outcome.kind = JoinOutcomeKind::kNeiIgnored;
          break;
      }
    }
    result.outcomes.push_back(std::move(outcome));
  }
  result.inds = SortedUnique(std::move(result.inds));
  return result;
}

}  // namespace dbre
