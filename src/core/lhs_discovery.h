// LHS-Discovery (§6.2.1): candidate left-hand sides of relevant FDs.
//
// Scans IND for non-key attributes:
//   * if the IND's left relation belongs to S (a conceptualized
//     intersection — by construction S relations appear only on the left),
//     and the right-hand side is not a key, the right-hand side is a hidden
//     object candidate → H (case (i));
//   * otherwise every non-key side of the IND becomes a candidate FD
//     left-hand side → LHS (cases (ii) and (iii)).
//
// "Key" means an exact match with a unique declaration in the dictionary.
#ifndef DBRE_CORE_LHS_DISCOVERY_H_
#define DBRE_CORE_LHS_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "deps/ind.h"
#include "relational/attribute_set.h"
#include "relational/database.h"

namespace dbre {

struct LhsDiscoveryResult {
  std::vector<QualifiedAttributes> lhs;     // LHS, sorted, duplicate-free
  std::vector<QualifiedAttributes> hidden;  // H, sorted, duplicate-free
};

// Runs LHS-Discovery. `s_relations` lists the relations conceptualized by
// IND-Discovery (the set S).
LhsDiscoveryResult DiscoverLhs(const Database& database,
                               const std::vector<std::string>& s_relations,
                               const std::vector<InclusionDependency>& inds);

}  // namespace dbre

#endif  // DBRE_CORE_LHS_DISCOVERY_H_
