// IND-Discovery (§6.1): eliciting inclusion dependencies from the
// equi-join workload Q and the database extension.
//
// For each equi-join R_k[A_k] ⋈ R_l[A_l] the algorithm queries the three
// distinct counts N_k, N_l, N_kl and classifies:
//   (i)   N_kl = 0            → data-integrity anomaly, nothing elicited;
//   (ii)  N_kl = N_k ≤ N_l    → R_k[A_k] ≪ R_l[A_l];
//   (iii) N_kl = N_l ≤ N_k    → R_l[A_l] ≪ R_k[A_k] (both (ii) and (iii)
//         fire when the value sets coincide);
//   (iv)–(vii) otherwise (non-empty intersection, NEI): the expert decides —
//         conceptualize the intersection as a new relation R_p(A_p) (its
//         extension is materialized so the two INDs R_p ≪ R_k, R_p ≪ R_l
//         hold by construction), force one direction, or ignore.
//
// New relations are added to `database` (set S); their names come from the
// oracle or default to "<left>_<right>_<attrs>". Every per-join outcome is
// reported for diagnostics and benchmarking.
#ifndef DBRE_CORE_IND_DISCOVERY_H_
#define DBRE_CORE_IND_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/oracle.h"
#include "deps/ind.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/equi_join.h"

namespace dbre {

enum class JoinOutcomeKind {
  kEmptyIntersection,   // (i)
  kLeftIncluded,        // (ii)
  kRightIncluded,       // (iii)
  kBothIncluded,        // (ii)+(iii): equal value sets
  kNeiConceptualized,   // (iv)
  kNeiForced,           // (v)/(vi)
  kNeiIgnored,          // (vii)
  kError,               // join references unknown relation/attribute
};

const char* JoinOutcomeKindName(JoinOutcomeKind kind);

struct JoinOutcome {
  EquiJoin join;
  JoinCounts counts;
  JoinOutcomeKind kind = JoinOutcomeKind::kError;
  std::string detail;  // new relation name / error message
};

struct IndDiscoveryResult {
  std::vector<InclusionDependency> inds;   // the set IND
  std::vector<std::string> new_relations;  // names of S's members
  std::vector<JoinOutcome> outcomes;       // one per input join
  size_t extension_queries = 0;            // count-distinct evaluations
};

struct IndDiscoveryOptions {
  // Skip joins whose relations/attributes are missing from the catalog
  // (recorded as kError outcomes) instead of failing the run.
  bool skip_invalid_joins = true;
  // Worker threads for the equi-join valuations (the three distinct counts
  // per join are independent across joins and run against a read-only
  // catalog). 0 = hardware concurrency, 1 = sequential. The classification
  // and oracle interaction stay sequential in input order, so results are
  // identical for every thread count.
  size_t num_threads = 0;
};

// Runs IND-Discovery. `database` gains the conceptualized relations of S
// (with materialized intersection extensions and their attribute set
// declared unique). `oracle` must outlive the call.
Result<IndDiscoveryResult> DiscoverInds(
    Database* database, const std::vector<EquiJoin>& joins,
    ExpertOracle* oracle, const IndDiscoveryOptions& options = {});

}  // namespace dbre

#endif  // DBRE_CORE_IND_DISCOVERY_H_
