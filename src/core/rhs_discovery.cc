#include "core/rhs_discovery.h"

#include <algorithm>
#include <optional>

#include "common/thread_pool.h"
#include "relational/algebra.h"

namespace dbre {

Result<RhsDiscoveryResult> DiscoverRhs(
    const Database& database, const std::vector<QualifiedAttributes>& lhs,
    const std::vector<QualifiedAttributes>& hidden, ExpertOracle* oracle,
    const RhsDiscoveryOptions& options) {
  if (oracle == nullptr) return InvalidArgumentError("oracle is null");

  RhsDiscoveryResult result;
  result.hidden = hidden;

  // LHS ∪ H, deduplicated, in deterministic order.
  std::vector<QualifiedAttributes> candidates = lhs;
  for (const QualifiedAttributes& h : hidden) {
    if (std::find(candidates.begin(), candidates.end(), h) ==
        candidates.end()) {
      candidates.push_back(h);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  // The not-null set N as qualified singletons, for the A ⊆ N test.
  auto attribute_not_null = [&](const std::string& relation,
                                const std::string& attribute) {
    auto table = database.GetTable(relation);
    if (!table.ok()) return false;
    return (*table.value()).schema().NotNullAttributes().Contains(attribute);
  };

  auto in_hidden = [&](const QualifiedAttributes& qa) {
    return std::find(result.hidden.begin(), result.hidden.end(), qa) !=
           result.hidden.end();
  };

  for (const QualifiedAttributes& candidate : candidates) {
    DBRE_ASSIGN_OR_RETURN(const Table* table,
                          database.GetTable(candidate.relation));
    const RelationSchema& schema = table->schema();
    const AttributeSet& a = candidate.attributes;

    RhsCandidateOutcome outcome;
    outcome.candidate = candidate;

    // T = X_i − A − K_i.
    AttributeSet t = schema.AttributeNames().Minus(a);
    size_t before = t.size();
    if (options.prune_key_attributes) {
      if (auto key = schema.PrimaryKey(); key.has_value()) {
        t = t.Minus(*key);
      }
    }
    // If A is not entirely not-null, remove the not-null attributes.
    bool a_not_null = std::all_of(
        a.begin(), a.end(), [&](const std::string& attribute) {
          return attribute_not_null(candidate.relation, attribute);
        });
    if (options.prune_not_null_attributes && !a_not_null) {
      t = t.Minus(schema.NotNullAttributes());
    }
    result.pruned_attributes += before - t.size();
    outcome.tested = t;

    // Fan out the extension tests A → b over the workers; each slot holds
    // the verdict (and, for failures, the g3 error the oracle will want).
    // The oracle pass below consumes the slots sequentially in attribute
    // order, so the outcome matches a sequential run exactly.
    const std::vector<std::string>& tested_names = t.names();
    struct FdVerdict {
      Result<bool> holds;
      std::optional<Result<double>> g3_error;
      explicit FdVerdict(Result<bool> h) : holds(std::move(h)) {}
    };
    std::vector<std::optional<FdVerdict>> verdicts(tested_names.size());
    ParallelFor(tested_names.size(), options.num_threads, [&](size_t i) {
      AttributeSet rhs = AttributeSet::Single(tested_names[i]);
      FdVerdict verdict(FunctionalDependencyHolds(*table, a, rhs));
      if (verdict.holds.ok() && !*verdict.holds) {
        verdict.g3_error.emplace(FunctionalDependencyError(*table, a, rhs));
      }
      verdicts[i].emplace(std::move(verdict));
    });

    // B accumulates the dependent attributes.
    AttributeSet b;
    for (size_t i = 0; i < tested_names.size(); ++i) {
      const std::string& attribute = tested_names[i];
      const FdVerdict& verdict = *verdicts[i];
      ++result.fd_checks;
      if (!verdict.holds.ok()) return verdict.holds.status();
      if (*verdict.holds) {
        b.Insert(attribute);
      } else {
        // (ii) — the expert may enforce despite the extension; the g3
        // error tells them how much data contradicts the presumption.
        FunctionalDependency attempted(candidate.relation, a,
                                       AttributeSet::Single(attribute));
        if (!verdict.g3_error->ok()) return verdict.g3_error->status();
        if (oracle->EnforceFailedFd(attempted, verdict.g3_error->value())) {
          b.Insert(attribute);
        }
      }
    }
    outcome.dependents = b;

    if (!b.empty()) {
      FunctionalDependency fd(candidate.relation, a, b);
      if (oracle->ValidateFd(fd)) {
        // (iii): conceptualized through the FD.
        result.fds.push_back(std::move(fd));
        auto it =
            std::find(result.hidden.begin(), result.hidden.end(), candidate);
        if (it != result.hidden.end()) result.hidden.erase(it);
        outcome.disposition =
            RhsCandidateOutcome::Disposition::kFdElicited;
        result.outcomes.push_back(std::move(outcome));
        continue;
      }
      outcome.disposition = RhsCandidateOutcome::Disposition::kFdRejected;
      // Fall through to the hidden-object question: the identifier may
      // still denote an object even though its FD was rejected.
    }

    if (in_hidden(candidate)) {
      if (outcome.disposition !=
          RhsCandidateOutcome::Disposition::kFdRejected) {
        outcome.disposition =
            RhsCandidateOutcome::Disposition::kHiddenConfirmed;
      }
      result.outcomes.push_back(std::move(outcome));
      continue;
    }
    // (iv)/(v): empty dependent set — hidden object or dropped.
    if (oracle->ConceptualizeHiddenObject(candidate)) {
      result.hidden.push_back(candidate);
      outcome.disposition = RhsCandidateOutcome::Disposition::kHiddenElicited;
    } else if (outcome.disposition !=
               RhsCandidateOutcome::Disposition::kFdRejected) {
      outcome.disposition = RhsCandidateOutcome::Disposition::kDropped;
    }
    result.outcomes.push_back(std::move(outcome));
  }

  std::sort(result.fds.begin(), result.fds.end());
  std::sort(result.hidden.begin(), result.hidden.end());
  return result;
}

}  // namespace dbre
