// An oracle that replays previously journaled expert answers.
//
// Crash recovery re-runs a session's pipeline from scratch; the pipeline
// is deterministic, so it asks the same questions in the same order — but
// the expert already answered some of them before the crash. A
// ReplayOracle is primed with those answers (keyed by the question's
// subject string, the same key ScriptedOracle uses) and consumes them
// FIFO per subject: the first re-ask of a subject gets the first recorded
// answer, and so on. Questions with no recorded answer left fall through
// to the fallback oracle — in the service that is the live AsyncOracle,
// so the session resumes interactively exactly where it stopped.
//
// Per-subject queues (rather than single values) preserve order when the
// pipeline legitimately asks about the same subject twice.
#ifndef DBRE_CORE_REPLAY_ORACLE_H_
#define DBRE_CORE_REPLAY_ORACLE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <string>

#include "core/oracle.h"

namespace dbre {

class ReplayOracle : public ExpertOracle {
 public:
  ReplayOracle() = default;

  // The oracle answering questions that outrun the recording. Not owned;
  // must outlive this oracle. Defaults to DefaultOracle semantics if
  // never set.
  void SetFallback(ExpertOracle* fallback) { fallback_ = fallback; }

  // Priming: push one recorded answer for `subject` (its ToString form).
  void RecordNei(const std::string& subject, NeiDecision decision) {
    nei_[subject].push_back(std::move(decision));
    ++recorded_;
  }
  void RecordEnforceFd(const std::string& subject, bool enforce) {
    enforce_[subject].push_back(enforce);
    ++recorded_;
  }
  void RecordValidateFd(const std::string& subject, bool valid) {
    validate_[subject].push_back(valid);
    ++recorded_;
  }
  void RecordHiddenObject(const std::string& subject, bool accept) {
    hidden_[subject].push_back(accept);
    ++recorded_;
  }
  void RecordFdRelationName(const std::string& subject, std::string name) {
    fd_names_[subject].push_back(std::move(name));
    ++recorded_;
  }
  void RecordHiddenRelationName(const std::string& subject,
                                std::string name) {
    hidden_names_[subject].push_back(std::move(name));
    ++recorded_;
  }

  size_t recorded() const { return recorded_; }
  size_t replayed() const { return replayed_; }

  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override;
  bool EnforceFailedFd(const FunctionalDependency& fd) override;
  bool EnforceFailedFd(const FunctionalDependency& fd,
                       double g3_error) override;
  bool ValidateFd(const FunctionalDependency& fd) override;
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override;
  std::string NameRelationForFd(const FunctionalDependency& fd) override;
  std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source) override;

 private:
  // Pops the oldest recorded answer for `subject`, if any.
  template <typename T>
  bool Pop(std::map<std::string, std::deque<T>>* queues,
           const std::string& subject, T* out) {
    auto it = queues->find(subject);
    if (it == queues->end() || it->second.empty()) return false;
    *out = std::move(it->second.front());
    it->second.pop_front();
    ++replayed_;
    return true;
  }

  ExpertOracle* fallback_ = nullptr;  // not owned; may be null
  DefaultOracle default_oracle_;
  std::map<std::string, std::deque<NeiDecision>> nei_;
  std::map<std::string, std::deque<bool>> enforce_;
  std::map<std::string, std::deque<bool>> validate_;
  std::map<std::string, std::deque<bool>> hidden_;
  std::map<std::string, std::deque<std::string>> fd_names_;
  std::map<std::string, std::deque<std::string>> hidden_names_;
  size_t recorded_ = 0;
  size_t replayed_ = 0;
};

}  // namespace dbre

#endif  // DBRE_CORE_REPLAY_ORACLE_H_
