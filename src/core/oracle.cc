#include "core/oracle.h"

#include <algorithm>

namespace dbre {

NeiDecision ExpertOracle::DecideNonEmptyIntersection(
    const EquiJoin& join, const JoinCounts& counts) {
  (void)join;
  (void)counts;
  return NeiDecision{NeiAction::kIgnore, ""};
}

bool ExpertOracle::EnforceFailedFd(const FunctionalDependency& fd) {
  (void)fd;
  return false;
}

bool ExpertOracle::EnforceFailedFd(const FunctionalDependency& fd,
                                   double g3_error) {
  (void)g3_error;
  return EnforceFailedFd(fd);
}

bool ExpertOracle::ValidateFd(const FunctionalDependency& fd) {
  (void)fd;
  return true;
}

bool ExpertOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  (void)candidate;
  return false;
}

std::string ExpertOracle::NameRelationForFd(const FunctionalDependency& fd) {
  (void)fd;
  return "";
}

std::string ExpertOracle::NameHiddenObjectRelation(
    const QualifiedAttributes& source) {
  (void)source;
  return "";
}

NeiDecision ScriptedOracle::DecideNonEmptyIntersection(
    const EquiJoin& join, const JoinCounts& counts) {
  auto it = nei_.find(join.ToString());
  if (it != nei_.end()) return it->second;
  // Also try the flipped rendering so scripts need not match the
  // canonicalized operand order.
  it = nei_.find(join.Flipped().ToString());
  if (it != nei_.end()) {
    NeiDecision decision = it->second;
    // Directions are relative to the script's rendering; flip them back.
    if (decision.action == NeiAction::kForceLeftInRight) {
      decision.action = NeiAction::kForceRightInLeft;
    } else if (decision.action == NeiAction::kForceRightInLeft) {
      decision.action = NeiAction::kForceLeftInRight;
    }
    return decision;
  }
  ExpertOracle* delegate = fallback_ != nullptr
                               ? fallback_
                               : static_cast<ExpertOracle*>(&default_oracle_);
  return delegate->DecideNonEmptyIntersection(join, counts);
}

bool ScriptedOracle::EnforceFailedFd(const FunctionalDependency& fd) {
  auto it = enforce_.find(fd.ToString());
  if (it != enforce_.end()) return it->second;
  ExpertOracle* delegate = fallback_ != nullptr
                               ? fallback_
                               : static_cast<ExpertOracle*>(&default_oracle_);
  return delegate->EnforceFailedFd(fd);
}

bool ScriptedOracle::ValidateFd(const FunctionalDependency& fd) {
  auto it = validate_.find(fd.ToString());
  if (it != validate_.end()) return it->second;
  ExpertOracle* delegate = fallback_ != nullptr
                               ? fallback_
                               : static_cast<ExpertOracle*>(&default_oracle_);
  return delegate->ValidateFd(fd);
}

bool ScriptedOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  auto it = hidden_.find(candidate.ToString());
  if (it != hidden_.end()) return it->second;
  ExpertOracle* delegate = fallback_ != nullptr
                               ? fallback_
                               : static_cast<ExpertOracle*>(&default_oracle_);
  return delegate->ConceptualizeHiddenObject(candidate);
}

std::string ScriptedOracle::NameRelationForFd(const FunctionalDependency& fd) {
  auto it = fd_names_.find(fd.ToString());
  if (it != fd_names_.end()) return it->second;
  ExpertOracle* delegate = fallback_ != nullptr
                               ? fallback_
                               : static_cast<ExpertOracle*>(&default_oracle_);
  return delegate->NameRelationForFd(fd);
}

std::string ScriptedOracle::NameHiddenObjectRelation(
    const QualifiedAttributes& source) {
  auto it = hidden_names_.find(source.ToString());
  if (it != hidden_names_.end()) return it->second;
  ExpertOracle* delegate = fallback_ != nullptr
                               ? fallback_
                               : static_cast<ExpertOracle*>(&default_oracle_);
  return delegate->NameHiddenObjectRelation(source);
}

NeiDecision ThresholdOracle::DecideNonEmptyIntersection(
    const EquiJoin& join, const JoinCounts& counts) {
  (void)join;
  size_t smaller = std::min(counts.n_left, counts.n_right);
  if (smaller == 0) return NeiDecision{NeiAction::kIgnore, ""};
  double ratio = static_cast<double>(counts.n_join) /
                 static_cast<double>(smaller);
  if (ratio >= options_.nei_conceptualize_ratio) {
    return NeiDecision{NeiAction::kConceptualize, ""};
  }
  if (ratio >= options_.nei_force_ratio) {
    // Assert the inclusion of the smaller side into the larger one.
    return counts.n_left <= counts.n_right
               ? NeiDecision{NeiAction::kForceLeftInRight, ""}
               : NeiDecision{NeiAction::kForceRightInLeft, ""};
  }
  return NeiDecision{NeiAction::kIgnore, ""};
}

bool ThresholdOracle::EnforceFailedFd(const FunctionalDependency& fd,
                                      double g3_error) {
  (void)fd;
  return g3_error <= options_.enforce_fd_max_error && g3_error > 0.0;
}

bool ThresholdOracle::ValidateFd(const FunctionalDependency& fd) {
  (void)fd;
  return options_.validate_fds;
}

bool ThresholdOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  (void)candidate;
  return options_.accept_hidden_objects;
}

namespace {

const char* NeiActionName(NeiAction action) {
  switch (action) {
    case NeiAction::kConceptualize:
      return "conceptualize";
    case NeiAction::kForceLeftInRight:
      return "force_left_in_right";
    case NeiAction::kForceRightInLeft:
      return "force_right_in_left";
    case NeiAction::kIgnore:
      return "ignore";
  }
  return "unknown";
}

}  // namespace

NeiDecision RecordingOracle::DecideNonEmptyIntersection(
    const EquiJoin& join, const JoinCounts& counts) {
  NeiDecision decision = wrapped_->DecideNonEmptyIntersection(join, counts);
  std::string answer = NeiActionName(decision.action);
  if (!decision.relation_name.empty()) answer += ":" + decision.relation_name;
  interactions_.push_back({"nei", join.ToString(), std::move(answer)});
  return decision;
}

bool RecordingOracle::EnforceFailedFd(const FunctionalDependency& fd) {
  bool answer = wrapped_->EnforceFailedFd(fd);
  interactions_.push_back(
      {"enforce_fd", fd.ToString(), answer ? "yes" : "no"});
  return answer;
}

bool RecordingOracle::EnforceFailedFd(const FunctionalDependency& fd,
                                      double g3_error) {
  bool answer = wrapped_->EnforceFailedFd(fd, g3_error);
  interactions_.push_back({"enforce_fd",
                           fd.ToString() + " (g3=" +
                               std::to_string(g3_error) + ")",
                           answer ? "yes" : "no"});
  return answer;
}

bool RecordingOracle::ValidateFd(const FunctionalDependency& fd) {
  bool answer = wrapped_->ValidateFd(fd);
  interactions_.push_back(
      {"validate_fd", fd.ToString(), answer ? "yes" : "no"});
  return answer;
}

bool RecordingOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  bool answer = wrapped_->ConceptualizeHiddenObject(candidate);
  interactions_.push_back(
      {"hidden_object", candidate.ToString(), answer ? "yes" : "no"});
  return answer;
}

std::string RecordingOracle::NameRelationForFd(
    const FunctionalDependency& fd) {
  std::string answer = wrapped_->NameRelationForFd(fd);
  interactions_.push_back({"name_fd_relation", fd.ToString(), answer});
  return answer;
}

std::string RecordingOracle::NameHiddenObjectRelation(
    const QualifiedAttributes& source) {
  std::string answer = wrapped_->NameHiddenObjectRelation(source);
  interactions_.push_back(
      {"name_hidden_relation", source.ToString(), answer});
  return answer;
}

}  // namespace dbre
