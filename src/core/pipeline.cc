#include "core/pipeline.h"

#include <tuple>

#include "deps/ind_closure.h"
#include "deps/key_miner.h"
#include "obs/metrics.h"

namespace dbre {
namespace {

// One latency series per phase, registered on first use; the registry
// returns the same stable cell for every run.
obs::Histogram* PhaseHistogram(const char* phase) {
  return obs::Registry::Default().GetHistogram(
      "dbre_pipeline_phase_us", {{"phase", phase}},
      "Wall-clock time of each pipeline phase in microseconds");
}

}  // namespace

std::string PipelineReport::Summary() const {
  std::string out;
  out += "== K (keys from the dictionary) ==\n";
  for (const QualifiedAttributes& k : key_set) out += "  " + k.ToString() + "\n";
  out += "== N (not-null attributes) ==\n";
  for (const QualifiedAttributes& n : not_null_set) {
    out += "  " + n.ToString() + "\n";
  }
  out += "== Q (equi-joins from application programs) ==\n";
  for (const EquiJoin& join : joins) out += "  " + join.ToString() + "\n";
  out += "== IND (inclusion dependencies) ==\n";
  for (const InclusionDependency& ind : this->ind.inds) {
    out += "  " + ind.ToString() + "\n";
  }
  out += "== S (conceptualized relations) ==\n";
  for (const std::string& relation : ind.new_relations) {
    out += "  " + relation + "\n";
  }
  out += "== LHS (candidate FD left-hand sides) ==\n";
  for (const QualifiedAttributes& qa : lhs.lhs) {
    out += "  " + qa.ToString() + "\n";
  }
  out += "== F (elicited functional dependencies) ==\n";
  for (const FunctionalDependency& fd : rhs.fds) {
    out += "  " + fd.ToString() + "\n";
  }
  out += "== H (hidden objects) ==\n";
  for (const QualifiedAttributes& qa : rhs.hidden) {
    out += "  " + qa.ToString() + "\n";
  }
  out += "== Restructured schema ==\n";
  out += restruct.database.DescribeSchema();
  out += "== RIC (referential integrity constraints) ==\n";
  for (const InclusionDependency& ric : restruct.rics) {
    out += "  " + ric.ToString() + "\n";
  }
  out += "== EER schema ==\n";
  out += eer.ToText();
  return out;
}

Result<PipelineReport> RunPipeline(const Database& database,
                                   const std::vector<EquiJoin>& joins,
                                   ExpertOracle* oracle,
                                   const PipelineOptions& options) {
  if (oracle == nullptr) return InvalidArgumentError("oracle is null");

  auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };
  auto enter_phase = [&options, &cancelled](const char* phase) {
    if (cancelled()) return false;
    if (options.on_phase) options.on_phase(phase);
    return true;
  };

  PipelineReport report;
  report.key_set = database.KeySet();
  report.not_null_set = database.NotNullSet();
  report.joins = CanonicalJoinSet(joins);

  // Materialize each input table's (lazy) query-cache handle before
  // cloning: the working copy then shares it, so encodings and partitions
  // memoized during this run stay attached to the caller's catalog and are
  // reused by later runs over the same extension.
  for (const std::string& relation : database.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    DBRE_RETURN_IF_ERROR(table->query_cache().status());
  }

  // IND-Discovery works on a clone: conceptualized relations join R as S.
  Database working = database.Clone();

  if (options.infer_missing_keys) {
    KeyMinerOptions miner_options;
    miner_options.max_key_size = options.inferred_key_max_size;
    for (const std::string& relation : working.RelationNames()) {
      DBRE_ASSIGN_OR_RETURN(Table * table,
                            working.GetMutableTable(relation));
      if (!table->schema().unique_constraints().empty()) continue;
      DBRE_ASSIGN_OR_RETURN(std::vector<AttributeSet> keys,
                            MineCandidateKeys(*table, miner_options));
      if (keys.empty()) continue;
      // Several minimal unique sets may exist; prefer the one the
      // programmers navigate on (its attributes appear in Q's joins over
      // this relation), then the smallest, then lexicographic order.
      AttributeSet joined;
      for (const EquiJoin& join : report.joins) {
        if (join.left_relation == relation) {
          joined = joined.Union(join.LeftAttributeSet());
        }
        if (join.right_relation == relation) {
          joined = joined.Union(join.RightAttributeSet());
        }
      }
      const AttributeSet* best = &keys.front();
      auto score = [&](const AttributeSet& key) {
        return std::make_tuple(key.Intersects(joined) ? 0 : 1, key.size(),
                               key.ToString());
      };
      for (const AttributeSet& key : keys) {
        if (score(key) < score(*best)) best = &key;
      }
      DBRE_RETURN_IF_ERROR(table->mutable_schema().DeclareUnique(*best));
    }
    // K and N now reflect the inferred declarations.
    report.key_set = working.KeySet();
    report.not_null_set = working.NotNullSet();
  }

  const Status kCancelled = FailedPreconditionError("pipeline cancelled");
  obs::Registry& registry = obs::Registry::Default();
  obs::SlowOpLog* slow_ops = registry.slow_ops();
  registry
      .GetCounter("dbre_pipeline_runs_total", {},
                  "Pipeline runs started (successful or not)")
      ->Add(1);

  if (!enter_phase("ind_discovery")) return kCancelled;
  {
    obs::TraceSpan span("pipeline:ind_discovery", options.trace,
                        PhaseHistogram("ind_discovery"), slow_ops);
    DBRE_ASSIGN_OR_RETURN(
        report.ind, DiscoverInds(&working, report.joins, oracle, options.ind));
    report.timings.ind_discovery_us = span.Finish();
  }
  registry
      .GetCounter("dbre_ind_extension_queries_total", {},
                  "Extension queries issued by IND-Discovery")
      ->Add(report.ind.extension_queries);

  if (options.close_inds) {
    report.ind.inds = TransitiveClosure(std::move(report.ind.inds));
  }

  if (!enter_phase("lhs_discovery")) return kCancelled;
  {
    obs::TraceSpan span("pipeline:lhs_discovery", options.trace,
                        PhaseHistogram("lhs_discovery"), slow_ops);
    report.lhs = DiscoverLhs(working, report.ind.new_relations,
                             report.ind.inds);
    report.timings.lhs_discovery_us = span.Finish();
  }

  if (!enter_phase("rhs_discovery")) return kCancelled;
  {
    obs::TraceSpan span("pipeline:rhs_discovery", options.trace,
                        PhaseHistogram("rhs_discovery"), slow_ops);
    DBRE_ASSIGN_OR_RETURN(
        report.rhs, DiscoverRhs(working, report.lhs.lhs, report.lhs.hidden,
                                oracle, options.rhs));
    report.timings.rhs_discovery_us = span.Finish();
  }
  registry
      .GetCounter("dbre_rhs_fd_tests_total", {},
                  "Candidate FDs tested against the extension")
      ->Add(report.rhs.fd_checks);

  if (options.run_restruct) {
    if (!enter_phase("restruct")) return kCancelled;
    obs::TraceSpan span("pipeline:restruct", options.trace,
                        PhaseHistogram("restruct"), slow_ops);
    DBRE_ASSIGN_OR_RETURN(
        report.restruct, Restruct(working, report.rhs.fds, report.rhs.hidden,
                                  report.ind.inds, oracle));
    report.timings.restruct_us = span.Finish();
  }

  if (options.run_restruct && options.run_translate) {
    if (!enter_phase("translate")) return kCancelled;
    obs::TraceSpan span("pipeline:translate", options.trace,
                        PhaseHistogram("translate"), slow_ops);
    DBRE_ASSIGN_OR_RETURN(report.eer,
                          Translate(report.restruct, options.translate));
    report.timings.translate_us = span.Finish();
  }
  if (cancelled()) return kCancelled;
  registry
      .GetCounter("dbre_pipeline_runs_completed_total", {},
                  "Pipeline runs that produced a report")
      ->Add(1);
  report.working_database = std::move(working);
  return report;
}

}  // namespace dbre
