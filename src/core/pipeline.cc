#include "core/pipeline.h"

#include <chrono>
#include <tuple>

#include "deps/ind_closure.h"
#include "deps/key_miner.h"

namespace dbre {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string PipelineReport::Summary() const {
  std::string out;
  out += "== K (keys from the dictionary) ==\n";
  for (const QualifiedAttributes& k : key_set) out += "  " + k.ToString() + "\n";
  out += "== N (not-null attributes) ==\n";
  for (const QualifiedAttributes& n : not_null_set) {
    out += "  " + n.ToString() + "\n";
  }
  out += "== Q (equi-joins from application programs) ==\n";
  for (const EquiJoin& join : joins) out += "  " + join.ToString() + "\n";
  out += "== IND (inclusion dependencies) ==\n";
  for (const InclusionDependency& ind : this->ind.inds) {
    out += "  " + ind.ToString() + "\n";
  }
  out += "== S (conceptualized relations) ==\n";
  for (const std::string& relation : ind.new_relations) {
    out += "  " + relation + "\n";
  }
  out += "== LHS (candidate FD left-hand sides) ==\n";
  for (const QualifiedAttributes& qa : lhs.lhs) {
    out += "  " + qa.ToString() + "\n";
  }
  out += "== F (elicited functional dependencies) ==\n";
  for (const FunctionalDependency& fd : rhs.fds) {
    out += "  " + fd.ToString() + "\n";
  }
  out += "== H (hidden objects) ==\n";
  for (const QualifiedAttributes& qa : rhs.hidden) {
    out += "  " + qa.ToString() + "\n";
  }
  out += "== Restructured schema ==\n";
  out += restruct.database.DescribeSchema();
  out += "== RIC (referential integrity constraints) ==\n";
  for (const InclusionDependency& ric : restruct.rics) {
    out += "  " + ric.ToString() + "\n";
  }
  out += "== EER schema ==\n";
  out += eer.ToText();
  return out;
}

Result<PipelineReport> RunPipeline(const Database& database,
                                   const std::vector<EquiJoin>& joins,
                                   ExpertOracle* oracle,
                                   const PipelineOptions& options) {
  if (oracle == nullptr) return InvalidArgumentError("oracle is null");

  auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };
  auto enter_phase = [&options, &cancelled](const char* phase) {
    if (cancelled()) return false;
    if (options.on_phase) options.on_phase(phase);
    return true;
  };

  PipelineReport report;
  report.key_set = database.KeySet();
  report.not_null_set = database.NotNullSet();
  report.joins = CanonicalJoinSet(joins);

  // Materialize each input table's (lazy) query-cache handle before
  // cloning: the working copy then shares it, so encodings and partitions
  // memoized during this run stay attached to the caller's catalog and are
  // reused by later runs over the same extension.
  for (const std::string& relation : database.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    DBRE_RETURN_IF_ERROR(table->query_cache().status());
  }

  // IND-Discovery works on a clone: conceptualized relations join R as S.
  Database working = database.Clone();

  if (options.infer_missing_keys) {
    KeyMinerOptions miner_options;
    miner_options.max_key_size = options.inferred_key_max_size;
    for (const std::string& relation : working.RelationNames()) {
      DBRE_ASSIGN_OR_RETURN(Table * table,
                            working.GetMutableTable(relation));
      if (!table->schema().unique_constraints().empty()) continue;
      DBRE_ASSIGN_OR_RETURN(std::vector<AttributeSet> keys,
                            MineCandidateKeys(*table, miner_options));
      if (keys.empty()) continue;
      // Several minimal unique sets may exist; prefer the one the
      // programmers navigate on (its attributes appear in Q's joins over
      // this relation), then the smallest, then lexicographic order.
      AttributeSet joined;
      for (const EquiJoin& join : report.joins) {
        if (join.left_relation == relation) {
          joined = joined.Union(join.LeftAttributeSet());
        }
        if (join.right_relation == relation) {
          joined = joined.Union(join.RightAttributeSet());
        }
      }
      const AttributeSet* best = &keys.front();
      auto score = [&](const AttributeSet& key) {
        return std::make_tuple(key.Intersects(joined) ? 0 : 1, key.size(),
                               key.ToString());
      };
      for (const AttributeSet& key : keys) {
        if (score(key) < score(*best)) best = &key;
      }
      DBRE_RETURN_IF_ERROR(table->mutable_schema().DeclareUnique(*best));
    }
    // K and N now reflect the inferred declarations.
    report.key_set = working.KeySet();
    report.not_null_set = working.NotNullSet();
  }

  const Status kCancelled = FailedPreconditionError("pipeline cancelled");

  if (!enter_phase("ind_discovery")) return kCancelled;
  int64_t t0 = NowUs();
  DBRE_ASSIGN_OR_RETURN(
      report.ind, DiscoverInds(&working, report.joins, oracle, options.ind));
  int64_t t1 = NowUs();
  report.timings.ind_discovery_us = t1 - t0;

  if (options.close_inds) {
    report.ind.inds = TransitiveClosure(std::move(report.ind.inds));
  }

  if (!enter_phase("lhs_discovery")) return kCancelled;
  report.lhs = DiscoverLhs(working, report.ind.new_relations,
                           report.ind.inds);
  int64_t t2 = NowUs();
  report.timings.lhs_discovery_us = t2 - t1;

  if (!enter_phase("rhs_discovery")) return kCancelled;
  DBRE_ASSIGN_OR_RETURN(
      report.rhs, DiscoverRhs(working, report.lhs.lhs, report.lhs.hidden,
                              oracle, options.rhs));
  int64_t t3 = NowUs();
  report.timings.rhs_discovery_us = t3 - t2;

  if (!enter_phase("restruct")) return kCancelled;
  DBRE_ASSIGN_OR_RETURN(
      report.restruct, Restruct(working, report.rhs.fds, report.rhs.hidden,
                                report.ind.inds, oracle));
  int64_t t4 = NowUs();
  report.timings.restruct_us = t4 - t3;

  if (options.run_translate) {
    if (!enter_phase("translate")) return kCancelled;
    DBRE_ASSIGN_OR_RETURN(report.eer,
                          Translate(report.restruct, options.translate));
  }
  if (cancelled()) return kCancelled;
  report.timings.translate_us = NowUs() - t4;
  report.working_database = std::move(working);
  return report;
}

}  // namespace dbre
