// A stream-based interactive expert — the paper's actual user experience.
//
// Each decision point prints the question and its context (the join, the
// three valuations, the failed FD, ...) to the output stream and reads the
// answer from the input stream. Line-oriented so it works on a terminal
// and is testable with stringstreams. Unparseable/EOF input falls back to
// the conservative default answer.
#ifndef DBRE_CORE_INTERACTIVE_ORACLE_H_
#define DBRE_CORE_INTERACTIVE_ORACLE_H_

#include <istream>
#include <ostream>

#include "core/oracle.h"

namespace dbre {

class InteractiveOracle : public ExpertOracle {
 public:
  // Neither stream is owned; both must outlive the oracle.
  InteractiveOracle(std::istream* in, std::ostream* out)
      : in_(in), out_(out) {}

  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override;
  bool EnforceFailedFd(const FunctionalDependency& fd) override;
  bool EnforceFailedFd(const FunctionalDependency& fd,
                       double g3_error) override;
  bool ValidateFd(const FunctionalDependency& fd) override;
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override;
  std::string NameRelationForFd(const FunctionalDependency& fd) override;
  std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source) override;

 private:
  // Reads one trimmed line; empty on EOF.
  std::string ReadLine();
  // y/n question; `fallback` on EOF or unrecognized input.
  bool AskYesNo(const std::string& question, bool fallback);

  std::istream* in_;
  std::ostream* out_;
};

}  // namespace dbre

#endif  // DBRE_CORE_INTERACTIVE_ORACLE_H_
