// Restruct (§7): restructuring the 1NF schema into 3NF with keys and
// referential integrity constraints.
//
// Two passes over the elicited knowledge, then a harvest:
//   1. Hidden objects: each R_i.A_i ∈ H becomes a new relation R_p(A_i)
//      with key A_i (extension: the distinct non-NULL A_i-projection of
//      r_i). The IND R_i[A_i] ≪ R_p[A_i] is added and every *other*
//      occurrence of R_i[C], C ⊆ A_i, in IND is rewritten to R_p[C].
//   2. FDs: each R_i: A_i → B_i ∈ F becomes R_p(A_i ∪ B_i) with key A_i
//      (extension: one row per distinct non-NULL A_i value, dependent
//      values taken from the first witnessing tuple — they agree whenever
//      the FD actually holds; enforced FDs resolve conflicts
//      first-wins). B_i is removed from R_i (schema and rows), the IND
//      R_i[A_i] ≪ R_p[A_i] is added, and every other occurrence of
//      R_i[C], C ⊆ A_i ∪ B_i, is rewritten to R_p[C].
//      (The paper's text reads "add R_i.A_i to K", but its own output
//      schema keys A_i in R_p, not R_i — we follow the output.)
//   3. RIC = { R_i[A_i] ≪ R_j[A_j] ∈ IND : R_j.A_j ∈ K }.
//
// The input database is cloned; the result owns the restructured catalog
// with all new key declarations, so downstream steps (Translate, normal-
// form verification) can query it.
#ifndef DBRE_CORE_RESTRUCT_H_
#define DBRE_CORE_RESTRUCT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/oracle.h"
#include "deps/fd.h"
#include "deps/ind.h"
#include "relational/database.h"

namespace dbre {

struct RestructResult {
  Database database;                        // restructured R ∪ S
  std::vector<InclusionDependency> inds;    // rewritten IND
  std::vector<InclusionDependency> rics;    // RIC ⊆ inds
  std::vector<QualifiedAttributes> keys;    // the final K
  // name of each relation created here → what it came from ("hidden object
  // R.{a}" or the FD's textual form).
  std::map<std::string, std::string> provenance;
};

// Runs Restruct. `oracle` provides application-domain names for the new
// relations (auto-derived when it returns "").
Result<RestructResult> Restruct(const Database& database,
                                const std::vector<FunctionalDependency>& fds,
                                const std::vector<QualifiedAttributes>& hidden,
                                const std::vector<InclusionDependency>& inds,
                                ExpertOracle* oracle);

}  // namespace dbre

#endif  // DBRE_CORE_RESTRUCT_H_
