#include "core/report_json.h"

#include <fstream>

namespace dbre {
namespace {

// Minimal JSON writer with an indentation-aware builder.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  std::string Take() { return std::move(out_); }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& name) {
    Separate();
    out_ += Quote(name);
    out_ += pretty_ ? ": " : ":";
    pending_value_ = true;
  }

  void String(const std::string& value) {
    Separate();
    out_ += Quote(value);
  }
  void Number(int64_t value) {
    Separate();
    out_ += std::to_string(value);
  }
  void Double(double value) {
    Separate();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out_ += buffer;
  }
  void Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
  }

  // Convenience: array of strings.
  void StringArray(const std::vector<std::string>& values) {
    BeginArray();
    for (const std::string& value : values) String(value);
    EndArray();
  }

 private:
  static std::string Quote(const std::string& text) {
    std::string out = "\"";
    for (char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  void Open(char bracket) {
    Separate();
    out_ += bracket;
    needs_comma_.push_back(false);
    ++depth_;
  }

  void Close(char bracket) {
    --depth_;
    needs_comma_.pop_back();
    if (pretty_) {
      out_ += '\n';
      out_.append(static_cast<size_t>(depth_) * 2, ' ');
    }
    out_ += bracket;
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }

  // Emits a comma/newline before a new value or key as needed.
  void Separate() {
    if (pending_value_) {
      // Directly after a key: no comma, no newline.
      pending_value_ = false;
      return;
    }
    if (needs_comma_.empty()) return;
    if (needs_comma_.back()) out_ += ',';
    if (pretty_) {
      out_ += '\n';
      out_.append(static_cast<size_t>(depth_) * 2, ' ');
    }
    needs_comma_.back() = true;
  }

  std::string out_;
  bool pretty_;
  bool pending_value_ = false;
  int depth_ = 0;
  std::vector<bool> needs_comma_;
};

void WriteQualified(JsonWriter& json, const QualifiedAttributes& qa) {
  json.BeginObject();
  json.Key("relation");
  json.String(qa.relation);
  json.Key("attributes");
  json.StringArray(qa.attributes.names());
  json.EndObject();
}

void WriteQualifiedArray(JsonWriter& json,
                         const std::vector<QualifiedAttributes>& items) {
  json.BeginArray();
  for (const QualifiedAttributes& item : items) WriteQualified(json, item);
  json.EndArray();
}

void WriteSide(JsonWriter& json, const std::string& relation,
               const std::vector<std::string>& attributes) {
  json.BeginObject();
  json.Key("relation");
  json.String(relation);
  json.Key("attributes");
  json.StringArray(attributes);
  json.EndObject();
}

void WriteJoin(JsonWriter& json, const EquiJoin& join) {
  json.BeginObject();
  json.Key("left");
  WriteSide(json, join.left_relation, join.left_attributes);
  json.Key("right");
  WriteSide(json, join.right_relation, join.right_attributes);
  json.EndObject();
}

void WriteInd(JsonWriter& json, const InclusionDependency& ind) {
  json.BeginObject();
  json.Key("lhs");
  WriteSide(json, ind.lhs_relation, ind.lhs_attributes);
  json.Key("rhs");
  WriteSide(json, ind.rhs_relation, ind.rhs_attributes);
  json.EndObject();
}

void WriteIndArray(JsonWriter& json,
                   const std::vector<InclusionDependency>& inds) {
  json.BeginArray();
  for (const InclusionDependency& ind : inds) WriteInd(json, ind);
  json.EndArray();
}

}  // namespace

std::string ReportToJson(const PipelineReport& report,
                         const JsonOptions& options) {
  JsonWriter json(options.pretty);
  json.BeginObject();

  json.Key("keys");
  WriteQualifiedArray(json, report.key_set);
  json.Key("not_null");
  WriteQualifiedArray(json, report.not_null_set);

  json.Key("queries");
  json.BeginArray();
  for (const EquiJoin& join : report.joins) WriteJoin(json, join);
  json.EndArray();

  json.Key("inds");
  WriteIndArray(json, report.ind.inds);
  json.Key("new_relations");
  json.StringArray(report.ind.new_relations);

  json.Key("join_outcomes");
  json.BeginArray();
  for (const JoinOutcome& outcome : report.ind.outcomes) {
    json.BeginObject();
    json.Key("join");
    WriteJoin(json, outcome.join);
    json.Key("counts");
    json.BeginObject();
    json.Key("left");
    json.Number(static_cast<int64_t>(outcome.counts.n_left));
    json.Key("right");
    json.Number(static_cast<int64_t>(outcome.counts.n_right));
    json.Key("join");
    json.Number(static_cast<int64_t>(outcome.counts.n_join));
    json.EndObject();
    json.Key("kind");
    json.String(JoinOutcomeKindName(outcome.kind));
    if (!outcome.detail.empty()) {
      json.Key("detail");
      json.String(outcome.detail);
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("lhs_candidates");
  WriteQualifiedArray(json, report.lhs.lhs);
  json.Key("hidden_objects");
  WriteQualifiedArray(json, report.rhs.hidden);

  json.Key("fds");
  json.BeginArray();
  for (const FunctionalDependency& fd : report.rhs.fds) {
    json.BeginObject();
    json.Key("relation");
    json.String(fd.relation);
    json.Key("lhs");
    json.StringArray(fd.lhs.names());
    json.Key("rhs");
    json.StringArray(fd.rhs.names());
    json.EndObject();
  }
  json.EndArray();

  json.Key("restructured_schema");
  json.BeginArray();
  for (const std::string& relation :
       report.restruct.database.RelationNames()) {
    const Table& table = **report.restruct.database.GetTable(relation);
    json.BeginObject();
    json.Key("name");
    json.String(relation);
    json.Key("attributes");
    json.StringArray(table.schema().AttributeNames().names());
    json.Key("key");
    auto key = table.schema().PrimaryKey();
    json.StringArray(key.has_value() ? key->names()
                                     : std::vector<std::string>{});
    json.Key("not_null");
    json.StringArray(table.schema().NotNullAttributes().names());
    json.Key("tuples");
    json.Number(static_cast<int64_t>(table.num_rows()));
    auto provenance = report.restruct.provenance.find(relation);
    if (provenance != report.restruct.provenance.end()) {
      json.Key("provenance");
      json.String(provenance->second);
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("rics");
  WriteIndArray(json, report.restruct.rics);

  json.Key("eer");
  json.BeginObject();
  json.Key("entities");
  json.BeginArray();
  for (const eer::EntityType& entity : report.eer.entities()) {
    json.BeginObject();
    json.Key("name");
    json.String(entity.name);
    json.Key("attributes");
    json.StringArray(entity.attributes.names());
    json.Key("identifier");
    json.StringArray(entity.identifier.names());
    json.Key("weak");
    json.Bool(entity.weak);
    json.EndObject();
  }
  json.EndArray();
  json.Key("relationships");
  json.BeginArray();
  for (const eer::RelationshipType& relationship :
       report.eer.relationships()) {
    json.BeginObject();
    json.Key("name");
    json.String(relationship.name);
    json.Key("roles");
    json.BeginArray();
    for (const eer::Role& role : relationship.roles) {
      json.BeginObject();
      json.Key("entity");
      json.String(role.entity);
      json.Key("cardinality");
      json.String(eer::CardinalityName(role.cardinality));
      json.Key("role");
      json.String(role.role_name);
      json.EndObject();
    }
    json.EndArray();
    json.Key("attributes");
    json.StringArray(relationship.attributes.names());
    json.EndObject();
  }
  json.EndArray();
  json.Key("isa");
  json.BeginArray();
  for (const eer::IsALink& link : report.eer.isa_links()) {
    json.BeginObject();
    json.Key("subtype");
    json.String(link.subtype);
    json.Key("supertype");
    json.String(link.supertype);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  if (options.include_timings) {
    json.Key("timings_us");
    json.BeginObject();
    json.Key("ind_discovery");
    json.Number(report.timings.ind_discovery_us);
    json.Key("lhs_discovery");
    json.Number(report.timings.lhs_discovery_us);
    json.Key("rhs_discovery");
    json.Number(report.timings.rhs_discovery_us);
    json.Key("restruct");
    json.Number(report.timings.restruct_us);
    json.Key("translate");
    json.Number(report.timings.translate_us);
    json.EndObject();
  }

  json.EndObject();
  std::string out = json.Take();
  if (options.pretty) out += '\n';
  return out;
}

Status WriteReportJson(const PipelineReport& report, const std::string& path,
                       const JsonOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return IoError("cannot open " + path + " for writing");
  out << ReportToJson(report, options);
  if (!out) return IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace dbre
