// JSON export of a PipelineReport, for downstream tooling (schema
// visualizers, migration planners, CI checks on re-runs).
//
// The emitter is self-contained (no third-party JSON dependency) and
// produces a stable, documented layout:
//
// {
//   "keys":      [{"relation": "...", "attributes": ["..."]}],
//   "not_null":  [{"relation": "...", "attributes": ["..."]}],
//   "queries":   [{"left": {...}, "right": {...}}],
//   "inds":      [{"lhs": {...}, "rhs": {...}}],
//   "new_relations": ["..."],
//   "join_outcomes": [{"join": {...}, "counts": {...}, "kind": "..."}],
//   "lhs_candidates": [...], "hidden_objects": [...],
//   "fds":       [{"relation": "...", "lhs": [...], "rhs": [...]}],
//   "restructured_schema": [{"name": ..., "attributes": [...],
//                            "key": [...], "not_null": [...],
//                            "tuples": N, "provenance": "..."}],
//   "rics":      [...],
//   "eer": {"entities": [...], "relationships": [...], "isa": [...]},
//   "timings_us": {...}
// }
#ifndef DBRE_CORE_REPORT_JSON_H_
#define DBRE_CORE_REPORT_JSON_H_

#include <string>

#include "common/status.h"
#include "core/pipeline.h"

namespace dbre {

struct JsonOptions {
  bool pretty = true;  // newlines + two-space indentation
  // Omit the "timings_us" block — wall-clock varies run to run, so reports
  // meant to be compared byte for byte (CI re-runs, the dbred service's
  // scripted-vs-live checks) drop it.
  bool include_timings = true;
};

// Serializes `report` to JSON.
std::string ReportToJson(const PipelineReport& report,
                         const JsonOptions& options = {});

// Writes the JSON to `path`.
Status WriteReportJson(const PipelineReport& report, const std::string& path,
                       const JsonOptions& options = {});

}  // namespace dbre

#endif  // DBRE_CORE_REPORT_JSON_H_
