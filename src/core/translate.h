// Translate (§7): mapping the restructured 3NF relational schema onto EER
// structures.
//
// Every relation first maps to an object-type. Then the referential
// integrity constraints drive the classification, fleshing out the paper's
// sketch:
//   * Relationship relations: if the key of R_l is partitioned by the
//     left-hand sides of R_l's RICs (≥ 2 disjoint parts covering the key),
//     R_l becomes an n-ary many-to-many relationship-type among the
//     referenced entities; its non-key attributes become relationship
//     attributes (Assignment in Figure 1). RICs from R_l on non-key
//     attributes add extra roles with cardinality 1.
//   * is-a: a RIC whose left-hand side is exactly the key of R_l makes
//     R_l a subtype of R_k (Manager is-a Employee; Ass-Dept is-a both
//     Other-Dept and Department).
//   * Weak entities: a RIC whose left-hand side is a proper subset of
//     R_l's key makes R_l a weak entity owned by R_k, linked through an
//     identifying one-to-many relationship (HEmployee under Employee).
//   * Binary relationship-types: a RIC on a non-key left-hand side links
//     R_l (many) to R_k (one) through a binary relationship (Department —
//     Manager).
#ifndef DBRE_CORE_TRANSLATE_H_
#define DBRE_CORE_TRANSLATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/restruct.h"
#include "eer/model.h"

namespace dbre {

struct TranslateOptions {
  // Prefix used when naming generated relationship types; the default
  // yields e.g. "Department_emp" for the Department—Manager link.
  bool include_attributes_in_names = true;
  // Collapse is-a cycles (from cyclic key-based INDs) into single entities
  // — the case the paper's sketch leaves open. See eer/transform.h.
  bool merge_isa_cycles = false;
};

// Translates a restructured schema into an EER schema. `restructured`
// provides the catalog (relations + keys) and the RIC set.
Result<eer::EerSchema> Translate(const RestructResult& restructured,
                                 const TranslateOptions& options = {});

}  // namespace dbre

#endif  // DBRE_CORE_TRANSLATE_H_
