#include "core/interactive_oracle.h"

#include <cstdio>
#include <string>

#include "common/string_util.h"

namespace dbre {

std::string InteractiveOracle::ReadLine() {
  std::string line;
  if (!std::getline(*in_, line)) return "";
  return std::string(TrimWhitespace(line));
}

bool InteractiveOracle::AskYesNo(const std::string& question,
                                 bool fallback) {
  *out_ << question << " [y/n] " << std::flush;
  std::string answer = ToLower(ReadLine());
  if (answer == "y" || answer == "yes") return true;
  if (answer == "n" || answer == "no") return false;
  *out_ << "(using default: " << (fallback ? "yes" : "no") << ")\n";
  return fallback;
}

NeiDecision InteractiveOracle::DecideNonEmptyIntersection(
    const EquiJoin& join, const JoinCounts& counts) {
  *out_ << "\nNon-empty intersection on " << join.ToString() << "\n"
        << "  ||left||  = " << counts.n_left << "\n"
        << "  ||right|| = " << counts.n_right << "\n"
        << "  ||join||  = " << counts.n_join << "\n"
        << "Choose: [c]onceptualize as a new relation, force [l]eft << "
           "right,\n        force [r]ight << left, or [i]gnore: "
        << std::flush;
  std::string answer = ToLower(ReadLine());
  if (answer == "c" || answer == "conceptualize") {
    *out_ << "Name for the new relation (empty = derive): " << std::flush;
    std::string name = ReadLine();
    return NeiDecision{NeiAction::kConceptualize, name};
  }
  if (answer == "l" || answer == "left") {
    return NeiDecision{NeiAction::kForceLeftInRight, ""};
  }
  if (answer == "r" || answer == "right") {
    return NeiDecision{NeiAction::kForceRightInLeft, ""};
  }
  if (answer != "i" && answer != "ignore" && !answer.empty()) {
    *out_ << "(unrecognized, ignoring the intersection)\n";
  }
  return NeiDecision{NeiAction::kIgnore, ""};
}

bool InteractiveOracle::EnforceFailedFd(const FunctionalDependency& fd) {
  return AskYesNo("\nThe extension violates " + fd.ToString() +
                      ". Enforce it anyway (data-integrity problem)?",
                  /*fallback=*/false);
}

bool InteractiveOracle::EnforceFailedFd(const FunctionalDependency& fd,
                                        double g3_error) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f%%", g3_error * 100.0);
  return AskYesNo("\nThe extension violates " + fd.ToString() + " (" +
                      buffer +
                      " of tuples contradict it). Enforce it anyway?",
                  /*fallback=*/false);
}

bool InteractiveOracle::ValidateFd(const FunctionalDependency& fd) {
  return AskYesNo("\nElicited " + fd.ToString() +
                      ". Is it meaningful in the application domain "
                      "(not a mere integrity constraint)?",
                  /*fallback=*/true);
}

bool InteractiveOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  return AskYesNo("\nNo dependent attributes for " + candidate.ToString() +
                      ". Conceptualize it as a hidden object?",
                  /*fallback=*/false);
}

std::string InteractiveOracle::NameRelationForFd(
    const FunctionalDependency& fd) {
  *out_ << "\nName for the relation split off by " << fd.ToString()
        << " (empty = derive): " << std::flush;
  return ReadLine();
}

std::string InteractiveOracle::NameHiddenObjectRelation(
    const QualifiedAttributes& source) {
  *out_ << "\nName for the relation materializing hidden object "
        << source.ToString() << " (empty = derive): " << std::flush;
  return ReadLine();
}

}  // namespace dbre
