#include "core/translate.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "eer/transform.h"

namespace dbre {
namespace {

// RICs grouped by their left-hand relation.
using RicsByRelation =
    std::map<std::string, std::vector<const InclusionDependency*>>;

// True if the key is partitioned by ≥2 disjoint RIC left-hand sides
// covering it entirely; fills `parts` with the partitioning RICs.
bool KeyPartitionedByRics(
    const AttributeSet& key,
    const std::vector<const InclusionDependency*>& rics,
    std::vector<const InclusionDependency*>* parts) {
  parts->clear();
  AttributeSet covered;
  for (const InclusionDependency* ric : rics) {
    AttributeSet side = ric->LhsAttributeSet();
    if (!key.ContainsAll(side)) continue;   // not a key part
    if (covered.Intersects(side)) continue; // overlap — not a partition
    covered = covered.Union(side);
    parts->push_back(ric);
  }
  return parts->size() >= 2 && covered == key;
}

std::string RelationshipName(const std::string& relation,
                             const AttributeSet& attributes,
                             bool include_attributes) {
  if (!include_attributes || attributes.empty()) return relation;
  return relation + "_" + Join(attributes.names(), "_");
}

// Uniquifies `base` against the relationship names already in `schema`.
std::string UniqueRelationshipName(const eer::EerSchema& schema,
                                   std::string base) {
  auto taken = [&](const std::string& name) {
    return std::any_of(
        schema.relationships().begin(), schema.relationships().end(),
        [&](const eer::RelationshipType& r) { return r.name == name; });
  };
  std::string name = base;
  int suffix = 2;
  while (taken(name)) name = base + "_" + std::to_string(suffix++);
  return name;
}

}  // namespace

Result<eer::EerSchema> Translate(const RestructResult& restructured,
                                 const TranslateOptions& options) {
  const Database& database = restructured.database;
  eer::EerSchema schema;

  RicsByRelation by_relation;
  for (const InclusionDependency& ric : restructured.rics) {
    by_relation[ric.lhs_relation].push_back(&ric);
  }

  // Decide which relations become relationship-types (key partitioned by
  // RIC left-hand sides).
  std::map<std::string, std::vector<const InclusionDependency*>>
      relationship_parts;
  for (const std::string& relation : database.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    auto key = table->schema().PrimaryKey();
    if (!key.has_value()) continue;
    auto it = by_relation.find(relation);
    if (it == by_relation.end()) continue;
    std::vector<const InclusionDependency*> parts;
    if (KeyPartitionedByRics(*key, it->second, &parts)) {
      relationship_parts[relation] = std::move(parts);
    }
  }

  // Map every non-relationship relation to an entity type.
  for (const std::string& relation : database.RelationNames()) {
    if (relationship_parts.contains(relation)) continue;
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    eer::EntityType entity;
    entity.name = relation;
    entity.attributes = table->schema().AttributeNames();
    if (auto key = table->schema().PrimaryKey(); key.has_value()) {
      entity.identifier = *key;
    }
    DBRE_RETURN_IF_ERROR(schema.AddEntity(std::move(entity)));
  }

  // Relationship relations become n-ary relationship types.
  for (const auto& [relation, parts] : relationship_parts) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    eer::RelationshipType relationship;
    relationship.name = relation;
    AttributeSet key = table->schema().PrimaryKey().value();
    relationship.attributes = table->schema().AttributeNames().Minus(key);
    for (const InclusionDependency* ric : parts) {
      eer::Role role;
      role.entity = ric->rhs_relation;
      role.cardinality = eer::Cardinality::kMany;
      role.role_name = Join(ric->lhs_attributes, "_");
      relationship.roles.push_back(std::move(role));
    }
    // Extra RICs on non-key attributes of a relationship relation add
    // single-cardinality roles.
    for (const InclusionDependency* ric : by_relation[relation]) {
      if (std::find(parts.begin(), parts.end(), ric) != parts.end()) {
        continue;
      }
      AttributeSet side = ric->LhsAttributeSet();
      if (side.Intersects(key)) continue;  // partial key overlap: skip
      eer::Role role;
      role.entity = ric->rhs_relation;
      role.cardinality = eer::Cardinality::kOne;
      role.role_name = Join(ric->lhs_attributes, "_");
      relationship.roles.push_back(std::move(role));
      // The referencing attributes live in the relationship, not as
      // relationship attributes.
      relationship.attributes = relationship.attributes.Minus(side);
    }
    DBRE_RETURN_IF_ERROR(schema.AddRelationship(std::move(relationship)));
  }

  // Remaining RICs of entity relations: is-a, weak entity, or binary
  // relationship.
  for (const InclusionDependency& ric : restructured.rics) {
    if (relationship_parts.contains(ric.lhs_relation)) continue;
    if (!schema.HasEntity(ric.rhs_relation)) {
      // Target was folded into a relationship type; no EER construct.
      continue;
    }
    DBRE_ASSIGN_OR_RETURN(const Table* table,
                          database.GetTable(ric.lhs_relation));
    AttributeSet side = ric.LhsAttributeSet();
    auto key = table->schema().PrimaryKey();

    if (key.has_value() && side == *key) {
      // (a) is-a link.
      DBRE_RETURN_IF_ERROR(
          schema.AddIsA(eer::IsALink{ric.lhs_relation, ric.rhs_relation}));
      continue;
    }
    if (key.has_value() && key->ContainsAll(side)) {
      // (b) proper key part → weak entity owned by the target.
      DBRE_ASSIGN_OR_RETURN(eer::EntityType * entity,
                            schema.GetMutableEntity(ric.lhs_relation));
      entity->weak = true;
      eer::RelationshipType identifying;
      identifying.name = UniqueRelationshipName(
          schema,
          RelationshipName(ric.lhs_relation + "_of_" + ric.rhs_relation,
                           side, options.include_attributes_in_names));
      identifying.roles.push_back(eer::Role{
          ric.rhs_relation, eer::Cardinality::kOne, "owner"});
      identifying.roles.push_back(eer::Role{
          ric.lhs_relation, eer::Cardinality::kMany, "dependent"});
      DBRE_RETURN_IF_ERROR(schema.AddRelationship(std::move(identifying)));
      continue;
    }
    // (c) non-key left-hand side → binary relationship, many-to-one.
    eer::RelationshipType binary;
    binary.name = UniqueRelationshipName(
        schema, RelationshipName(ric.lhs_relation, side,
                                 options.include_attributes_in_names));
    binary.roles.push_back(
        eer::Role{ric.lhs_relation, eer::Cardinality::kMany, "referencing"});
    binary.roles.push_back(
        eer::Role{ric.rhs_relation, eer::Cardinality::kOne, "referenced"});
    DBRE_RETURN_IF_ERROR(schema.AddRelationship(std::move(binary)));
  }

  if (options.merge_isa_cycles) {
    DBRE_ASSIGN_OR_RETURN(eer::MergeReport merge_report,
                          eer::MergeIsACycles(&schema));
    (void)merge_report;
  }
  DBRE_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

}  // namespace dbre
