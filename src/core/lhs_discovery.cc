#include "core/lhs_discovery.h"

#include <algorithm>

namespace dbre {
namespace {

void InsertUnique(std::vector<QualifiedAttributes>* out,
                  QualifiedAttributes qa) {
  if (std::find(out->begin(), out->end(), qa) == out->end()) {
    out->push_back(std::move(qa));
  }
}

}  // namespace

LhsDiscoveryResult DiscoverLhs(const Database& database,
                               const std::vector<std::string>& s_relations,
                               const std::vector<InclusionDependency>& inds) {
  LhsDiscoveryResult result;
  auto in_s = [&](const std::string& relation) {
    return std::find(s_relations.begin(), s_relations.end(), relation) !=
           s_relations.end();
  };

  for (const InclusionDependency& ind : inds) {
    QualifiedAttributes lhs_side{ind.lhs_relation, ind.LhsAttributeSet()};
    QualifiedAttributes rhs_side{ind.rhs_relation, ind.RhsAttributeSet()};
    bool lhs_is_key =
        database.IsDeclaredKey(lhs_side.relation, lhs_side.attributes);
    bool rhs_is_key =
        database.IsDeclaredKey(rhs_side.relation, rhs_side.attributes);

    if (in_s(ind.lhs_relation)) {
      // (i): the expert already conceptualized a subset of these values;
      // the containing attributes must be conceptualized too.
      if (!rhs_is_key) InsertUnique(&result.hidden, std::move(rhs_side));
      continue;
    }
    // (ii)/(iii): non-key sides are candidate object identifiers.
    if (!lhs_is_key) InsertUnique(&result.lhs, std::move(lhs_side));
    if (!rhs_is_key) InsertUnique(&result.lhs, std::move(rhs_side));
  }
  std::sort(result.lhs.begin(), result.lhs.end());
  std::sort(result.hidden.begin(), result.hidden.end());
  return result;
}

}  // namespace dbre
