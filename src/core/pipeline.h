// The complete DBRE method, end to end.
//
// Orchestrates the paper's phases over a database-in-operation:
//   (R, E, ∅) + K + N + Q
//     → IND-Discovery → LHS-Discovery → RHS-Discovery
//     → Restruct → Translate → EER schema.
// Q may be given directly (already-extracted equi-joins) or produced from
// application-program sources via the sql scanner (see sql/scanner.h).
//
// The pipeline mutates its own clone of the database (IND-Discovery can add
// conceptualized relations) and reports every intermediate artifact plus
// per-phase wall-clock timings, so examples, tests and the benchmark
// harness all consume the same structure.
#ifndef DBRE_CORE_PIPELINE_H_
#define DBRE_CORE_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "core/ind_discovery.h"
#include "core/lhs_discovery.h"
#include "core/oracle.h"
#include "core/restruct.h"
#include "core/translate.h"
#include "eer/model.h"
#include "core/rhs_discovery.h"
#include "relational/database.h"
#include "relational/equi_join.h"

namespace dbre {

struct PipelineOptions {
  IndDiscoveryOptions ind;
  RhsDiscoveryOptions rhs;
  TranslateOptions translate;
  bool run_translate = true;  // Restruct output alone is sometimes enough
  // Stop after RHS-Discovery: the report carries the validated INDs, LHSs
  // and FDs but no restructured schema (implies no translate either). This
  // is the "re-validate the presumptions" mode the incremental path uses
  // when only the dependency verdicts are needed — restructuring is O(data)
  // by nature and would dominate an otherwise memoized rerun.
  bool run_restruct = true;
  // Dictionary-less mode: when a relation declares no unique constraint at
  // all, mine minimal unique column sets from the extension (see
  // deps/key_miner.h) and declare the first as its key before running the
  // method. Useful for systems so old that even `unique` is missing.
  bool infer_missing_keys = false;
  size_t inferred_key_max_size = 3;
  // Saturate the elicited IND set under transitivity (deps/ind_closure.h)
  // before LHS-Discovery. Derived INDs can surface identifier candidates
  // that no single query witnesses directly (e.g. programs join A-B and
  // B-C but never A-C).
  bool close_inds = false;
  // Service hooks (src/service/): a long-running host sets `cancel` to stop
  // an in-flight run — the pipeline polls it at every phase boundary and
  // aborts with kFailedPrecondition once it is true (an oracle call already
  // suspended inside a phase must be released separately, e.g. via
  // AsyncOracle::CancelAll). `on_phase` fires at each phase start with the
  // phase name ("ind_discovery", "lhs_discovery", "rhs_discovery",
  // "restruct", "translate") for progress reporting.
  const std::atomic<bool>* cancel = nullptr;
  std::function<void(const char*)> on_phase;
  // Observability (src/obs/): when set, every phase records a completed
  // span here in addition to the process-wide phase histograms and the
  // slow-op log in obs::Registry::Default(). A service session passes its
  // per-session ring so `trace` can show where a run spent its time.
  obs::TraceRing* trace = nullptr;
};

struct PhaseTimings {
  int64_t ind_discovery_us = 0;
  int64_t lhs_discovery_us = 0;
  int64_t rhs_discovery_us = 0;
  int64_t restruct_us = 0;
  int64_t translate_us = 0;

  int64_t TotalUs() const {
    return ind_discovery_us + lhs_discovery_us + rhs_discovery_us +
           restruct_us + translate_us;
  }
};

struct PipelineReport {
  // The inputs as computed from the dictionary (§4).
  std::vector<QualifiedAttributes> key_set;       // K
  std::vector<QualifiedAttributes> not_null_set;  // N
  std::vector<EquiJoin> joins;                    // Q (canonicalized)

  IndDiscoveryResult ind;
  LhsDiscoveryResult lhs;
  RhsDiscoveryResult rhs;
  RestructResult restruct;
  eer::EerSchema eer;

  // The working catalog after IND-Discovery (R plus the conceptualized S
  // relations, extensions included) — what the elicitation actually ran
  // against. Feed it to NavigationGraphToDot (core/navigation_graph.h).
  Database working_database;

  PhaseTimings timings;

  // Multi-line human-readable summary of every phase's artifacts.
  std::string Summary() const;
};

// Runs the full method. `database` is the database in operation (left
// untouched — the pipeline works on a clone). `joins` is Q.
Result<PipelineReport> RunPipeline(const Database& database,
                                   const std::vector<EquiJoin>& joins,
                                   ExpertOracle* oracle,
                                   const PipelineOptions& options = {});

}  // namespace dbre

#endif  // DBRE_CORE_PIPELINE_H_
