// Presumption extraction and diffing for incremental re-engineering.
//
// A pipeline run's "presumptions" are the derived statements the method
// believes about the legacy database: the inclusion dependencies the
// equi-join analysis conceptualized, the functional dependencies RHS
// elicitation confirmed, and the LHS attribute sets. Rendering them as
// sorted canonical strings gives a stable, order-independent fingerprint of
// a report — two runs agree exactly when their PresumptionSets are equal.
//
// The `watch` wire command (docs/SERVICE.md) streams DiffPresumptions
// output to subscribed clients after every mutation-triggered re-run, so a
// watching client sees "+ R[a] << S[b]" / "- T: {x} -> {y}" lines rather
// than whole reports.
#ifndef DBRE_CORE_PRESUMPTION_DIFF_H_
#define DBRE_CORE_PRESUMPTION_DIFF_H_

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace dbre {

// Canonical (sorted, duplicate-free) string renderings of a report's
// derived dependency statements.
struct PresumptionSet {
  std::vector<std::string> inds;  // "R[a] << S[b]"
  std::vector<std::string> fds;   // "R: {a} -> {b}"
  std::vector<std::string> lhs;   // "R{a, b}"

  bool empty() const { return inds.empty() && fds.empty() && lhs.empty(); }

  friend bool operator==(const PresumptionSet& a, const PresumptionSet& b) {
    return a.inds == b.inds && a.fds == b.fds && a.lhs == b.lhs;
  }
  friend bool operator!=(const PresumptionSet& a, const PresumptionSet& b) {
    return !(a == b);
  }
};

PresumptionSet ExtractPresumptions(const PipelineReport& report);

// One category's delta between two presumption sets.
struct PresumptionDelta {
  std::vector<std::string> added;    // in `after` but not `before`
  std::vector<std::string> removed;  // in `before` but not `after`

  bool empty() const { return added.empty() && removed.empty(); }
};

struct PresumptionDiff {
  PresumptionDelta inds;
  PresumptionDelta fds;
  PresumptionDelta lhs;

  bool empty() const { return inds.empty() && fds.empty() && lhs.empty(); }

  // Human-readable "+ ..." / "- ..." lines grouped by category; empty
  // string when nothing changed.
  std::string Summary() const;
};

PresumptionDiff DiffPresumptions(const PresumptionSet& before,
                                 const PresumptionSet& after);

}  // namespace dbre

#endif  // DBRE_CORE_PRESUMPTION_DIFF_H_
