#include "core/replay_oracle.h"

namespace dbre {

NeiDecision ReplayOracle::DecideNonEmptyIntersection(const EquiJoin& join,
                                                     const JoinCounts& counts) {
  NeiDecision decision;
  if (Pop(&nei_, join.ToString(), &decision)) return decision;
  if (fallback_ != nullptr) {
    return fallback_->DecideNonEmptyIntersection(join, counts);
  }
  return default_oracle_.DecideNonEmptyIntersection(join, counts);
}

bool ReplayOracle::EnforceFailedFd(const FunctionalDependency& fd) {
  bool enforce = false;
  if (Pop(&enforce_, fd.ToString(), &enforce)) return enforce;
  if (fallback_ != nullptr) return fallback_->EnforceFailedFd(fd);
  return default_oracle_.EnforceFailedFd(fd);
}

bool ReplayOracle::EnforceFailedFd(const FunctionalDependency& fd,
                                   double g3_error) {
  // Same subject key as the error-blind overload: the journal records the
  // answer, not which overload produced it.
  bool enforce = false;
  if (Pop(&enforce_, fd.ToString(), &enforce)) return enforce;
  if (fallback_ != nullptr) return fallback_->EnforceFailedFd(fd, g3_error);
  return default_oracle_.EnforceFailedFd(fd, g3_error);
}

bool ReplayOracle::ValidateFd(const FunctionalDependency& fd) {
  bool valid = false;
  if (Pop(&validate_, fd.ToString(), &valid)) return valid;
  if (fallback_ != nullptr) return fallback_->ValidateFd(fd);
  return default_oracle_.ValidateFd(fd);
}

bool ReplayOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  bool accept = false;
  if (Pop(&hidden_, candidate.ToString(), &accept)) return accept;
  if (fallback_ != nullptr) {
    return fallback_->ConceptualizeHiddenObject(candidate);
  }
  return default_oracle_.ConceptualizeHiddenObject(candidate);
}

std::string ReplayOracle::NameRelationForFd(const FunctionalDependency& fd) {
  std::string name;
  if (Pop(&fd_names_, fd.ToString(), &name)) return name;
  if (fallback_ != nullptr) return fallback_->NameRelationForFd(fd);
  return default_oracle_.NameRelationForFd(fd);
}

std::string ReplayOracle::NameHiddenObjectRelation(
    const QualifiedAttributes& source) {
  std::string name;
  if (Pop(&hidden_names_, source.ToString(), &name)) return name;
  if (fallback_ != nullptr) return fallback_->NameHiddenObjectRelation(source);
  return default_oracle_.NameHiddenObjectRelation(source);
}

}  // namespace dbre
