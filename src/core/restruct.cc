#include "core/restruct.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "relational/algebra.h"

namespace dbre {
namespace {

// Makes `base` unique within `database` by numeric suffixing.
std::string UniqueName(const Database& database, std::string base) {
  if (base.empty()) base = "relation";
  std::string name = base;
  int suffix = 2;
  while (database.HasRelation(name)) {
    name = base + "_" + std::to_string(suffix++);
  }
  return name;
}

// Rewrites occurrences of `source_relation`[C] (C ⊆ covered) to
// `target_relation`[C] in every IND except index `exempt`.
void RewriteIndSides(std::vector<InclusionDependency>* inds, size_t exempt,
                     const std::string& source_relation,
                     const AttributeSet& covered,
                     const std::string& target_relation) {
  for (size_t i = 0; i < inds->size(); ++i) {
    if (i == exempt) continue;
    InclusionDependency& ind = (*inds)[i];
    if (ind.lhs_relation == source_relation &&
        covered.ContainsAll(ind.LhsAttributeSet())) {
      ind.lhs_relation = target_relation;
    }
    if (ind.rhs_relation == source_relation &&
        covered.ContainsAll(ind.RhsAttributeSet())) {
      ind.rhs_relation = target_relation;
    }
  }
}

// Creates R_p with attributes `attributes` (types copied from `source`),
// key `key`, and extension given by `rows`.
Status CreateRelationFrom(Database* database, const std::string& name,
                          const Table& source,
                          const std::vector<std::string>& attributes,
                          const AttributeSet& key,
                          std::vector<ValueVector> rows) {
  RelationSchema schema(name);
  for (const std::string& attribute : attributes) {
    DBRE_ASSIGN_OR_RETURN(DataType type,
                          source.schema().AttributeType(attribute));
    DBRE_RETURN_IF_ERROR(schema.AddAttribute(attribute, type));
  }
  DBRE_RETURN_IF_ERROR(schema.DeclareUnique(key));
  Table table(std::move(schema));
  for (ValueVector& row : rows) {
    DBRE_RETURN_IF_ERROR(table.Insert(std::move(row)));
  }
  return database->AddTable(std::move(table));
}

bool HasNull(const ValueVector& row) {
  return std::any_of(row.begin(), row.end(),
                     [](const Value& v) { return v.is_null(); });
}

}  // namespace

Result<RestructResult> Restruct(const Database& database,
                                const std::vector<FunctionalDependency>& fds,
                                const std::vector<QualifiedAttributes>& hidden,
                                const std::vector<InclusionDependency>& inds,
                                ExpertOracle* oracle) {
  if (oracle == nullptr) return InvalidArgumentError("oracle is null");

  RestructResult result;
  result.database = database.Clone();
  result.inds = inds;

  // Pass 1 — hidden objects.
  for (const QualifiedAttributes& h : hidden) {
    DBRE_ASSIGN_OR_RETURN(const Table* source,
                          result.database.GetTable(h.relation));
    std::string requested = oracle->NameHiddenObjectRelation(h);
    std::string base = requested.empty()
                           ? h.relation + "_" + Join(h.attributes.names(), "_")
                           : requested;
    std::string name = UniqueName(result.database, base);

    // Extension: distinct non-NULL projection of r_i on A_i.
    DBRE_ASSIGN_OR_RETURN(ValueVectorSet values,
                          source->DistinctProjection(h.attributes));
    std::vector<ValueVector> rows(values.begin(), values.end());
    std::sort(rows.begin(), rows.end());
    DBRE_RETURN_IF_ERROR(CreateRelationFrom(
        &result.database, name, *source, h.attributes.names(), h.attributes,
        std::move(rows)));
    result.provenance[name] = "hidden object " + h.ToString();

    // Add R_i[A_i] ≪ R_p[A_i]; rewrite other occurrences of R_i[⊆A_i].
    result.inds.emplace_back(h.relation, h.attributes.names(), name,
                             h.attributes.names());
    RewriteIndSides(&result.inds, result.inds.size() - 1, h.relation,
                    h.attributes, name);
  }

  // Pass 2 — FD splitting.
  for (const FunctionalDependency& fd : fds) {
    DBRE_ASSIGN_OR_RETURN(Table * source,
                          result.database.GetMutableTable(fd.relation));
    for (const std::string& attribute :
         fd.lhs.Union(fd.rhs)) {
      if (!source->schema().HasAttribute(attribute)) {
        return FailedPreconditionError(
            "FD " + fd.ToString() + " references attribute " + attribute +
            " already moved by an earlier FD; FDs in F must not overlap");
      }
    }
    std::string requested = oracle->NameRelationForFd(fd);
    std::string base = requested.empty()
                           ? fd.relation + "_" +
                                 Join(fd.lhs.names(), "_")
                           : requested;
    std::string name = UniqueName(result.database, base);

    // Extension: one row per distinct non-NULL LHS value; dependent values
    // from the first witnessing tuple (first-wins resolves conflicts of
    // expert-enforced FDs).
    AttributeSet all = fd.lhs.Union(fd.rhs);
    std::vector<std::string> attribute_order;
    for (const std::string& a : fd.lhs) attribute_order.push_back(a);
    for (const std::string& b : fd.rhs) attribute_order.push_back(b);
    DBRE_ASSIGN_OR_RETURN(std::vector<size_t> lhs_indexes,
                          OrderedProjectionIndexes(*source, fd.lhs.names()));
    DBRE_ASSIGN_OR_RETURN(
        std::vector<size_t> all_indexes,
        OrderedProjectionIndexes(*source, attribute_order));
    std::unordered_map<ValueVector, ValueVector, ValueVectorHash> projected;
    DBRE_RETURN_IF_ERROR(source->ForEachRow([&](const ValueVector& row) {
      ValueVector key = Table::ProjectRow(row, lhs_indexes);
      if (HasNull(key)) return;
      projected.try_emplace(std::move(key),
                            Table::ProjectRow(row, all_indexes));
    }));
    std::vector<ValueVector> rows;
    rows.reserve(projected.size());
    for (auto& [key, row] : projected) rows.push_back(std::move(row));
    std::sort(rows.begin(), rows.end());
    DBRE_RETURN_IF_ERROR(CreateRelationFrom(&result.database, name, *source,
                                            attribute_order, fd.lhs,
                                            std::move(rows)));
    result.provenance[name] = "FD " + fd.ToString();

    // Remove B_i from R_i (schema + extension). Re-fetch the table pointer:
    // AddTable may have invalidated it.
    DBRE_ASSIGN_OR_RETURN(source,
                          result.database.GetMutableTable(fd.relation));
    for (const std::string& attribute : fd.rhs) {
      DBRE_RETURN_IF_ERROR(source->DropAttribute(attribute));
    }

    // Add R_i[A_i] ≪ R_p[A_i]; rewrite other occurrences of
    // R_i[⊆ A_i ∪ B_i].
    result.inds.emplace_back(fd.relation, fd.lhs.names(), name,
                             fd.lhs.names());
    RewriteIndSides(&result.inds, result.inds.size() - 1, fd.relation, all,
                    name);
  }

  // Drop INDs that became trivial through rewriting, then dedupe.
  result.inds.erase(
      std::remove_if(result.inds.begin(), result.inds.end(),
                     [](const InclusionDependency& ind) {
                       return ind.lhs_relation == ind.rhs_relation &&
                              ind.lhs_attributes == ind.rhs_attributes;
                     }),
      result.inds.end());
  result.inds = SortedUnique(std::move(result.inds));

  // Harvest K and RIC.
  result.keys = result.database.KeySet();
  for (const InclusionDependency& ind : result.inds) {
    if (IsKeyBased(result.database, ind)) result.rics.push_back(ind);
  }
  return result;
}

}  // namespace dbre
