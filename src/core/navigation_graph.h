// The logical-navigation map: relations as nodes, elicited knowledge as
// edges, rendered as Graphviz DOT.
//
// The paper's thesis is that "understanding the logical navigation in a
// relational schema" is the key to eliciting its semantics. This view
// draws that navigation directly — before any restructuring — so an
// analyst can eyeball what the programs touch: solid arrows for elicited
// INDs (lhs → rhs, labeled with the attributes; dashed when the extension
// does not actually satisfy them, i.e. expert-forced), dotted gray edges
// for equi-joins in Q that elicited nothing (empty intersections / ignored
// NEIs).
#ifndef DBRE_CORE_NAVIGATION_GRAPH_H_
#define DBRE_CORE_NAVIGATION_GRAPH_H_

#include <string>

#include "common/status.h"
#include "core/ind_discovery.h"
#include "relational/database.h"

namespace dbre {

struct NavigationGraphOptions {
  std::string graph_name = "navigation";
  // Re-check each IND against `database` to mark forced ones dashed.
  bool mark_unsatisfied = true;
};

// Renders the navigation map for `discovery` (the IND-Discovery result,
// whose outcomes carry Q and the per-join classifications) over
// `database`.
Result<std::string> NavigationGraphToDot(
    const Database& database, const IndDiscoveryResult& discovery,
    const NavigationGraphOptions& options = {});

// Writes the DOT rendering to `path`.
Status WriteNavigationGraph(const Database& database,
                            const IndDiscoveryResult& discovery,
                            const std::string& path,
                            const NavigationGraphOptions& options = {});

}  // namespace dbre

#endif  // DBRE_CORE_NAVIGATION_GRAPH_H_
