// RHS-Discovery (§6.2.2): finding the dependent attributes of each
// candidate identifier.
//
// For each element R_i.A of LHS ∪ H:
//   1. prune the candidate right-hand side:  T = X_i − A − K_i, and when A
//      is not entirely not-null, also remove the not-null attributes (a
//      tuple may have a NULL A but must have values for not-null
//      attributes, so those attributes cannot functionally depend on A
//      without contradicting the data — and keeping them would pull the
//      schema past 3NF needs);
//   2. for each b ∈ T test A → b against the extension; on failure the
//      expert may still enforce it (corrupted extensions);
//   3. a non-empty dependent set B, once validated by the expert, yields
//      R_i: A → B ∈ F (and removes R_i.A from H — it is now conceptualized
//      through the FD); an empty B makes R_i.A a hidden-object candidate
//      the expert may add to H.
//
// The pruning steps can be disabled individually for the A1 ablation.
#ifndef DBRE_CORE_RHS_DISCOVERY_H_
#define DBRE_CORE_RHS_DISCOVERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/oracle.h"
#include "deps/fd.h"
#include "relational/attribute_set.h"
#include "relational/database.h"

namespace dbre {

struct RhsDiscoveryOptions {
  bool prune_key_attributes = true;      // remove K_i from T
  bool prune_not_null_attributes = true; // remove N ∩ X_i when A ⊄ N
  // Worker threads for the candidate FD tests of step 2 (A → b for every
  // b ∈ T is independent and read-only; the g3 error of failing FDs is
  // precomputed alongside). Oracle interaction stays sequential in
  // attribute order, so results are identical for every thread count.
  // 0 = hardware concurrency, 1 = sequential.
  size_t num_threads = 0;
};

struct RhsCandidateOutcome {
  QualifiedAttributes candidate;
  AttributeSet tested;        // the pruned T
  AttributeSet dependents;    // the B that held (or was enforced)
  enum class Disposition {
    kFdElicited,        // (iii) non-empty B accepted into F
    kFdRejected,        // non-empty B but the expert refused validation
    kHiddenConfirmed,   // already in H, stays there (empty B)
    kHiddenElicited,    // (iv) empty B, expert conceptualized
    kDropped,           // (v) empty B, expert declined
  } disposition = Disposition::kDropped;
};

struct RhsDiscoveryResult {
  std::vector<FunctionalDependency> fds;    // F
  std::vector<QualifiedAttributes> hidden;  // updated H
  std::vector<RhsCandidateOutcome> outcomes;
  size_t fd_checks = 0;          // extension FD evaluations (ablation A1)
  size_t pruned_attributes = 0;  // candidates removed before checking
};

// Runs RHS-Discovery over LHS ∪ H. `hidden` is the H produced by
// LHS-Discovery; the returned `hidden` is the updated H.
Result<RhsDiscoveryResult> DiscoverRhs(
    const Database& database, const std::vector<QualifiedAttributes>& lhs,
    const std::vector<QualifiedAttributes>& hidden, ExpertOracle* oracle,
    const RhsDiscoveryOptions& options = {});

}  // namespace dbre

#endif  // DBRE_CORE_RHS_DISCOVERY_H_
