#include "core/presumption_diff.h"

#include <algorithm>

namespace dbre {
namespace {

std::vector<std::string> SortedUniqueStrings(std::vector<std::string> out) {
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PresumptionDelta DiffCategory(const std::vector<std::string>& before,
                              const std::vector<std::string>& after) {
  PresumptionDelta delta;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(delta.added));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(delta.removed));
  return delta;
}

void AppendDelta(std::string* out, const char* category,
                 const PresumptionDelta& delta) {
  if (delta.empty()) return;
  *out += category;
  *out += ":\n";
  for (const std::string& line : delta.added) {
    *out += "  + " + line + "\n";
  }
  for (const std::string& line : delta.removed) {
    *out += "  - " + line + "\n";
  }
}

}  // namespace

PresumptionSet ExtractPresumptions(const PipelineReport& report) {
  PresumptionSet set;
  set.inds.reserve(report.ind.inds.size());
  for (const InclusionDependency& ind : report.ind.inds) {
    set.inds.push_back(ind.ToString());
  }
  set.fds.reserve(report.rhs.fds.size());
  for (const FunctionalDependency& fd : report.rhs.fds) {
    set.fds.push_back(fd.ToString());
  }
  set.lhs.reserve(report.lhs.lhs.size());
  for (const QualifiedAttributes& qa : report.lhs.lhs) {
    set.lhs.push_back(qa.ToString());
  }
  set.inds = SortedUniqueStrings(std::move(set.inds));
  set.fds = SortedUniqueStrings(std::move(set.fds));
  set.lhs = SortedUniqueStrings(std::move(set.lhs));
  return set;
}

PresumptionDiff DiffPresumptions(const PresumptionSet& before,
                                 const PresumptionSet& after) {
  PresumptionDiff diff;
  diff.inds = DiffCategory(before.inds, after.inds);
  diff.fds = DiffCategory(before.fds, after.fds);
  diff.lhs = DiffCategory(before.lhs, after.lhs);
  return diff;
}

std::string PresumptionDiff::Summary() const {
  std::string out;
  AppendDelta(&out, "inds", inds);
  AppendDelta(&out, "fds", fds);
  AppendDelta(&out, "lhs", lhs);
  return out;
}

}  // namespace dbre
