// The expert user, modeled as an oracle.
//
// The method is interactive: "an expert user has to validate the
// presumptions on the elicited dependencies". Every interaction point in
// the paper's algorithms maps to one virtual call here:
//   * §6.1 (iv)-(vii): resolve a non-empty intersection (NEI) — create a
//     new relation, force one of the two inclusion directions, or ignore;
//   * §6.2.2 (ii): enforce an FD the extension refutes;
//   * §6.2.2 (iii): validate an FD before it enters F;
//   * §6.2.2 (iv): conceptualize a hidden object with no dependent
//     attributes;
//   * §7: choose application-domain names for the relations Restruct
//     materializes.
//
// Implementations: DefaultOracle (conservative non-interactive defaults),
// ScriptedOracle (keyed answers — reproduces the paper's session),
// ThresholdOracle (data-driven NEI policy, ablation A2), RecordingOracle
// (decorator logging every exchange).
#ifndef DBRE_CORE_ORACLE_H_
#define DBRE_CORE_ORACLE_H_

#include <map>
#include <string>
#include <vector>

#include "deps/fd.h"
#include "relational/algebra.h"
#include "relational/attribute_set.h"
#include "relational/equi_join.h"

namespace dbre {

// What to do with a non-empty intersection (§6.1 cases (iv)-(vii)).
enum class NeiAction {
  kConceptualize,      // (iv) add a new relation capturing the intersection
  kForceLeftInRight,   // (vi) assert R_k[A_k] << R_l[A_l] despite the data
  kForceRightInLeft,   // (v)  assert R_l[A_l] << R_k[A_k] despite the data
  kIgnore,             // (vii) elicit nothing
};

struct NeiDecision {
  NeiAction action = NeiAction::kIgnore;
  // Name of the new relation when action == kConceptualize; empty means
  // "let the algorithm derive one".
  std::string relation_name;
};

class ExpertOracle {
 public:
  virtual ~ExpertOracle() = default;

  // §6.1: the join's intersection is non-empty but matches neither side.
  virtual NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                                 const JoinCounts& counts);

  // §6.2.2 (ii): `fd` does not hold in the extension; enforce it anyway?
  virtual bool EnforceFailedFd(const FunctionalDependency& fd);

  // Same question with the violation quantified: `g3_error` is the minimum
  // fraction of tuples that must be removed for `fd` to hold (see
  // FunctionalDependencyError). Near-zero error usually means a few
  // mispunched tuples rather than a wrong presumption. The default
  // delegates to the error-blind overload.
  virtual bool EnforceFailedFd(const FunctionalDependency& fd,
                               double g3_error);

  // §6.2.2 (iii): `fd` holds in the extension; confirm it is meaningful in
  // the application domain (not a mere integrity constraint)?
  virtual bool ValidateFd(const FunctionalDependency& fd);

  // §6.2.2 (iv): no dependent attribute was found for `candidate`;
  // conceptualize it as a hidden object?
  virtual bool ConceptualizeHiddenObject(const QualifiedAttributes& candidate);

  // §7: name for the relation created from FD `fd` (e.g. Manager for
  // Department: emp -> skill, proj). Empty = derive automatically.
  virtual std::string NameRelationForFd(const FunctionalDependency& fd);

  // §7: name for the relation materializing hidden object `source`
  // (e.g. Employee for HEmployee.{no}). Empty = derive automatically.
  virtual std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source);
};

// Non-interactive defaults: ignore NEIs, never enforce failed FDs, accept
// discovered FDs, decline hidden objects, auto-derive names. Running the
// pipeline with this oracle keeps exactly the knowledge the extension
// supports.
class DefaultOracle : public ExpertOracle {};

// Answers looked up by the textual form of the question; unanswered
// questions fall back to a configurable delegate (DefaultOracle if none).
//
// Keys: EquiJoin::ToString() for NEIs, FunctionalDependency::ToString() for
// FD questions, QualifiedAttributes::ToString() for hidden objects and
// naming.
class ScriptedOracle : public ExpertOracle {
 public:
  ScriptedOracle() = default;
  explicit ScriptedOracle(ExpertOracle* fallback) : fallback_(fallback) {}

  void ScriptNei(const std::string& join_key, NeiDecision decision) {
    nei_[join_key] = std::move(decision);
  }
  void ScriptEnforceFd(const std::string& fd_key, bool enforce) {
    enforce_[fd_key] = enforce;
  }
  void ScriptValidateFd(const std::string& fd_key, bool valid) {
    validate_[fd_key] = valid;
  }
  void ScriptHiddenObject(const std::string& candidate_key, bool accept) {
    hidden_[candidate_key] = accept;
  }
  void ScriptFdRelationName(const std::string& fd_key, std::string name) {
    fd_names_[fd_key] = std::move(name);
  }
  void ScriptHiddenRelationName(const std::string& candidate_key,
                                std::string name) {
    hidden_names_[candidate_key] = std::move(name);
  }

  using ExpertOracle::EnforceFailedFd;
  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override;
  bool EnforceFailedFd(const FunctionalDependency& fd) override;
  bool ValidateFd(const FunctionalDependency& fd) override;
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override;
  std::string NameRelationForFd(const FunctionalDependency& fd) override;
  std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source) override;

 private:
  ExpertOracle* fallback_ = nullptr;  // not owned; may be null
  DefaultOracle default_oracle_;
  std::map<std::string, NeiDecision> nei_;
  std::map<std::string, bool> enforce_;
  std::map<std::string, bool> validate_;
  std::map<std::string, bool> hidden_;
  std::map<std::string, std::string> fd_names_;
  std::map<std::string, std::string> hidden_names_;
};

// Data-driven policy for unattended runs (ablation A2):
//   * NEI: conceptualize iff N_kl / min(N_k, N_l) >= nei_conceptualize_ratio;
//     otherwise force the inclusion of the smaller side iff the ratio is at
//     least nei_force_ratio; otherwise ignore.
//   * hidden objects / FD validation: fixed booleans.
class ThresholdOracle : public ExpertOracle {
 public:
  struct Options {
    double nei_conceptualize_ratio = 0.8;
    double nei_force_ratio = 2.0;  // > 1 disables forcing by default
    bool accept_hidden_objects = true;
    bool validate_fds = true;
    // Enforce a failed FD iff its g3 error is at most this (0 = never
    // enforce; 0.01 tolerates 1% corrupted tuples).
    double enforce_fd_max_error = 0.0;
  };

  ThresholdOracle() = default;
  explicit ThresholdOracle(Options options) : options_(options) {}

  using ExpertOracle::EnforceFailedFd;
  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override;
  bool EnforceFailedFd(const FunctionalDependency& fd,
                       double g3_error) override;
  bool ValidateFd(const FunctionalDependency& fd) override;
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override;

 private:
  Options options_;
};

// Decorator that records every question/answer exchange.
class RecordingOracle : public ExpertOracle {
 public:
  struct Interaction {
    std::string kind;      // "nei", "enforce_fd", "validate_fd", ...
    std::string question;  // textual form of the subject
    std::string answer;    // textual form of the decision
  };

  explicit RecordingOracle(ExpertOracle* wrapped) : wrapped_(wrapped) {}

  const std::vector<Interaction>& interactions() const {
    return interactions_;
  }
  size_t InteractionCount() const { return interactions_.size(); }

  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override;
  bool EnforceFailedFd(const FunctionalDependency& fd) override;
  bool EnforceFailedFd(const FunctionalDependency& fd,
                       double g3_error) override;
  bool ValidateFd(const FunctionalDependency& fd) override;
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override;
  std::string NameRelationForFd(const FunctionalDependency& fd) override;
  std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source) override;

 private:
  ExpertOracle* wrapped_;  // not owned
  std::vector<Interaction> interactions_;
};

}  // namespace dbre

#endif  // DBRE_CORE_ORACLE_H_
