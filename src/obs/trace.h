// RAII trace spans and the per-session span ring buffer.
//
// A `TraceSpan` times one operation (a pipeline phase, a snapshot load, an
// expert wait) and on completion fans the measured duration out to up to
// three sinks, each optional:
//   * a `TraceRing` — the bounded per-session history a client can read
//     back over the wire to see where a run spent its time;
//   * a `Histogram` — the aggregate latency distribution for `metrics`;
//   * a `SlowOpLog` — the process-wide record of operations that crossed
//     the --slow-op-ms threshold.
// Spans are cheap when every sink is null (two clock reads), so call
// sites instrument unconditionally.
#ifndef DBRE_OBS_TRACE_H_
#define DBRE_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace dbre::obs {

// One completed span.
struct SpanRecord {
  std::string name;
  std::string detail;
  int64_t start_unix_us = 0;  // wall clock at span start
  int64_t duration_us = 0;
};

// Bounded FIFO of completed spans; thread safe. When full, the oldest
// span drops and `dropped` counts it.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 128) : capacity_(capacity) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Record(SpanRecord span);
  std::vector<SpanRecord> Snapshot() const;  // oldest first
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::deque<SpanRecord> ring_;
};

// Times the scope between construction and Finish() (or destruction).
class TraceSpan {
 public:
  TraceSpan(std::string name, TraceRing* ring = nullptr,
            Histogram* histogram = nullptr, SlowOpLog* slow_ops = nullptr)
      : name_(std::move(name)),
        ring_(ring),
        histogram_(histogram),
        slow_ops_(slow_ops),
        start_unix_us_(WallClockUs()),
        start_mono_us_(MonotonicUs()) {}

  ~TraceSpan() { Finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Free-form context attached to the ring record and slow-op entry.
  void set_detail(std::string detail) { detail_ = std::move(detail); }

  // Stops the clock and feeds every sink; idempotent. Returns the span
  // duration in microseconds.
  int64_t Finish();

 private:
  const std::string name_;
  std::string detail_;
  TraceRing* const ring_;
  Histogram* const histogram_;
  SlowOpLog* const slow_ops_;
  const int64_t start_unix_us_;
  const int64_t start_mono_us_;
  bool finished_ = false;
  int64_t duration_us_ = 0;
};

}  // namespace dbre::obs

#endif  // DBRE_OBS_TRACE_H_
