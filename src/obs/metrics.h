// Lock-cheap process metrics: counters, gauges, log2-bucketed histograms
// and a slow-operation log, collected in a registry that renders the
// Prometheus text exposition format.
//
// Design constraints (this sits on the pipeline's hot paths):
//   * recording is a handful of relaxed atomic operations — no locks, no
//     allocation, no syscalls;
//   * metric cells are created once (registry lookup under a mutex) and
//     the returned pointers are stable for the registry's lifetime, so
//     call sites cache them in function-local statics;
//   * histograms bucket by log2 of the observed value (microseconds by
//     convention, suffix `_us`), giving ~2x-resolution latency curves in
//     40 fixed cells — no configuration, no per-series allocation.
//
// One process-wide `Registry::Default()` backs the `metrics` wire command
// of the dbred server; tests that need isolation construct their own
// Registry and assert on deltas.
#ifndef DBRE_OBS_METRICS_H_
#define DBRE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dbre::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cell_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return cell_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> cell_{0};
};

// Instantaneous level (inflight runs, live sessions, cache entries).
class Gauge {
 public:
  void Set(int64_t value) { cell_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { cell_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return cell_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> cell_{0};
};

// Log2-bucketed histogram of non-negative values. Bucket i counts
// observations v with bit_width(v) == i, i.e. v in [2^(i-1), 2^i); bucket
// 0 holds v == 0 and the last bucket absorbs everything from 2^38 up
// (~76 hours in microseconds). Observe() is three relaxed fetch_adds.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Observe(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  static size_t BucketOf(uint64_t value);
  // Inclusive upper bound of bucket i (Prometheus `le`): 2^i - 1.
  static uint64_t BucketUpperBound(size_t i);

  // Smallest bucket upper bound with cumulative count >= q * count() — a
  // conservative (within 2x) quantile estimate for reports and tests.
  uint64_t ApproxQuantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// One operation that exceeded the slow-op threshold.
struct SlowOp {
  std::string op;        // e.g. "pipeline:rhs_discovery", "journal:fsync"
  std::string detail;    // free-form context (session id, subject, bytes)
  int64_t duration_us = 0;
  int64_t at_unix_us = 0;  // wall-clock completion time
};

// Bounded log of operations slower than a configurable threshold. The
// threshold check is one relaxed atomic load, so instrumented code calls
// MaybeRecord unconditionally; recording itself takes a mutex (rare by
// construction). Threshold <= 0 disables the log.
class SlowOpLog {
 public:
  explicit SlowOpLog(size_t capacity = 64) : capacity_(capacity) {}

  void set_threshold_us(int64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  int64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }

  bool enabled_for(int64_t duration_us) const {
    int64_t threshold = threshold_us();
    return threshold > 0 && duration_us >= threshold;
  }

  // Records the op if it crossed the threshold; returns whether it did.
  bool MaybeRecord(std::string_view op, int64_t duration_us,
                   std::string_view detail = "");

  // Slow ops currently retained, oldest first.
  std::vector<SlowOp> Snapshot() const;

  // Slow ops ever recorded (retention drops old entries, not this count).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  std::atomic<int64_t> threshold_us_{-1};
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mutex_;
  std::deque<SlowOp> ring_;
};

// Prometheus-style labels, e.g. {{"phase", "rhs_discovery"}}. Order given
// by the call site is preserved in the rendered series.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Named metric store. Get* registers on first use and returns a stable
// pointer; the same (name, labels) always yields the same cell. A name
// must keep one type and one help string across all its label sets.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "");

  SlowOpLog* slow_ops() { return &slow_ops_; }
  const SlowOpLog* slow_ops() const { return &slow_ops_; }

  // Prometheus text exposition format: one `# HELP` / `# TYPE` pair per
  // family, histograms as cumulative `_bucket{le=...}` + `_sum` + `_count`.
  // Families render in registration order, series in label order.
  std::string RenderPrometheus() const;

  // The process-wide registry every built-in instrumentation point uses.
  static Registry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Series> series;
  };

  Series* GetSeries(const std::string& name, const Labels& labels,
                    const std::string& help, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  // registration order
  std::map<std::string, Family*> by_name_;
  SlowOpLog slow_ops_;
};

// Current wall clock in microseconds since the Unix epoch.
int64_t WallClockUs();

// Monotonic clock in microseconds (for durations).
int64_t MonotonicUs();

}  // namespace dbre::obs

#endif  // DBRE_OBS_METRICS_H_
