#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace dbre::obs {
namespace {

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    if (c == '\\' || c == '"') {
      *out += '\\';
      *out += c;
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

void AppendLabels(std::string* out, const Labels& labels,
                  const char* extra_key = nullptr,
                  const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return;
  *out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += key;
    *out += "=\"";
    AppendEscaped(out, value);
    *out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) *out += ',';
    *out += extra_key;
    *out += "=\"";
    *out += extra_value;
    *out += '"';
  }
  *out += '}';
}

void AppendU64(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendI64(std::string* out, int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  *out += buf;
}

}  // namespace

int64_t WallClockUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

int64_t MonotonicUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t Histogram::BucketOf(uint64_t value) {
  size_t width = static_cast<size_t>(std::bit_width(value));
  return width < kBuckets ? width : kBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  return (uint64_t{1} << i) - 1;
}

uint64_t Histogram::ApproxQuantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target < 1) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

bool SlowOpLog::MaybeRecord(std::string_view op, int64_t duration_us,
                            std::string_view detail) {
  if (!enabled_for(duration_us)) return false;
  total_.fetch_add(1, std::memory_order_relaxed);
  SlowOp entry;
  entry.op = std::string(op);
  entry.detail = std::string(detail);
  entry.duration_us = duration_us;
  entry.at_unix_us = WallClockUs();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(entry));
  while (ring_.size() > capacity_) ring_.pop_front();
  return true;
}

std::vector<SlowOp> SlowOpLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SlowOp>(ring_.begin(), ring_.end());
}

Registry::Series* Registry::GetSeries(const std::string& name,
                                      const Labels& labels,
                                      const std::string& help, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = nullptr;
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    family = it->second;
  } else {
    families_.push_back(std::make_unique<Family>());
    family = families_.back().get();
    family->name = name;
    family->help = help;
    family->kind = kind;
    by_name_.emplace(name, family);
  }
  for (auto& series : family->series) {
    if (series.labels == labels) return &series;
  }
  // Series cells live behind unique_ptr so growing the vector never moves
  // a cell a caller already cached.
  Series series;
  series.labels = labels;
  switch (kind) {
    case Kind::kCounter:
      series.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      series.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      series.histogram = std::make_unique<Histogram>();
      break;
  }
  family->series.push_back(std::move(series));
  return &family->series.back();
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels,
                              const std::string& help) {
  return GetSeries(name, labels, help, Kind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels,
                          const std::string& help) {
  return GetSeries(name, labels, help, Kind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  return GetSeries(name, labels, help, Kind::kHistogram)->histogram.get();
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& family : families_) {
    if (!family->help.empty()) {
      out += "# HELP ";
      out += family->name;
      out += ' ';
      out += family->help;
      out += '\n';
    }
    out += "# TYPE ";
    out += family->name;
    out += ' ';
    switch (family->kind) {
      case Kind::kCounter: out += "counter"; break;
      case Kind::kGauge: out += "gauge"; break;
      case Kind::kHistogram: out += "histogram"; break;
    }
    out += '\n';
    for (const auto& series : family->series) {
      switch (family->kind) {
        case Kind::kCounter:
          out += family->name;
          AppendLabels(&out, series.labels);
          out += ' ';
          AppendU64(&out, series.counter->value());
          out += '\n';
          break;
        case Kind::kGauge:
          out += family->name;
          AppendLabels(&out, series.labels);
          out += ' ';
          AppendI64(&out, series.gauge->value());
          out += '\n';
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            uint64_t in_bucket = h.bucket(i);
            cumulative += in_bucket;
            // Empty interior buckets still render so the cumulative curve
            // is explicit, but cap the output: only buckets up to the last
            // non-empty one, plus +Inf, appear.
            if (in_bucket == 0 && cumulative == 0) continue;
            if (in_bucket == 0 && cumulative == h.count()) continue;
            out += family->name;
            out += "_bucket";
            std::string le;
            AppendU64(&le, Histogram::BucketUpperBound(i));
            AppendLabels(&out, series.labels, "le", le);
            out += ' ';
            AppendU64(&out, cumulative);
            out += '\n';
          }
          out += family->name;
          out += "_bucket";
          AppendLabels(&out, series.labels, "le", "+Inf");
          out += ' ';
          AppendU64(&out, h.count());
          out += '\n';
          out += family->name;
          out += "_sum";
          AppendLabels(&out, series.labels);
          out += ' ';
          AppendU64(&out, h.sum());
          out += '\n';
          out += family->name;
          out += "_count";
          AppendLabels(&out, series.labels);
          out += ' ';
          AppendU64(&out, h.count());
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;  // pointers must outlive static-teardown-order races
}

}  // namespace dbre::obs
