#include "obs/trace.h"

#include <utility>

namespace dbre::obs {

void TraceRing::Record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(span));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SpanRecord>(ring_.begin(), ring_.end());
}

int64_t TraceSpan::Finish() {
  if (finished_) return duration_us_;
  finished_ = true;
  duration_us_ = MonotonicUs() - start_mono_us_;
  if (histogram_ != nullptr) {
    histogram_->Observe(static_cast<uint64_t>(duration_us_));
  }
  if (ring_ != nullptr) {
    SpanRecord record;
    record.name = name_;
    record.detail = detail_;
    record.start_unix_us = start_unix_us_;
    record.duration_us = duration_us_;
    ring_->Record(std::move(record));
  }
  if (slow_ops_ != nullptr) {
    slow_ops_->MaybeRecord(name_, duration_us_, detail_);
  }
  return duration_us_;
}

}  // namespace dbre::obs
