// Exhaustive discovery of unary inclusion dependencies from data.
//
// This is the unguided baseline against which the paper's query-guided
// IND-Discovery is measured (experiment P2): test r_i[a] ⊆ r_j[b] for every
// ordered pair of type-compatible attributes across the schema. The guided
// method instead touches only the attribute pairs referenced by equi-joins
// in the application programs.
#ifndef DBRE_DEPS_IND_MINER_H_
#define DBRE_DEPS_IND_MINER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "deps/ind.h"
#include "relational/database.h"

namespace dbre {

struct IndMinerOptions {
  // Only report INDs whose right-hand side is a declared key (referential
  // candidates). The full search still evaluates every pair.
  bool key_targets_only = false;
  // Skip trivial self-INDs R[a] << R[a] (always on; kept for clarity).
  // Minimum distinct LHS values for a pair to be considered; filters
  // accidental inclusions of near-empty columns.
  size_t min_lhs_distinct = 1;
};

struct IndMinerStats {
  size_t pairs_considered = 0;  // type-compatible ordered pairs
  size_t pairs_checked = 0;     // set-inclusion evaluations performed
  size_t discovered = 0;
};

// Mines all satisfied unary INDs of `database`. Projections are
// materialized once per attribute; each ordered pair costs a subset probe.
Result<std::vector<InclusionDependency>> MineUnaryInds(
    const Database& database, const IndMinerOptions& options = {},
    IndMinerStats* stats = nullptr);

// Levelwise n-ary IND mining (MIND-style): level-k candidates are built by
// joining satisfied (k−1)-ary INDs between the same relation pair that
// share a prefix, requiring every unary projection to be satisfied
// (downward closure), then verified against the extension. Attribute
// positions within an IND are kept in ascending LHS-attribute order, one
// attribute used at most once per side.
struct NaryIndMinerOptions {
  size_t max_arity = 2;
  IndMinerOptions unary;  // options for the level-1 seed
};

struct NaryIndMinerStats {
  IndMinerStats unary;
  size_t candidates_generated = 0;  // arity ≥ 2
  size_t candidates_checked = 0;    // extension verifications (arity ≥ 2)
  size_t discovered = 0;            // total satisfied INDs, all arities
};

Result<std::vector<InclusionDependency>> MineNaryInds(
    const Database& database, const NaryIndMinerOptions& options = {},
    NaryIndMinerStats* stats = nullptr);

}  // namespace dbre

#endif  // DBRE_DEPS_IND_MINER_H_
