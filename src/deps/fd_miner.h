// Levelwise discovery of minimal functional dependencies from data.
//
// This is the unguided baseline the paper cites as ref [12] (Mannila &
// Räihä, "Algorithms for Inferring Functional Dependencies from Relations"):
// enumerate candidate LHS sets level by level, verify each candidate FD
// against the extension using stripped partitions (TANE-style), and keep
// only minimal dependencies. The DBRE method of the paper avoids this whole
// search by checking just the FDs suggested by the equi-join workload;
// experiment P3 quantifies the difference.
#ifndef DBRE_DEPS_FD_MINER_H_
#define DBRE_DEPS_FD_MINER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "deps/fd.h"
#include "relational/table.h"

namespace dbre {

struct FdMinerOptions {
  // Maximum LHS size to explore (level cap).
  size_t max_lhs_size = 3;
  // Hard cap on verified candidates, as a runaway guard; 0 = unlimited.
  size_t max_checks = 0;
};

struct FdMinerStats {
  size_t candidates_checked = 0;  // partition-based FD verifications
  size_t partitions_built = 0;    // single-column partitions materialized
  size_t discovered = 0;
};

// Mines all minimal FDs X → a of `table` with |X| ≤ options.max_lhs_size,
// using NULL-as-value semantics (see partition.h). Results are sorted.
Result<std::vector<FunctionalDependency>> MineFds(
    const Table& table, const FdMinerOptions& options = {},
    FdMinerStats* stats = nullptr);

}  // namespace dbre

#endif  // DBRE_DEPS_FD_MINER_H_
