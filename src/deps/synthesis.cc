#include "deps/synthesis.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/string_util.h"

namespace dbre {

std::string DecomposedRelation::ToString() const {
  std::string out = name + attributes.ToString();
  if (!key.empty()) out += " key=" + key.ToString();
  return out;
}

std::vector<DecomposedRelation> Synthesize3NF(
    const std::string& base_name, const AttributeSet& universe,
    const std::vector<FunctionalDependency>& fds) {
  std::vector<FunctionalDependency> cover = MinimalCover("", fds);

  // Group the cover by left-hand side.
  std::map<AttributeSet, AttributeSet> groups;  // lhs → union of rhs
  for (const FunctionalDependency& fd : cover) {
    groups[fd.lhs] = groups[fd.lhs].Union(fd.rhs);
  }

  std::vector<DecomposedRelation> relations;
  size_t counter = 1;
  for (const auto& [lhs, rhs] : groups) {
    DecomposedRelation relation;
    relation.name = base_name + "_" + std::to_string(counter++);
    relation.attributes = lhs.Union(rhs);
    relation.key = lhs;
    relations.push_back(std::move(relation));
  }

  // Ensure some component contains a candidate key of the universe
  // (lossless-join guarantee); this also homes attributes that appear in
  // no FD, since they belong to every candidate key.
  std::vector<AttributeSet> keys = CandidateKeys(universe, cover);
  bool key_covered = false;
  for (const DecomposedRelation& relation : relations) {
    for (const AttributeSet& key : keys) {
      if (relation.attributes.ContainsAll(key)) {
        key_covered = true;
        break;
      }
    }
    if (key_covered) break;
  }
  if (!key_covered && !keys.empty()) {
    DecomposedRelation relation;
    relation.name = base_name + "_key";
    relation.attributes = keys.front();
    relation.key = keys.front();
    relations.push_back(std::move(relation));
  }

  // Drop components subsumed by another (keep the subsuming one's key).
  std::vector<DecomposedRelation> kept;
  for (size_t i = 0; i < relations.size(); ++i) {
    bool subsumed = false;
    for (size_t j = 0; j < relations.size() && !subsumed; ++j) {
      if (i == j) continue;
      if (relations[j].attributes.ContainsAll(relations[i].attributes) &&
          (relations[i].attributes != relations[j].attributes || j < i)) {
        subsumed = true;
      }
    }
    if (!subsumed) kept.push_back(relations[i]);
  }
  return kept;
}

bool IsLosslessJoin(const AttributeSet& universe,
                    const std::vector<AttributeSet>& components,
                    const std::vector<FunctionalDependency>& fds) {
  if (components.empty()) return false;
  const std::vector<std::string>& columns = universe.names();
  const size_t n_cols = columns.size();
  const size_t n_rows = components.size();

  // Chase tableau: cell value 0 = distinguished; otherwise a unique
  // nondistinguished symbol.
  std::vector<std::vector<int>> tableau(n_rows, std::vector<int>(n_cols));
  int next_symbol = 1;
  for (size_t r = 0; r < n_rows; ++r) {
    for (size_t c = 0; c < n_cols; ++c) {
      tableau[r][c] =
          components[r].Contains(columns[c]) ? 0 : next_symbol++;
    }
  }
  auto column_index = [&](const std::string& name) -> size_t {
    return static_cast<size_t>(
        std::lower_bound(columns.begin(), columns.end(), name) -
        columns.begin());
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds) {
      // Group rows by their LHS symbols.
      std::vector<size_t> lhs_cols, rhs_cols;
      bool applicable = true;
      for (const std::string& a : fd.lhs) {
        if (!universe.Contains(a)) {
          applicable = false;
          break;
        }
        lhs_cols.push_back(column_index(a));
      }
      if (!applicable) continue;
      for (const std::string& a : fd.rhs) {
        if (universe.Contains(a)) rhs_cols.push_back(column_index(a));
      }
      std::map<std::vector<int>, std::vector<size_t>> buckets;
      for (size_t r = 0; r < n_rows; ++r) {
        std::vector<int> key;
        for (size_t c : lhs_cols) key.push_back(tableau[r][c]);
        buckets[std::move(key)].push_back(r);
      }
      for (const auto& [key, rows] : buckets) {
        if (rows.size() < 2) continue;
        for (size_t c : rhs_cols) {
          // Equate: distinguished wins, else the minimum symbol.
          int target = tableau[rows[0]][c];
          for (size_t r : rows) target = std::min(target, tableau[r][c]);
          for (size_t r : rows) {
            if (tableau[r][c] != target) {
              tableau[r][c] = target;
              changed = true;
            }
          }
        }
      }
    }
  }
  for (size_t r = 0; r < n_rows; ++r) {
    bool all_distinguished = std::all_of(
        tableau[r].begin(), tableau[r].end(), [](int v) { return v == 0; });
    if (all_distinguished) return true;
  }
  return false;
}

std::vector<FunctionalDependency> ProjectFds(
    const AttributeSet& component,
    const std::vector<FunctionalDependency>& fds) {
  std::vector<FunctionalDependency> projected;
  const std::vector<std::string>& names = component.names();
  const size_t k = names.size();
  if (k == 0 || k > 20) return projected;
  for (const std::string& dependent : names) {
    // Minimal X ⊆ component − {a} with a ∈ closure(X): enumerate subsets
    // by increasing popcount, skipping supersets of found minimal sets.
    std::vector<uint32_t> minimal_masks;
    std::vector<uint32_t> masks((1u << k) - 1);
    std::iota(masks.begin(), masks.end(), 1u);
    std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
      int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
      return pa != pb ? pa < pb : a < b;
    });
    size_t dependent_bit = static_cast<size_t>(
        std::lower_bound(names.begin(), names.end(), dependent) -
        names.begin());
    for (uint32_t mask : masks) {
      if (mask & (1u << dependent_bit)) continue;
      bool superset = std::any_of(
          minimal_masks.begin(), minimal_masks.end(),
          [&](uint32_t m) { return (mask & m) == m; });
      if (superset) continue;
      AttributeSet lhs;
      for (size_t i = 0; i < k; ++i) {
        if (mask & (1u << i)) lhs.Insert(names[i]);
      }
      if (Implies(fds, lhs, AttributeSet::Single(dependent))) {
        minimal_masks.push_back(mask);
        projected.emplace_back("", std::move(lhs),
                               AttributeSet::Single(dependent));
      }
    }
  }
  std::sort(projected.begin(), projected.end());
  return projected;
}

bool PreservesDependencies(const std::vector<AttributeSet>& components,
                           const std::vector<FunctionalDependency>& fds) {
  std::vector<FunctionalDependency> unioned;
  for (const AttributeSet& component : components) {
    std::vector<FunctionalDependency> projected = ProjectFds(component, fds);
    unioned.insert(unioned.end(), projected.begin(), projected.end());
  }
  for (const FunctionalDependency& fd : fds) {
    if (!Implies(unioned, fd.lhs, fd.rhs)) return false;
  }
  return true;
}

}  // namespace dbre
