#include "deps/key_miner.h"

#include <algorithm>
#include <memory>

#include "relational/query_cache.h"
#include "relational/value.h"

namespace dbre {
namespace {

// Distinct-count-based uniqueness honouring SQL NULL semantics: unique iff
// no two NULL-free projections coincide, i.e. every NULL-free sub-row is
// its own partition group.
Result<bool> CombinationIsUnique(const Table& table,
                                 const std::vector<size_t>& indexes) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  std::shared_ptr<const CodePartition> partition =
      cache->Partition(indexes, NullPolicy::kSkipNullRows);
  return partition->num_groups() == partition->included_rows;
}

Result<bool> ColumnHasNull(const Table& table, size_t column) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  return cache->ColumnHasNull(column);
}

}  // namespace

Result<std::vector<AttributeSet>> MineCandidateKeys(
    const Table& table, const KeyMinerOptions& options,
    KeyMinerStats* stats) {
  KeyMinerStats local_stats;
  KeyMinerStats* s = stats != nullptr ? stats : &local_stats;
  *s = KeyMinerStats{};

  const RelationSchema& schema = table.schema();
  // Candidate columns (optionally NULL-free only), with their indexes.
  std::vector<std::pair<std::string, size_t>> columns;
  for (size_t c = 0; c < schema.arity(); ++c) {
    if (options.require_not_null) {
      DBRE_ASSIGN_OR_RETURN(bool has_null, ColumnHasNull(table, c));
      if (has_null) continue;
    }
    columns.emplace_back(schema.attributes()[c].name, c);
  }
  std::sort(columns.begin(), columns.end());

  std::vector<AttributeSet> keys;
  auto is_superset_of_key = [&](const AttributeSet& candidate) {
    return std::any_of(keys.begin(), keys.end(),
                       [&](const AttributeSet& key) {
                         return candidate.ContainsAll(key);
                       });
  };

  // Levelwise over combinations in prefix order.
  struct Node {
    AttributeSet attributes;
    std::vector<size_t> indexes;  // sorted by attribute name
    size_t last;                  // index into `columns` of the max element
  };
  std::vector<Node> level;
  for (size_t i = 0; i < columns.size(); ++i) {
    Node node;
    node.attributes = AttributeSet::Single(columns[i].first);
    node.indexes = {columns[i].second};
    node.last = i;
    ++s->combinations_checked;
    DBRE_ASSIGN_OR_RETURN(bool unique,
                          CombinationIsUnique(table, node.indexes));
    if (unique) {
      keys.push_back(node.attributes);
    } else {
      level.push_back(std::move(node));
    }
  }

  for (size_t depth = 2; depth <= options.max_key_size && !level.empty();
       ++depth) {
    std::vector<Node> next;
    for (const Node& node : level) {
      for (size_t i = node.last + 1; i < columns.size(); ++i) {
        Node extended;
        extended.attributes = node.attributes;
        extended.attributes.Insert(columns[i].first);
        if (is_superset_of_key(extended.attributes)) continue;
        extended.indexes = node.indexes;
        extended.indexes.push_back(columns[i].second);
        extended.last = i;
        ++s->combinations_checked;
        DBRE_ASSIGN_OR_RETURN(bool unique,
                              CombinationIsUnique(table, extended.indexes));
        if (unique) {
          keys.push_back(extended.attributes);
        } else if (depth < options.max_key_size) {
          next.push_back(std::move(extended));
        }
      }
    }
    level = std::move(next);
  }

  std::sort(keys.begin(), keys.end());
  s->discovered = keys.size();
  return keys;
}

}  // namespace dbre
