// Stripped partitions (TANE-style) for fast FD verification.
//
// The partition of a table under an attribute set X groups row indexes by
// their X-projection; a *stripped* partition drops singleton classes. An FD
// X → A holds iff refining π_X by A does not split any class, which can be
// tested by comparing |π_X| with |π_{X∪A}| (class counts including
// singletons). Partitions compose by intersection, so level-wise miners can
// derive π_{XY} from π_X and π_Y without re-reading the table.
//
// NULLs: two NULLs are placed in the same class (NULL-as-value semantics).
// This differs from FunctionalDependencyHolds in algebra.h, which skips
// NULL-LHS tuples; the miners use partitions and document this choice.
#ifndef DBRE_DEPS_PARTITION_H_
#define DBRE_DEPS_PARTITION_H_

#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/table.h"

namespace dbre {

class StrippedPartition {
 public:
  StrippedPartition() = default;
  StrippedPartition(std::vector<std::vector<size_t>> classes,
                    size_t num_rows);

  // Partition of `table` under the single attribute at `column`.
  static Result<StrippedPartition> ForColumn(const Table& table,
                                             size_t column);

  // Partition of `table` under `attributes` (computed directly).
  static Result<StrippedPartition> ForAttributes(
      const Table& table, const AttributeSet& attributes);

  // Product partition π_X ∩ π_Y = π_{XY}. Both operands must cover the
  // same table (same num_rows).
  StrippedPartition Intersect(const StrippedPartition& other) const;

  // Non-singleton classes.
  const std::vector<std::vector<size_t>>& classes() const { return classes_; }

  size_t num_rows() const { return num_rows_; }

  // Number of rows covered by non-singleton classes.
  size_t CoveredRows() const;

  // Total class count including implicit singletons:
  // |π| = classes + (num_rows - covered rows).
  size_t NumClassesWithSingletons() const;

  // TANE error measure e(π) = covered rows − stripped class count; X → A
  // holds iff e(π_X) == e(π_{X∪A}).
  size_t Error() const;

  // True if refining this partition by `other` (i.e. moving to the product)
  // does not split any class — equivalently, every class of `this` lies
  // within a class of `this ∩ other`, meaning the FD (this's attributes) →
  // (other's attributes) holds.
  bool Refines(const StrippedPartition& other) const;

 private:
  std::vector<std::vector<size_t>> classes_;
  size_t num_rows_ = 0;
};

}  // namespace dbre

#endif  // DBRE_DEPS_PARTITION_H_
