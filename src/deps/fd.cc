#include "deps/fd.h"

#include <algorithm>
#include <tuple>

namespace dbre {

std::string FunctionalDependency::ToString() const {
  std::string out;
  if (!relation.empty()) out = relation + ": ";
  out += lhs.ToString() + " -> " + rhs.ToString();
  return out;
}

bool operator<(const FunctionalDependency& a, const FunctionalDependency& b) {
  return std::tie(a.relation, a.lhs, a.rhs) <
         std::tie(b.relation, b.lhs, b.rhs);
}

std::ostream& operator<<(std::ostream& os, const FunctionalDependency& fd) {
  return os << fd.ToString();
}

AttributeSet AttributeClosure(const AttributeSet& attributes,
                              const std::vector<FunctionalDependency>& fds) {
  AttributeSet closure = attributes;
  bool changed = true;
  std::vector<bool> applied(fds.size(), false);
  while (changed) {
    changed = false;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (applied[i]) continue;
      if (closure.ContainsAll(fds[i].lhs)) {
        applied[i] = true;
        if (!closure.ContainsAll(fds[i].rhs)) {
          closure = closure.Union(fds[i].rhs);
          changed = true;
        }
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<FunctionalDependency>& fds,
             const AttributeSet& lhs, const AttributeSet& rhs) {
  return AttributeClosure(lhs, fds).ContainsAll(rhs);
}

bool IsSuperkey(const AttributeSet& attributes,
                const AttributeSet& all_attributes,
                const std::vector<FunctionalDependency>& fds) {
  return AttributeClosure(attributes, fds).ContainsAll(all_attributes);
}

namespace {

// Shrinks a known superkey to a minimal one by greedily removing attributes.
AttributeSet MinimizeSuperkey(AttributeSet superkey,
                              const AttributeSet& all_attributes,
                              const std::vector<FunctionalDependency>& fds) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (const std::string& name : superkey.names()) {
      AttributeSet candidate = superkey;
      candidate.Remove(name);
      if (!candidate.empty() &&
          IsSuperkey(candidate, all_attributes, fds)) {
        superkey = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return superkey;
}

}  // namespace

std::vector<AttributeSet> CandidateKeys(
    const AttributeSet& all_attributes,
    const std::vector<FunctionalDependency>& fds) {
  // Lucchesi–Osborn style: start with one minimal key, then for every key K
  // found and every FD X → Y, (K - Y) ∪ X is a superkey that may minimize
  // to a new key.
  std::vector<AttributeSet> keys;
  if (all_attributes.empty()) return keys;
  keys.push_back(MinimizeSuperkey(all_attributes, all_attributes, fds));
  for (size_t i = 0; i < keys.size(); ++i) {
    for (const FunctionalDependency& fd : fds) {
      AttributeSet candidate = keys[i].Minus(fd.rhs).Union(fd.lhs);
      if (!IsSuperkey(candidate, all_attributes, fds)) continue;
      AttributeSet minimized =
          MinimizeSuperkey(std::move(candidate), all_attributes, fds);
      if (std::find(keys.begin(), keys.end(), minimized) == keys.end()) {
        keys.push_back(std::move(minimized));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<FunctionalDependency> MinimalCover(
    const std::string& relation, std::vector<FunctionalDependency> fds) {
  // 1. Singleton right-hand sides.
  std::vector<FunctionalDependency> cover;
  for (FunctionalDependency& fd : fds) {
    for (const std::string& attribute : fd.rhs) {
      if (fd.lhs.Contains(attribute)) continue;  // drop trivial parts
      cover.emplace_back(relation, fd.lhs,
                         AttributeSet::Single(attribute));
    }
  }
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());

  // 2. Remove extraneous LHS attributes.
  for (FunctionalDependency& fd : cover) {
    bool shrunk = true;
    while (shrunk && fd.lhs.size() > 1) {
      shrunk = false;
      for (const std::string& name : fd.lhs.names()) {
        AttributeSet reduced = fd.lhs;
        reduced.Remove(name);
        if (Implies(cover, reduced, fd.rhs)) {
          fd.lhs = std::move(reduced);
          shrunk = true;
          break;
        }
      }
    }
  }
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());

  // 3. Remove redundant FDs.
  for (size_t i = 0; i < cover.size();) {
    std::vector<FunctionalDependency> without;
    without.reserve(cover.size() - 1);
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) without.push_back(cover[j]);
    }
    if (Implies(without, cover[i].lhs, cover[i].rhs)) {
      cover.erase(cover.begin() + i);
    } else {
      ++i;
    }
  }
  return cover;
}

}  // namespace dbre
