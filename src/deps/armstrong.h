// Armstrong relations: witness extensions for FD sets.
//
// An Armstrong relation for an FD set F satisfies exactly the dependencies
// implied by F — every implied FD holds, every non-implied FD is violated
// by some tuple pair. Construction: one "agreement tuple" per closed
// attribute set in a generator family (the closures of all LHS-relevant
// subsets), each agreeing with the base tuple exactly on that closed set.
//
// Used by the test suite to feed the miners data with a *provably* known
// dependency structure: mining an Armstrong relation must return a cover
// of F and nothing more.
#ifndef DBRE_DEPS_ARMSTRONG_H_
#define DBRE_DEPS_ARMSTRONG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "deps/fd.h"
#include "relational/table.h"

namespace dbre {

// Builds an Armstrong relation over `universe` for `fds` (all attributes
// int64-typed). The relation name is `name`. Practical for |universe| ≤ 16
// (the generator family enumerates attribute subsets).
Result<Table> BuildArmstrongRelation(
    const std::string& name, const AttributeSet& universe,
    const std::vector<FunctionalDependency>& fds);

}  // namespace dbre

#endif  // DBRE_DEPS_ARMSTRONG_H_
