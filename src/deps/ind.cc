#include "deps/ind.h"

#include <algorithm>
#include <tuple>

#include "common/string_util.h"
#include "relational/algebra.h"

namespace dbre {

InclusionDependency InclusionDependency::Single(std::string lhs_rel,
                                                std::string lhs_attr,
                                                std::string rhs_rel,
                                                std::string rhs_attr) {
  return InclusionDependency(std::move(lhs_rel), {std::move(lhs_attr)},
                             std::move(rhs_rel), {std::move(rhs_attr)});
}

Status InclusionDependency::Validate() const {
  if (lhs_relation.empty() || rhs_relation.empty()) {
    return InvalidArgumentError("IND with empty relation name");
  }
  if (lhs_attributes.empty()) {
    return InvalidArgumentError("IND with no attributes: " + ToString());
  }
  if (lhs_attributes.size() != rhs_attributes.size()) {
    return InvalidArgumentError("IND attribute lists differ in size: " +
                                ToString());
  }
  for (size_t i = 0; i < lhs_attributes.size(); ++i) {
    if (lhs_attributes[i].empty() || rhs_attributes[i].empty()) {
      return InvalidArgumentError("IND with empty attribute name: " +
                                  ToString());
    }
  }
  return Status::Ok();
}

std::string InclusionDependency::ToString() const {
  return lhs_relation + "[" + Join(lhs_attributes, ", ") + "] << " +
         rhs_relation + "[" + Join(rhs_attributes, ", ") + "]";
}

bool operator<(const InclusionDependency& a, const InclusionDependency& b) {
  return std::tie(a.lhs_relation, a.lhs_attributes, a.rhs_relation,
                  a.rhs_attributes) <
         std::tie(b.lhs_relation, b.lhs_attributes, b.rhs_relation,
                  b.rhs_attributes);
}

std::ostream& operator<<(std::ostream& os, const InclusionDependency& ind) {
  return os << ind.ToString();
}

Result<bool> Satisfies(const Database& database,
                       const InclusionDependency& ind) {
  DBRE_RETURN_IF_ERROR(ind.Validate());
  return InclusionHolds(database, ind.lhs_relation, ind.lhs_attributes,
                        ind.rhs_relation, ind.rhs_attributes);
}

bool IsKeyBased(const Database& database, const InclusionDependency& ind) {
  return database.IsDeclaredKey(ind.rhs_relation, ind.RhsAttributeSet());
}

std::vector<InclusionDependency> SortedUnique(
    std::vector<InclusionDependency> inds) {
  std::sort(inds.begin(), inds.end());
  inds.erase(std::unique(inds.begin(), inds.end()), inds.end());
  return inds;
}

}  // namespace dbre
