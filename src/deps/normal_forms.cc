#include "deps/normal_forms.h"

namespace dbre {

const char* NormalFormName(NormalForm nf) {
  switch (nf) {
    case NormalForm::k1NF:
      return "1NF";
    case NormalForm::k2NF:
      return "2NF";
    case NormalForm::k3NF:
      return "3NF";
    case NormalForm::kBCNF:
      return "BCNF";
  }
  return "unknown";
}

AttributeSet PrimeAttributes(const AttributeSet& all_attributes,
                             const std::vector<FunctionalDependency>& fds) {
  AttributeSet prime;
  for (const AttributeSet& key : CandidateKeys(all_attributes, fds)) {
    prime = prime.Union(key);
  }
  return prime;
}

namespace {

// Enumerates minimal-cover FDs once; the three predicates share structure.
struct NfContext {
  std::vector<AttributeSet> keys;
  AttributeSet prime;
  std::vector<FunctionalDependency> cover;
};

NfContext MakeContext(const AttributeSet& all_attributes,
                      const std::vector<FunctionalDependency>& fds) {
  NfContext ctx;
  ctx.keys = CandidateKeys(all_attributes, fds);
  for (const AttributeSet& key : ctx.keys) ctx.prime = ctx.prime.Union(key);
  ctx.cover = MinimalCover("", fds);
  return ctx;
}

}  // namespace

bool IsIn2NF(const AttributeSet& all_attributes,
             const std::vector<FunctionalDependency>& fds) {
  NfContext ctx = MakeContext(all_attributes, fds);
  // Violated iff some non-prime attribute depends on a *proper* subset of
  // some candidate key.
  for (const FunctionalDependency& fd : ctx.cover) {
    const std::string& dependent = fd.rhs.names().front();
    if (ctx.prime.Contains(dependent)) continue;
    for (const AttributeSet& key : ctx.keys) {
      if (key.ContainsAll(fd.lhs) && fd.lhs != key) return false;
      // Also catch dependencies implied on proper key subsets that are not
      // syntactically in the cover: check every proper subset via closure.
    }
  }
  // Closure-based check: for each key, for each proper subset S of the key
  // obtained by removing one attribute at a time is insufficient in
  // general, but partial dependencies are witnessed by *some* proper subset
  // whose closure contains a non-prime attribute not in the subset's
  // closure-trivial part. We enumerate proper subsets of keys only when
  // keys are small (keys here come from dictionaries; arity is modest).
  for (const AttributeSet& key : ctx.keys) {
    size_t k = key.size();
    if (k < 2 || k > 20) continue;
    // Enumerate proper non-empty subsets via bitmask.
    const std::vector<std::string>& names = key.names();
    for (uint32_t mask = 1; mask + 1 < (1u << k); ++mask) {
      AttributeSet subset;
      for (size_t i = 0; i < k; ++i) {
        if (mask & (1u << i)) subset.Insert(names[i]);
      }
      AttributeSet closure = AttributeClosure(subset, fds);
      AttributeSet gained = closure.Minus(subset).Minus(ctx.prime);
      if (!gained.empty()) return false;
    }
  }
  return true;
}

bool IsIn3NF(const AttributeSet& all_attributes,
             const std::vector<FunctionalDependency>& fds) {
  NfContext ctx = MakeContext(all_attributes, fds);
  for (const FunctionalDependency& fd : ctx.cover) {
    if (fd.IsTrivial()) continue;
    const std::string& dependent = fd.rhs.names().front();
    if (ctx.prime.Contains(dependent)) continue;
    if (!IsSuperkey(fd.lhs, all_attributes, fds)) return false;
  }
  return true;
}

bool IsInBCNF(const AttributeSet& all_attributes,
              const std::vector<FunctionalDependency>& fds) {
  std::vector<FunctionalDependency> cover = MinimalCover("", fds);
  for (const FunctionalDependency& fd : cover) {
    if (fd.IsTrivial()) continue;
    if (!IsSuperkey(fd.lhs, all_attributes, fds)) return false;
  }
  return true;
}

NormalForm ClassifyNormalForm(const AttributeSet& all_attributes,
                              const std::vector<FunctionalDependency>& fds) {
  if (IsInBCNF(all_attributes, fds)) return NormalForm::kBCNF;
  if (IsIn3NF(all_attributes, fds)) return NormalForm::k3NF;
  if (IsIn2NF(all_attributes, fds)) return NormalForm::k2NF;
  return NormalForm::k1NF;
}

}  // namespace dbre
