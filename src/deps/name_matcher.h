// Name-based foreign-key discovery — the related-work baseline.
//
// Earlier relational DBRE methods (e.g. Chiang–Barron–Storey, the paper's
// ref [5]) rely on "consistent naming of key attributes": an attribute is
// presumed to reference a key it shares a name (or name stem) with, and
// the presumption is then checked against the extension. The paper
// explicitly drops that assumption ("without any restriction on the naming
// of attributes") in favour of query analysis.
//
// This module implements the naming heuristic so the two philosophies can
// be compared (experiment A5): for every (non-key attribute, key) pair
// whose names match — exactly, or up to a common stem after stripping
// suffixes like _id/_ref/_no/_code — propose the IND and keep it only if
// the extension satisfies it.
#ifndef DBRE_DEPS_NAME_MATCHER_H_
#define DBRE_DEPS_NAME_MATCHER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "deps/ind.h"
#include "relational/database.h"

namespace dbre {

struct NameMatchOptions {
  // Suffixes stripped before stem comparison (lowercased).
  std::vector<std::string> suffixes = {"_id", "_ref", "_no", "_code",
                                       "_key"};
  // Only propose pairs whose referenced side is a declared single-attribute
  // key (the heuristic's usual form).
  bool key_targets_only = true;
  // Verify proposals against the extension; unverified mode returns every
  // name match (for measuring the heuristic's raw false-positive rate).
  bool verify_against_extension = true;
};

struct NameMatchStats {
  size_t pairs_proposed = 0;   // name matches found
  size_t pairs_verified = 0;   // extension checks performed
  size_t discovered = 0;
};

// Runs the heuristic over the whole catalog.
Result<std::vector<InclusionDependency>> DiscoverIndsByNaming(
    const Database& database, const NameMatchOptions& options = {},
    NameMatchStats* stats = nullptr);

// Exposed for tests: the stem of an attribute name under `options`
// (lowercased, longest matching suffix stripped).
std::string NameStem(const std::string& attribute,
                     const NameMatchOptions& options);

}  // namespace dbre

#endif  // DBRE_DEPS_NAME_MATCHER_H_
