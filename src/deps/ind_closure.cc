#include "deps/ind_closure.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace dbre {
namespace {

using Side = std::pair<std::string, std::vector<std::string>>;

Side LhsSide(const InclusionDependency& ind) {
  return {ind.lhs_relation, ind.lhs_attributes};
}
Side RhsSide(const InclusionDependency& ind) {
  return {ind.rhs_relation, ind.rhs_attributes};
}

}  // namespace

std::vector<InclusionDependency> TransitiveClosure(
    std::vector<InclusionDependency> inds,
    const IndClosureOptions& options) {
  std::set<InclusionDependency> closed(inds.begin(), inds.end());

  if (options.project) {
    // Projection first, so transitivity also runs over the projections.
    std::vector<InclusionDependency> projections;
    for (const InclusionDependency& ind : closed) {
      size_t k = ind.arity();
      if (k < 2) continue;
      if (options.unary_projections_only) {
        for (size_t i = 0; i < k; ++i) {
          projections.push_back(InclusionDependency::Single(
              ind.lhs_relation, ind.lhs_attributes[i], ind.rhs_relation,
              ind.rhs_attributes[i]));
        }
      } else if (k <= 16) {
        for (uint32_t mask = 1; mask < (1u << k); ++mask) {
          InclusionDependency projected;
          projected.lhs_relation = ind.lhs_relation;
          projected.rhs_relation = ind.rhs_relation;
          for (size_t i = 0; i < k; ++i) {
            if (mask & (1u << i)) {
              projected.lhs_attributes.push_back(ind.lhs_attributes[i]);
              projected.rhs_attributes.push_back(ind.rhs_attributes[i]);
            }
          }
          projections.push_back(std::move(projected));
        }
      }
    }
    closed.insert(projections.begin(), projections.end());
  }

  // Saturate under transitivity: index INDs by their left side.
  bool changed = true;
  while (changed) {
    changed = false;
    std::multimap<Side, const InclusionDependency*> by_lhs;
    for (const InclusionDependency& ind : closed) {
      by_lhs.emplace(LhsSide(ind), &ind);
    }
    std::vector<InclusionDependency> derived;
    for (const InclusionDependency& first : closed) {
      auto [begin, end] = by_lhs.equal_range(RhsSide(first));
      for (auto it = begin; it != end; ++it) {
        const InclusionDependency& second = *it->second;
        InclusionDependency chained(first.lhs_relation,
                                    first.lhs_attributes,
                                    second.rhs_relation,
                                    second.rhs_attributes);
        if (LhsSide(chained) == RhsSide(chained)) continue;  // trivial
        if (!closed.contains(chained)) derived.push_back(std::move(chained));
      }
    }
    for (InclusionDependency& ind : derived) {
      if (options.max_derived != 0 && closed.size() >= options.max_derived) {
        break;
      }
      if (closed.insert(std::move(ind)).second) changed = true;
    }
    if (options.max_derived != 0 && closed.size() >= options.max_derived) {
      break;
    }
  }
  return std::vector<InclusionDependency>(closed.begin(), closed.end());
}

std::vector<IndCycle> FindCyclicSides(
    const std::vector<InclusionDependency>& inds) {
  // Collect nodes and edges.
  std::set<Side> nodes;
  std::map<Side, std::vector<Side>> edges;
  for (const InclusionDependency& ind : inds) {
    Side lhs = LhsSide(ind), rhs = RhsSide(ind);
    nodes.insert(lhs);
    nodes.insert(rhs);
    edges[lhs].push_back(rhs);
  }
  // Iterative Tarjan SCC.
  std::map<Side, int> index, lowlink;
  std::map<Side, bool> on_stack;
  std::vector<Side> stack;
  int counter = 0;
  std::vector<IndCycle> cycles;

  // Recursive lambda (depth bounded by the number of sides, which is
  // small for elicited sets).
  std::function<void(const Side&)> visit = [&](const Side& node) {
    index[node] = lowlink[node] = counter++;
    stack.push_back(node);
    on_stack[node] = true;
    auto it = edges.find(node);
    if (it != edges.end()) {
      for (const Side& next : it->second) {
        if (!index.contains(next)) {
          visit(next);
          lowlink[node] = std::min(lowlink[node], lowlink[next]);
        } else if (on_stack[next]) {
          lowlink[node] = std::min(lowlink[node], index[next]);
        }
      }
    }
    if (lowlink[node] == index[node]) {
      IndCycle cycle;
      while (true) {
        Side top = stack.back();
        stack.pop_back();
        on_stack[top] = false;
        cycle.sides.push_back(top);
        if (top == node) break;
      }
      if (cycle.sides.size() >= 2) {
        std::sort(cycle.sides.begin(), cycle.sides.end());
        cycles.push_back(std::move(cycle));
      }
    }
  };
  for (const Side& node : nodes) {
    if (!index.contains(node)) visit(node);
  }
  std::sort(cycles.begin(), cycles.end(),
            [](const IndCycle& a, const IndCycle& b) {
              return a.sides < b.sides;
            });
  return cycles;
}

}  // namespace dbre
