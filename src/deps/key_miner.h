// Discovery of minimal unique column combinations (candidate keys) from
// the extension.
//
// The method's §4 assumptions lean on `unique` declarations in the data
// dictionary, but the oldest systems the paper targets predate even those.
// This miner recovers the key set K directly from the data: a levelwise
// search over column combinations, verified with stripped partitions
// (a combination X is unique iff π_X has no class of size ≥ 2), pruned by
// minimality (supersets of a discovered unique set are skipped).
//
// NULL handling follows SQL UNIQUE: rows with a NULL in the combination do
// not violate uniqueness (they are excluded from the check).
#ifndef DBRE_DEPS_KEY_MINER_H_
#define DBRE_DEPS_KEY_MINER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/table.h"

namespace dbre {

struct KeyMinerOptions {
  // Maximum combination size to explore.
  size_t max_key_size = 3;
  // Exclude attributes that contain NULLs from key candidates entirely
  // (legacy keys are not-null in practice; also avoids vacuously-unique
  // mostly-NULL columns).
  bool require_not_null = true;
};

struct KeyMinerStats {
  size_t combinations_checked = 0;
  size_t discovered = 0;
};

// All minimal unique column sets of `table` up to the size cap, sorted.
Result<std::vector<AttributeSet>> MineCandidateKeys(
    const Table& table, const KeyMinerOptions& options = {},
    KeyMinerStats* stats = nullptr);

}  // namespace dbre

#endif  // DBRE_DEPS_KEY_MINER_H_
