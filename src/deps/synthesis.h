// Classical normalization: Bernstein 3NF synthesis and decomposition
// quality tests (lossless join via the chase, dependency preservation).
//
// The paper's Restruct reaches 3NF by splitting along the *elicited* FDs;
// this module provides the textbook yardstick to compare against: given
// the same dependencies, what would pure synthesis produce, and is any
// proposed decomposition lossless and dependency-preserving?
#ifndef DBRE_DEPS_SYNTHESIS_H_
#define DBRE_DEPS_SYNTHESIS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "deps/fd.h"
#include "relational/attribute_set.h"

namespace dbre {

// One relation of a decomposition: its attributes and the key chosen for
// it (for synthesis output; arbitrary decompositions may leave it empty).
struct DecomposedRelation {
  std::string name;
  AttributeSet attributes;
  AttributeSet key;

  std::string ToString() const;
};

// Bernstein-style 3NF synthesis: minimal cover → group FDs by left-hand
// side → one relation per group (LHS as key) → add a key relation if no
// group contains a candidate key of the universe → drop subsumed
// relations. The result is dependency-preserving and (with the key
// relation) lossless.
std::vector<DecomposedRelation> Synthesize3NF(
    const std::string& base_name, const AttributeSet& universe,
    const std::vector<FunctionalDependency>& fds);

// Lossless-join test via the chase over the given FDs: returns true iff
// the natural join of the projections always reconstructs the original
// relation. Exact for any number of components.
bool IsLosslessJoin(const AttributeSet& universe,
                    const std::vector<AttributeSet>& components,
                    const std::vector<FunctionalDependency>& fds);

// Dependency preservation: every FD of `fds` must be derivable from the
// union of the FD projections onto the components.
bool PreservesDependencies(const std::vector<AttributeSet>& components,
                           const std::vector<FunctionalDependency>& fds);

// Projection of an FD set onto an attribute subset: all X → a with
// X ∪ {a} ⊆ component implied by `fds`, X minimal. Exponential in
// principle; fine at reverse-engineering arities.
std::vector<FunctionalDependency> ProjectFds(
    const AttributeSet& component,
    const std::vector<FunctionalDependency>& fds);

}  // namespace dbre

#endif  // DBRE_DEPS_SYNTHESIS_H_
