// Normal-form classification of a relation given the FDs that hold in it.
//
// The paper annotates its running example with per-relation normal forms
// (Person 2NF, HEmployee 3NF, Department 2NF, Assignment 1NF); this module
// reproduces those judgements (experiment E10) and supports verifying that
// Restruct's output schema is in 3NF.
#ifndef DBRE_DEPS_NORMAL_FORMS_H_
#define DBRE_DEPS_NORMAL_FORMS_H_

#include <string>
#include <vector>

#include "deps/fd.h"
#include "relational/attribute_set.h"

namespace dbre {

enum class NormalForm {
  k1NF,   // flat relation (always true for our model)
  k2NF,   // no partial dependency of a non-prime attribute on a key part
  k3NF,   // every FD X → a has X superkey or a prime
  kBCNF,  // every nontrivial FD has a superkey LHS
};

const char* NormalFormName(NormalForm nf);

// Classifies a relation with attribute set `all_attributes` whose holding
// FDs are `fds` (the relation's candidate keys are derived from `fds`, so
// include key dependencies in `fds`). Returns the *highest* normal form of
// {1NF, 2NF, 3NF, BCNF} that holds.
NormalForm ClassifyNormalForm(const AttributeSet& all_attributes,
                              const std::vector<FunctionalDependency>& fds);

// Individual predicates (1NF is implicit — relations are flat by
// construction).
bool IsIn2NF(const AttributeSet& all_attributes,
             const std::vector<FunctionalDependency>& fds);
bool IsIn3NF(const AttributeSet& all_attributes,
             const std::vector<FunctionalDependency>& fds);
bool IsInBCNF(const AttributeSet& all_attributes,
              const std::vector<FunctionalDependency>& fds);

// Attributes appearing in at least one candidate key.
AttributeSet PrimeAttributes(const AttributeSet& all_attributes,
                             const std::vector<FunctionalDependency>& fds);

}  // namespace dbre

#endif  // DBRE_DEPS_NORMAL_FORMS_H_
