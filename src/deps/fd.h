// Functional dependencies and classical FD reasoning.
//
// Provides the FD type (R: X → Y), Armstrong-closure computation, candidate
// key search, and minimal cover — the textbook machinery both the DBRE
// method and the normal-form classifier build on. All reasoning functions
// operate on FDs of a single relation; the `relation` field is carried for
// display and for grouping FD sets that span a schema.
#ifndef DBRE_DEPS_FD_H_
#define DBRE_DEPS_FD_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"

namespace dbre {

struct FunctionalDependency {
  std::string relation;
  AttributeSet lhs;
  AttributeSet rhs;

  FunctionalDependency() = default;
  FunctionalDependency(std::string relation_name, AttributeSet left,
                       AttributeSet right)
      : relation(std::move(relation_name)),
        lhs(std::move(left)),
        rhs(std::move(right)) {}

  // Trivial if rhs ⊆ lhs.
  bool IsTrivial() const { return lhs.ContainsAll(rhs); }

  // "R: {a} -> {b, c}".
  std::string ToString() const;

  friend bool operator==(const FunctionalDependency& a,
                         const FunctionalDependency& b) {
    return a.relation == b.relation && a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const FunctionalDependency& a,
                        const FunctionalDependency& b);
};

std::ostream& operator<<(std::ostream& os, const FunctionalDependency& fd);

// Closure of `attributes` under `fds` (relation fields are ignored; pass
// FDs of one relation).
AttributeSet AttributeClosure(const AttributeSet& attributes,
                              const std::vector<FunctionalDependency>& fds);

// True if X → Y is implied by `fds` (Y ⊆ closure(X)).
bool Implies(const std::vector<FunctionalDependency>& fds,
             const AttributeSet& lhs, const AttributeSet& rhs);

// True if `attributes` is a superkey of a relation with attribute set
// `all_attributes` under `fds`.
bool IsSuperkey(const AttributeSet& attributes,
                const AttributeSet& all_attributes,
                const std::vector<FunctionalDependency>& fds);

// All candidate keys of a relation with attribute set `all_attributes`
// under `fds`, sorted. Exponential in the worst case; intended for the
// modest arities of reverse-engineering workloads.
std::vector<AttributeSet> CandidateKeys(
    const AttributeSet& all_attributes,
    const std::vector<FunctionalDependency>& fds);

// A minimal (canonical) cover of `fds`: singleton right-hand sides, no
// extraneous LHS attributes, no redundant FDs. `relation` is stamped on the
// results.
std::vector<FunctionalDependency> MinimalCover(
    const std::string& relation, std::vector<FunctionalDependency> fds);

}  // namespace dbre

#endif  // DBRE_DEPS_FD_H_
