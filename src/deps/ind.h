// Inclusion dependencies R_i[Y] ≪ R_j[Z].
//
// Like EquiJoin, attribute lists are ordered and positional (Y[i] must be
// drawn from Z[i]'s values). An IND whose right-hand side is a declared key
// is a referential integrity constraint (RIC).
#ifndef DBRE_DEPS_IND_H_
#define DBRE_DEPS_IND_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"
#include "relational/database.h"

namespace dbre {

struct InclusionDependency {
  std::string lhs_relation;
  std::vector<std::string> lhs_attributes;
  std::string rhs_relation;
  std::vector<std::string> rhs_attributes;

  InclusionDependency() = default;
  InclusionDependency(std::string lhs_rel,
                      std::vector<std::string> lhs_attrs,
                      std::string rhs_rel,
                      std::vector<std::string> rhs_attrs)
      : lhs_relation(std::move(lhs_rel)),
        lhs_attributes(std::move(lhs_attrs)),
        rhs_relation(std::move(rhs_rel)),
        rhs_attributes(std::move(rhs_attrs)) {}

  // Single-attribute convenience form.
  static InclusionDependency Single(std::string lhs_rel,
                                    std::string lhs_attr,
                                    std::string rhs_rel,
                                    std::string rhs_attr);

  size_t arity() const { return lhs_attributes.size(); }

  AttributeSet LhsAttributeSet() const { return AttributeSet(lhs_attributes); }
  AttributeSet RhsAttributeSet() const { return AttributeSet(rhs_attributes); }

  // Shape validation (non-empty relations, equal arity, non-empty names).
  Status Validate() const;

  // "R[a, b] << S[x, y]".
  std::string ToString() const;

  friend bool operator==(const InclusionDependency& a,
                         const InclusionDependency& b) {
    return a.lhs_relation == b.lhs_relation &&
           a.lhs_attributes == b.lhs_attributes &&
           a.rhs_relation == b.rhs_relation &&
           a.rhs_attributes == b.rhs_attributes;
  }
  friend bool operator<(const InclusionDependency& a,
                        const InclusionDependency& b);
};

std::ostream& operator<<(std::ostream& os, const InclusionDependency& ind);

// Whether `ind` is satisfied by `database`'s extension.
Result<bool> Satisfies(const Database& database,
                       const InclusionDependency& ind);

// Whether the right-hand side of `ind` is a declared key of its relation
// (making the IND key-based, i.e. a referential integrity constraint).
bool IsKeyBased(const Database& database, const InclusionDependency& ind);

// Sorted + deduplicated copy.
std::vector<InclusionDependency> SortedUnique(
    std::vector<InclusionDependency> inds);

}  // namespace dbre

#endif  // DBRE_DEPS_IND_H_
