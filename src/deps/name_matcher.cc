#include "deps/name_matcher.h"

#include <algorithm>

#include "common/string_util.h"
#include "relational/algebra.h"

namespace dbre {

std::string NameStem(const std::string& attribute,
                     const NameMatchOptions& options) {
  std::string lower = ToLower(attribute);
  const std::string* best = nullptr;
  for (const std::string& suffix : options.suffixes) {
    if (EndsWith(lower, suffix) && lower.size() > suffix.size()) {
      if (best == nullptr || suffix.size() > best->size()) best = &suffix;
    }
  }
  if (best != nullptr) lower.resize(lower.size() - best->size());
  return lower;
}

Result<std::vector<InclusionDependency>> DiscoverIndsByNaming(
    const Database& database, const NameMatchOptions& options,
    NameMatchStats* stats) {
  NameMatchStats local_stats;
  NameMatchStats* s = stats != nullptr ? stats : &local_stats;
  *s = NameMatchStats{};

  // Collect reference targets: single-attribute keys (or, without the
  // restriction, every attribute).
  struct Target {
    std::string relation;
    std::string attribute;
    std::string stem;
    DataType type;
  };
  std::vector<Target> targets;
  for (const std::string& relation : database.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    for (const Attribute& attribute : table->schema().attributes()) {
      if (options.key_targets_only &&
          !table->schema().IsKey(AttributeSet::Single(attribute.name))) {
        continue;
      }
      targets.push_back(Target{relation, attribute.name,
                               NameStem(attribute.name, options),
                               attribute.type});
    }
  }

  std::vector<InclusionDependency> discovered;
  for (const std::string& relation : database.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    for (const Attribute& attribute : table->schema().attributes()) {
      // Referencing side: non-key attributes.
      if (table->schema().IsKey(AttributeSet::Single(attribute.name))) {
        continue;
      }
      std::string stem = NameStem(attribute.name, options);
      for (const Target& target : targets) {
        if (target.relation == relation &&
            target.attribute == attribute.name) {
          continue;
        }
        if (target.type != attribute.type) continue;
        bool name_match = ToLower(attribute.name) ==
                              ToLower(target.attribute) ||
                          (!stem.empty() && stem == target.stem);
        if (!name_match) continue;
        ++s->pairs_proposed;
        InclusionDependency candidate = InclusionDependency::Single(
            relation, attribute.name, target.relation, target.attribute);
        if (options.verify_against_extension) {
          ++s->pairs_verified;
          DBRE_ASSIGN_OR_RETURN(bool holds, Satisfies(database, candidate));
          if (!holds) continue;
        }
        discovered.push_back(std::move(candidate));
      }
    }
  }
  discovered = SortedUnique(std::move(discovered));
  s->discovered = discovered.size();
  return discovered;
}

}  // namespace dbre
