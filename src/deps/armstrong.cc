#include "deps/armstrong.h"

#include <algorithm>
#include <set>

namespace dbre {

Result<Table> BuildArmstrongRelation(
    const std::string& name, const AttributeSet& universe,
    const std::vector<FunctionalDependency>& fds) {
  const std::vector<std::string>& columns = universe.names();
  const size_t k = columns.size();
  if (k == 0) return InvalidArgumentError("empty universe");
  if (k > 16) {
    return InvalidArgumentError(
        "Armstrong construction enumerates attribute subsets; universe too "
        "large (> 16)");
  }
  for (const FunctionalDependency& fd : fds) {
    if (!universe.ContainsAll(fd.lhs) || !universe.ContainsAll(fd.rhs)) {
      return InvalidArgumentError("FD " + fd.ToString() +
                                  " leaves the universe");
    }
  }

  // The closure lattice: closures of every attribute subset. These are
  // exactly the closed sets, and the family is intersection-closed.
  std::set<AttributeSet> closed;
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    AttributeSet subset;
    for (size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.Insert(columns[i]);
    }
    closed.insert(AttributeClosure(subset, fds));
  }
  closed.erase(universe);  // would duplicate the base tuple

  RelationSchema schema(name);
  for (const std::string& column : columns) {
    DBRE_RETURN_IF_ERROR(schema.AddAttribute(column, DataType::kInt64));
  }
  Table table(std::move(schema));

  // Base tuple: all zeros.
  table.InsertUnchecked(ValueVector(k, Value::Int(0)));
  // One tuple per proper closed set C: agrees with the base exactly on C.
  int64_t tuple_index = 1;
  for (const AttributeSet& c : closed) {
    ValueVector row;
    row.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      if (c.Contains(columns[i])) {
        row.push_back(Value::Int(0));
      } else {
        row.push_back(Value::Int(tuple_index * static_cast<int64_t>(k) +
                                 static_cast<int64_t>(i) + 1));
      }
    }
    table.InsertUnchecked(std::move(row));
    ++tuple_index;
  }
  return table;
}

}  // namespace dbre
