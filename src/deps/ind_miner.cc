#include "deps/ind_miner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "relational/algebra.h"
#include "relational/query_cache.h"
#include "relational/sketch.h"

namespace dbre {
namespace {

struct AttributeColumn {
  std::string relation;
  std::string attribute;
  DataType type;
  bool is_key_target = false;  // attribute alone is a declared key
  size_t distinct = 0;         // dictionary size (distinct non-NULL values)
};

}  // namespace

Result<std::vector<InclusionDependency>> MineUnaryInds(
    const Database& database, const IndMinerOptions& options,
    IndMinerStats* stats) {
  IndMinerStats local_stats;
  IndMinerStats* s = stats != nullptr ? stats : &local_stats;
  *s = IndMinerStats{};

  // One pass over the catalog: encode every attribute, note its exact
  // distinct count, and pre-build its column sketch — the O(n²) pair loop
  // below amortizes the builds, and InclusionHolds' Bloom refute-fast
  // pre-pass then kills most non-included pairs without touching the
  // exact dictionary sets.
  std::vector<AttributeColumn> columns;
  for (const std::string& relation : database.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
    DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                          table->query_cache());
    size_t index = 0;
    for (const Attribute& attribute : table->schema().attributes()) {
      AttributeColumn column;
      column.relation = relation;
      column.attribute = attribute.name;
      column.type = attribute.type;
      column.is_key_target =
          table->schema().IsKey(AttributeSet::Single(attribute.name));
      column.distinct = cache->DistinctCount({index});
      if (SketchesEnabled()) cache->ColumnSketchFor(index);
      columns.push_back(std::move(column));
      ++index;
    }
  }

  std::vector<InclusionDependency> discovered;
  for (const AttributeColumn& lhs : columns) {
    if (lhs.distinct < options.min_lhs_distinct) continue;
    for (const AttributeColumn& rhs : columns) {
      if (&lhs == &rhs) continue;
      if (lhs.type != rhs.type) continue;
      if (lhs.relation == rhs.relation && lhs.attribute == rhs.attribute) {
        continue;
      }
      ++s->pairs_considered;
      if (options.key_targets_only && !rhs.is_key_target) continue;
      // Size pruning: a larger set cannot be included in a smaller one.
      if (lhs.distinct > rhs.distinct) continue;
      ++s->pairs_checked;
      DBRE_ASSIGN_OR_RETURN(
          bool included,
          InclusionHolds(database, lhs.relation, {lhs.attribute},
                         rhs.relation, {rhs.attribute}));
      if (included) {
        discovered.push_back(InclusionDependency::Single(
            lhs.relation, lhs.attribute, rhs.relation, rhs.attribute));
      }
    }
  }
  std::sort(discovered.begin(), discovered.end());
  s->discovered = discovered.size();
  return discovered;
}

Result<std::vector<InclusionDependency>> MineNaryInds(
    const Database& database, const NaryIndMinerOptions& options,
    NaryIndMinerStats* stats) {
  NaryIndMinerStats local_stats;
  NaryIndMinerStats* s = stats != nullptr ? stats : &local_stats;
  *s = NaryIndMinerStats{};

  DBRE_ASSIGN_OR_RETURN(
      std::vector<InclusionDependency> unary,
      MineUnaryInds(database, options.unary, &s->unary));
  std::vector<InclusionDependency> all = unary;

  // Fast membership test for the downward-closure filter.
  std::set<InclusionDependency> unary_set(unary.begin(), unary.end());
  auto unary_holds = [&](const std::string& lr, const std::string& la,
                         const std::string& rr, const std::string& ra) {
    return unary_set.contains(InclusionDependency::Single(lr, la, rr, ra));
  };

  std::vector<InclusionDependency> level = unary;
  for (size_t arity = 2; arity <= options.max_arity && !level.empty();
       ++arity) {
    // Group the previous level by relation pair.
    std::map<std::pair<std::string, std::string>,
             std::vector<const InclusionDependency*>>
        by_pair;
    for (const InclusionDependency& ind : level) {
      by_pair[{ind.lhs_relation, ind.rhs_relation}].push_back(&ind);
    }
    std::vector<InclusionDependency> next;
    std::set<InclusionDependency> seen;
    for (const auto& [pair, inds] : by_pair) {
      for (const InclusionDependency* a : inds) {
        for (const InclusionDependency* b : inds) {
          // Join on a shared (k−1)-prefix; extend with b's last pair.
          // For k=2 the prefix is empty: combine any two unary INDs with
          // distinct attributes, ordered by LHS attribute.
          const std::string& a_last = a->lhs_attributes.back();
          const std::string& b_last = b->lhs_attributes.back();
          if (a_last >= b_last) continue;
          bool same_prefix = true;
          for (size_t i = 0; i + 1 < a->lhs_attributes.size(); ++i) {
            if (a->lhs_attributes[i] != b->lhs_attributes[i] ||
                a->rhs_attributes[i] != b->rhs_attributes[i]) {
              same_prefix = false;
              break;
            }
          }
          if (!same_prefix) continue;
          // No attribute reuse on either side.
          if (std::find(a->lhs_attributes.begin(), a->lhs_attributes.end(),
                        b_last) != a->lhs_attributes.end()) {
            continue;
          }
          const std::string& b_rhs_last = b->rhs_attributes.back();
          if (std::find(a->rhs_attributes.begin(), a->rhs_attributes.end(),
                        b_rhs_last) != a->rhs_attributes.end()) {
            continue;
          }
          InclusionDependency candidate = *a;
          candidate.lhs_attributes.push_back(b_last);
          candidate.rhs_attributes.push_back(b_rhs_last);
          if (!seen.insert(candidate).second) continue;
          // Downward closure on unary projections (cheap necessary
          // condition; full (k−1)-ary closure is implied by construction
          // for k=2 and approximated above for k>2).
          bool closed = true;
          for (size_t i = 0; i < candidate.arity(); ++i) {
            if (!unary_holds(candidate.lhs_relation,
                             candidate.lhs_attributes[i],
                             candidate.rhs_relation,
                             candidate.rhs_attributes[i])) {
              closed = false;
              break;
            }
          }
          if (!closed) continue;
          ++s->candidates_generated;
          ++s->candidates_checked;
          DBRE_ASSIGN_OR_RETURN(bool holds, Satisfies(database, candidate));
          if (holds) next.push_back(std::move(candidate));
        }
      }
    }
    all.insert(all.end(), next.begin(), next.end());
    level = std::move(next);
  }
  all = SortedUnique(std::move(all));
  s->discovered = all.size();
  return all;
}

}  // namespace dbre
