#include "deps/fd_miner.h"

#include <algorithm>
#include <map>

#include "deps/partition.h"

namespace dbre {
namespace {

// Candidate LHS node in the levelwise search.
struct Node {
  AttributeSet attributes;
  StrippedPartition partition;
};

}  // namespace

Result<std::vector<FunctionalDependency>> MineFds(
    const Table& table, const FdMinerOptions& options,
    FdMinerStats* stats) {
  FdMinerStats local_stats;
  FdMinerStats* s = stats != nullptr ? stats : &local_stats;
  *s = FdMinerStats{};

  const RelationSchema& schema = table.schema();
  const size_t arity = schema.arity();
  std::vector<FunctionalDependency> discovered;
  if (arity < 2) return discovered;

  // Single-column partitions.
  std::vector<StrippedPartition> column_partitions;
  column_partitions.reserve(arity);
  for (size_t c = 0; c < arity; ++c) {
    DBRE_ASSIGN_OR_RETURN(StrippedPartition p,
                          StrippedPartition::ForColumn(table, c));
    column_partitions.push_back(std::move(p));
    ++s->partitions_built;
  }

  // Level 1 nodes.
  std::vector<Node> level;
  for (size_t c = 0; c < arity; ++c) {
    level.push_back(Node{AttributeSet::Single(schema.attributes()[c].name),
                         column_partitions[c]});
  }

  auto column_index = [&](const std::string& name) -> size_t {
    return schema.AttributeIndex(name).value();
  };

  // Checks minimality: no discovered FD Y → a with Y ⊂ X exists.
  auto is_minimal = [&](const AttributeSet& lhs,
                        const std::string& dependent) {
    for (const FunctionalDependency& fd : discovered) {
      if (fd.rhs.Contains(dependent) && lhs.ContainsAll(fd.lhs) &&
          fd.lhs != lhs) {
        return false;
      }
    }
    return true;
  };

  for (size_t depth = 1; depth <= options.max_lhs_size && !level.empty();
       ++depth) {
    // Verify FDs X → a for every node X at this level and attribute a ∉ X
    // that keeps the candidate minimal.
    for (const Node& node : level) {
      for (size_t c = 0; c < arity; ++c) {
        const std::string& dependent = schema.attributes()[c].name;
        if (node.attributes.Contains(dependent)) continue;
        if (!is_minimal(node.attributes, dependent)) continue;
        if (options.max_checks != 0 &&
            s->candidates_checked >= options.max_checks) {
          std::sort(discovered.begin(), discovered.end());
          s->discovered = discovered.size();
          return discovered;
        }
        ++s->candidates_checked;
        if (node.partition.Refines(column_partitions[c])) {
          discovered.emplace_back(schema.name(), node.attributes,
                                  AttributeSet::Single(dependent));
        }
      }
    }
    if (depth == options.max_lhs_size) break;

    // Generate the next level: extend each node with attributes greater
    // than its maximum (prefix-tree generation avoids duplicates). Skip
    // extensions X∪{a} when X → a was just discovered (supersets of a
    // determined attribute cannot yield minimal FDs through it, and the
    // node would carry a partition identical to X's).
    std::vector<Node> next;
    for (const Node& node : level) {
      const std::string& max_name = node.attributes.names().back();
      for (size_t c = 0; c < arity; ++c) {
        const std::string& name = schema.attributes()[c].name;
        if (name <= max_name) continue;
        AttributeSet extended = node.attributes;
        extended.Insert(name);
        bool redundant = false;
        for (const FunctionalDependency& fd : discovered) {
          if (extended.ContainsAll(fd.lhs) &&
              extended.ContainsAll(fd.rhs) &&
              !fd.lhs.ContainsAll(fd.rhs) && fd.lhs != extended) {
            // extended contains a discovered FD entirely; its partition is
            // degenerate w.r.t. minimal discovery through that RHS. We keep
            // generation simple: only skip when the *new* attribute is a
            // discovered RHS of a subset LHS.
            if (fd.rhs.Contains(name) && node.attributes.ContainsAll(fd.lhs)) {
              redundant = true;
              break;
            }
          }
        }
        if (redundant) continue;
        next.push_back(Node{std::move(extended),
                            node.partition.Intersect(
                                column_partitions[column_index(name)])});
      }
    }
    level = std::move(next);
  }

  std::sort(discovered.begin(), discovered.end());
  s->discovered = discovered.size();
  return discovered;
}

}  // namespace dbre
