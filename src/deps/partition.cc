#include "deps/partition.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "relational/query_cache.h"

namespace dbre {
namespace {

// Expands a dense code partition (nulls-as-values, matching this file's
// semantics) into explicit row-index classes.
std::vector<std::vector<size_t>> ClassesFromCodePartition(
    const CodePartition& partition) {
  std::vector<std::vector<size_t>> classes(partition.num_groups());
  for (size_t i = 0; i < partition.group_of_row.size(); ++i) {
    classes[partition.group_of_row[i]].push_back(i);
  }
  return classes;
}

}  // namespace

StrippedPartition::StrippedPartition(
    std::vector<std::vector<size_t>> classes, size_t num_rows)
    : classes_(std::move(classes)), num_rows_(num_rows) {
  // Normalize: strip singletons, sort members and classes for determinism.
  classes_.erase(
      std::remove_if(classes_.begin(), classes_.end(),
                     [](const std::vector<size_t>& c) { return c.size() < 2; }),
      classes_.end());
  for (std::vector<size_t>& c : classes_) std::sort(c.begin(), c.end());
  std::sort(classes_.begin(), classes_.end());
}

Result<StrippedPartition> StrippedPartition::ForColumn(const Table& table,
                                                       size_t column) {
  if (column >= table.schema().arity()) {
    return OutOfRangeError("column index out of range");
  }
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  std::shared_ptr<const CodePartition> partition =
      cache->Partition({column}, NullPolicy::kNullAsValue);
  return StrippedPartition(ClassesFromCodePartition(*partition),
                           table.num_rows());
}

Result<StrippedPartition> StrippedPartition::ForAttributes(
    const Table& table, const AttributeSet& attributes) {
  DBRE_ASSIGN_OR_RETURN(std::vector<size_t> indexes,
                        table.ProjectionIndexes(attributes));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                        table.query_cache());
  std::shared_ptr<const CodePartition> partition =
      cache->Partition(indexes, NullPolicy::kNullAsValue);
  return StrippedPartition(ClassesFromCodePartition(*partition),
                           table.num_rows());
}

StrippedPartition StrippedPartition::Intersect(
    const StrippedPartition& other) const {
  // Standard stripped-partition product (Huhtala et al.): label rows by
  // their class in `this`, then split each labelled group by `other`.
  constexpr size_t kUnlabelled = static_cast<size_t>(-1);
  std::vector<size_t> label(num_rows_, kUnlabelled);
  for (size_t c = 0; c < classes_.size(); ++c) {
    for (size_t row : classes_[c]) label[row] = c;
  }
  // For each class of `other`, bucket its labelled members by label.
  std::vector<std::vector<size_t>> product;
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (const std::vector<size_t>& other_class : other.classes_) {
    buckets.clear();
    for (size_t row : other_class) {
      if (label[row] != kUnlabelled) buckets[label[row]].push_back(row);
    }
    for (auto& [lab, members] : buckets) {
      if (members.size() >= 2) product.push_back(std::move(members));
    }
  }
  return StrippedPartition(std::move(product), num_rows_);
}

size_t StrippedPartition::CoveredRows() const {
  size_t covered = 0;
  for (const std::vector<size_t>& c : classes_) covered += c.size();
  return covered;
}

size_t StrippedPartition::NumClassesWithSingletons() const {
  return classes_.size() + (num_rows_ - CoveredRows());
}

size_t StrippedPartition::Error() const {
  return CoveredRows() - classes_.size();
}

bool StrippedPartition::Refines(const StrippedPartition& other) const {
  StrippedPartition product = Intersect(other);
  return product.NumClassesWithSingletons() == NumClassesWithSingletons();
}

}  // namespace dbre
