// Reasoning over inclusion dependency sets.
//
// The sound and complete axiomatization of INDs (Casanova–Fagin–
// Papadimitriou) has three rules; two matter for finite elicited sets:
//   * transitivity:  R[X] ≪ S[Y], S[Y] ≪ T[Z]  ⊢  R[X] ≪ T[Z]
//     (positional: the middle sides must match attribute-for-attribute);
//   * projection/permutation: R[x1..xk] ≪ S[y1..yk] implies the IND over
//     any subsequence of the positions.
// TransitiveClosure saturates a set under transitivity (projection is
// opt-in — it can blow up k-ary INDs into 2^k smaller ones).
//
// FindCyclicSides detects cyclically included sides (R[X] ≪ ... ≪ R[X]),
// which by finite-extension reasoning have *equal* value sets — the
// situation whose EER treatment the paper leaves open (see
// eer/transform.h).
#ifndef DBRE_DEPS_IND_CLOSURE_H_
#define DBRE_DEPS_IND_CLOSURE_H_

#include <vector>

#include "deps/ind.h"

namespace dbre {

struct IndClosureOptions {
  // Also close under projection onto every non-empty position subsequence
  // (unary projections only when `unary_projections_only`).
  bool project = false;
  bool unary_projections_only = true;
  // Saturation guard; 0 = unlimited.
  size_t max_derived = 10000;
};

// Saturates `inds` under transitivity (and optionally projection).
// Derived INDs are marked only by their presence; the result is sorted and
// duplicate-free and always contains the input.
std::vector<InclusionDependency> TransitiveClosure(
    std::vector<InclusionDependency> inds,
    const IndClosureOptions& options = {});

// One equivalence class of cyclically included sides.
struct IndCycle {
  // The sides (relation + ordered attributes) with provably equal value
  // sets, sorted.
  std::vector<std::pair<std::string, std::vector<std::string>>> sides;
};

// Finds all nontrivial cycles in the "is included in" digraph over IND
// sides (strongly connected components of size ≥ 2).
std::vector<IndCycle> FindCyclicSides(
    const std::vector<InclusionDependency>& inds);

}  // namespace dbre

#endif  // DBRE_DEPS_IND_CLOSURE_H_
