#include "pagestore/key_index.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "relational/sketch.h"
#include "store/crc32c.h"
#include "store/snapshot_format.h"

namespace dbre::pagestore {
namespace {

constexpr char kIndexMagic[8] = {'D', 'B', 'R', 'E', 'I', 'D', 'X', '1'};
constexpr size_t kIndexHeaderSize = 32;
constexpr size_t kEntryBytes = 12;

[[noreturn]] void DieIndexIo(const Status& status) {
  std::fprintf(stderr,
               "dbre pagestore: unrecoverable index I/O failure: %s\n",
               status.ToString().c_str());
  std::abort();
}

// Folds `n` bytes that live at absolute file offset `off` into the
// per-kPageSize-page CRC accumulators.
void FoldPages(uint64_t off, const uint8_t* data, size_t n,
               std::vector<uint32_t>* page_crcs) {
  size_t consumed = 0;
  while (consumed < n) {
    uint64_t at = off + consumed;
    size_t page = static_cast<size_t>(at / kPageSize);
    size_t in_page = static_cast<size_t>(at % kPageSize);
    size_t take = std::min(n - consumed, kPageSize - in_page);
    if (page >= page_crcs->size()) page_crcs->resize(page + 1, 0);
    (*page_crcs)[page] =
        store::Crc32c((*page_crcs)[page], data + consumed, take);
    consumed += take;
  }
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  FailpointHit hit = Failpoints::Check("pagestore.index_write");
  size_t limit = bytes.size();
  bool fail_after = false;
  if (hit.action == FailpointHit::Action::kError) {
    return IoError("injected failure (failpoint pagestore.index_write)");
  }
  if (hit.action == FailpointHit::Action::kTorn) {
    limit = std::min(limit, hit.torn_bytes);
    fail_after = true;
  }
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return IoError("open " + tmp + ": " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < limit) {
    ssize_t n = ::write(fd, bytes.data() + off, limit - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return IoError("write " + tmp + ": " + std::strerror(err));
    }
    off += static_cast<size_t>(n);
  }
  if (fail_after) {
    // Torn write: leave the truncated temp file behind (load will reject
    // it by size/CRC) and report the failure.
    ::close(fd);
    return IoError("injected torn write (failpoint pagestore.index_write)");
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoError("fsync " + tmp + ": " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    return IoError("close " + tmp + ": " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return IoError("rename " + tmp + ": " + std::strerror(err));
  }
  return Status::Ok();
}

// Streams an existing spilled index, validating it against the snapshot
// it claims to index. Returns the page CRCs and fence keys on success.
struct LoadedIndex {
  uint64_t count = 0;
  bool exact = false;
  std::vector<uint32_t> page_crcs;
  std::vector<uint64_t> fences;
};

Result<LoadedIndex> StreamAndValidate(const std::string& path,
                                      uint64_t fingerprint, uint32_t column,
                                      uint32_t dict_size, bool want_exact) {
  DBRE_RETURN_IF_ERROR(FailpointError("pagestore.index_load"));
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return IoError("open " + path + ": " + std::strerror(errno));
  }
  auto fail = [&](Status status) {
    ::close(fd);
    return status;
  };
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return fail(IoError("fstat " + path + ": " + std::strerror(errno)));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kIndexHeaderSize + 4) {
    return fail(ParseError("index " + path + ": truncated header"));
  }

  auto read_exact = [&](uint64_t off, void* out, size_t n) -> Status {
    uint8_t* dst = static_cast<uint8_t*>(out);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd, dst + got, n - got,
                          static_cast<off_t>(off + got));
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) {
        return IoError("read " + path + ": " +
                       (r < 0 ? std::strerror(errno) : "unexpected EOF"));
      }
      got += static_cast<size_t>(r);
    }
    return Status::Ok();
  };

  uint8_t header[kIndexHeaderSize];
  DBRE_RETURN_IF_ERROR(read_exact(0, header, sizeof(header)));
  if (std::memcmp(header, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return fail(ParseError("index " + path + ": bad magic"));
  }
  uint64_t file_fp = store::LoadU64(header + 8);
  uint32_t file_column = store::LoadU32(header + 16);
  uint64_t count = store::LoadU64(header + 20);
  bool exact = header[28] != 0;
  if (file_fp != fingerprint || file_column != column ||
      count != dict_size || exact != want_exact) {
    return fail(ParseError("index " + path +
                           ": does not match the snapshot"));
  }
  if (size != kIndexHeaderSize + count * kEntryBytes + 4) {
    return fail(ParseError("index " + path + ": wrong size"));
  }

  LoadedIndex out;
  out.count = count;
  out.exact = exact;
  out.page_crcs.assign((size + kPageSize - 1) / kPageSize, 0);
  uint32_t crc = store::Crc32c(0, header, sizeof(header));
  FoldPages(0, header, sizeof(header), &out.page_crcs);

  // Entry-aligned chunks, so fence keys never straddle a chunk boundary.
  constexpr size_t kChunkEntries = 87040;  // ~1MB
  std::vector<uint8_t> chunk(kChunkEntries * kEntryBytes);
  uint64_t entry = 0;
  uint64_t off = kIndexHeaderSize;
  while (entry < count) {
    size_t batch = static_cast<size_t>(
        std::min<uint64_t>(kChunkEntries, count - entry));
    size_t bytes = batch * kEntryBytes;
    DBRE_RETURN_IF_ERROR(read_exact(off, chunk.data(), bytes));
    crc = store::Crc32c(crc, chunk.data(), bytes);
    FoldPages(off, chunk.data(), bytes, &out.page_crcs);
    for (uint64_t f = (entry + kFenceStride - 1) / kFenceStride;
         f * kFenceStride < entry + batch; ++f) {
      size_t at = static_cast<size_t>(f * kFenceStride - entry) * kEntryBytes;
      out.fences.push_back(store::LoadU64(chunk.data() + at));
    }
    entry += batch;
    off += bytes;
  }
  uint8_t trailer[4];
  DBRE_RETURN_IF_ERROR(read_exact(off, trailer, 4));
  FoldPages(off, trailer, 4, &out.page_crcs);
  if (store::LoadU32(trailer) != crc) {
    return fail(ParseError("index " + path + ": checksum mismatch"));
  }
  ::close(fd);
  return out;
}

}  // namespace

Result<std::shared_ptr<SnapshotKeyIndex>> SnapshotKeyIndex::Create(
    const PagedSnapshot& snap, size_t column) {
  const bool exact = snap.typed(column) &&
                     snap.declared_type(column) == DataType::kInt64;
  const uint32_t dict_size = snap.dict_size(column);
  std::string path =
      snap.path() + ".c" + std::to_string(column) + ".idx";

  auto finish = [&](std::vector<uint32_t> page_crcs,
                    std::vector<uint64_t> fences)
      -> Result<std::shared_ptr<SnapshotKeyIndex>> {
    auto index = std::shared_ptr<SnapshotKeyIndex>(new SnapshotKeyIndex());
    index->pool_ = snap.pool_;
    index->path_ = path;
    index->count_ = dict_size;
    index->exact_ = exact;
    index->fences_ = std::move(fences);
    DBRE_ASSIGN_OR_RETURN(
        index->file_id_,
        index->pool_->AttachFile(path, std::move(page_crcs)));
    return index;
  };

  // Content-addressed reuse: a spilled index naming this snapshot's
  // fingerprint and column, with a clean checksum, is the same sorted run
  // we would rebuild. Any validation failure falls through to a rebuild.
  if (::access(path.c_str(), R_OK) == 0) {
    Result<LoadedIndex> loaded = StreamAndValidate(
        path, snap.fingerprint(), static_cast<uint32_t>(column), dict_size,
        exact);
    if (loaded.ok()) {
      return finish(std::move(loaded->page_crcs), std::move(loaded->fences));
    }
  }

  // Build: stream the dictionary, sort the (key, code) run in memory
  // (O(dict_size) * 12 bytes transient), spill tmp+rename.
  struct Entry {
    uint64_t key;
    uint32_t code;
  };
  std::vector<Entry> entries;
  entries.reserve(dict_size);
  DBRE_RETURN_IF_ERROR(snap.ForEachDictValue(
      column, [&](uint32_t code, const Value& value) {
        uint64_t key = exact ? static_cast<uint64_t>(value.as_int())
                             : SketchHash(value);
        entries.push_back(Entry{key, code});
      }));
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.key != b.key ? a.key < b.key : a.code < b.code;
            });

  store::Writer w;
  w.out.reserve(kIndexHeaderSize + entries.size() * kEntryBytes + 4);
  w.out.append(kIndexMagic, sizeof(kIndexMagic));
  w.U64(snap.fingerprint());
  w.U32(static_cast<uint32_t>(column));
  w.U64(entries.size());
  w.U8(exact ? 1 : 0);
  w.U8(0);
  w.U8(0);
  w.U8(0);
  std::vector<uint64_t> fences;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i % kFenceStride == 0) fences.push_back(entries[i].key);
    w.U64(entries[i].key);
    w.U32(entries[i].code);
  }
  uint32_t crc = store::Crc32c(0, w.out.data(), w.out.size());
  w.U32(crc);

  DBRE_RETURN_IF_ERROR(WriteFileAtomic(path, w.out));
  std::vector<uint32_t> page_crcs(
      (w.out.size() + kPageSize - 1) / kPageSize, 0);
  FoldPages(0, reinterpret_cast<const uint8_t*>(w.out.data()), w.out.size(),
            &page_crcs);
  return finish(std::move(page_crcs), std::move(fences));
}

SnapshotKeyIndex::~SnapshotKeyIndex() {
  if (pool_ != nullptr && file_id_ != 0) pool_->DetachFile(file_id_);
}

void SnapshotKeyIndex::EntryBytes(uint64_t byte_off, size_t n, uint8_t* out,
                                  BufferPool::Page* page,
                                  uint32_t* page_index) const {
  size_t got = 0;
  while (got < n) {
    uint64_t at = byte_off + got;
    uint32_t p = static_cast<uint32_t>(at / kPageSize);
    if (p != *page_index || page->data() == nullptr) {
      Result<BufferPool::Page> pinned = pool_->Pin(file_id_, p);
      if (!pinned.ok()) DieIndexIo(pinned.status());
      *page = std::move(pinned).value();
      *page_index = p;
    }
    size_t in_page = static_cast<size_t>(at % kPageSize);
    size_t take = std::min(n - got, page->size() - in_page);
    std::memcpy(out + got, page->data() + in_page, take);
    got += take;
  }
}

uint64_t SnapshotKeyIndex::EntryKey(uint64_t i, BufferPool::Page* page,
                                    uint32_t* page_index) const {
  uint8_t b[8];
  EntryBytes(kIndexHeaderSize + i * kEntryBytes, 8, b, page, page_index);
  return store::LoadU64(b);
}

uint32_t SnapshotKeyIndex::EntryCode(uint64_t i, BufferPool::Page* page,
                                     uint32_t* page_index) const {
  uint8_t b[4];
  EntryBytes(kIndexHeaderSize + i * kEntryBytes + 8, 4, b, page, page_index);
  return store::LoadU32(b);
}

uint64_t SnapshotKeyIndex::LowerBound(uint64_t key, uint64_t lo, uint64_t hi,
                                      BufferPool::Page* page,
                                      uint32_t* page_index) const {
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (EntryKey(mid, page, page_index) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void SnapshotKeyIndex::ProbeRange(uint64_t key, uint64_t* lo,
                                  uint64_t* hi) const {
  // Entries before the last fence < key are all < key; entries from the
  // first fence > key onward are all > key.
  auto first_ge = std::lower_bound(fences_.begin(), fences_.end(), key);
  size_t lo_block =
      first_ge == fences_.begin()
          ? 0
          : static_cast<size_t>(first_ge - fences_.begin()) - 1;
  auto first_gt = std::upper_bound(fences_.begin(), fences_.end(), key);
  size_t hi_block = static_cast<size_t>(first_gt - fences_.begin());
  *lo = static_cast<uint64_t>(lo_block) * kFenceStride;
  *hi = std::min(count_, static_cast<uint64_t>(hi_block) * kFenceStride);
}

bool SnapshotKeyIndex::ContainsKey(uint64_t key) const {
  if (count_ == 0) return false;
  uint64_t lo, hi;
  ProbeRange(key, &lo, &hi);
  if (lo >= hi) return false;
  BufferPool::Page page;
  uint32_t page_index = UINT32_MAX;
  uint64_t at = LowerBound(key, lo, hi, &page, &page_index);
  return at < count_ && EntryKey(at, &page, &page_index) == key;
}

Status SnapshotKeyIndex::ForEachCode(
    uint64_t key, const std::function<bool(uint32_t code)>& fn) const {
  if (count_ == 0) return Status::Ok();
  uint64_t lo, hi;
  ProbeRange(key, &lo, &hi);
  if (lo >= hi) return Status::Ok();
  BufferPool::Page page;
  uint32_t page_index = UINT32_MAX;
  for (uint64_t at = LowerBound(key, lo, hi, &page, &page_index);
       at < count_ && EntryKey(at, &page, &page_index) == key; ++at) {
    if (!fn(EntryCode(at, &page, &page_index))) break;
  }
  return Status::Ok();
}

}  // namespace dbre::pagestore
