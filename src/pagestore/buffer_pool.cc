#include "pagestore/buffer_pool.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/retry.h"
#include "obs/metrics.h"
#include "store/crc32c.h"

namespace dbre::pagestore {
namespace {

struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* pins;
  obs::Counter* bytes_read;
  obs::Gauge* resident_bytes;
  obs::Gauge* pinned_pages;
  obs::Histogram* read_us;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return PoolMetrics{
        registry.GetCounter("dbre_pagestore_hits_total", {},
                            "Buffer pool pins served from a resident page"),
        registry.GetCounter("dbre_pagestore_misses_total", {},
                            "Buffer pool pins that read the page from disk"),
        registry.GetCounter("dbre_pagestore_evictions_total", {},
                            "Pages evicted from the buffer pool"),
        registry.GetCounter("dbre_pagestore_pins_total", {},
                            "Total page pins"),
        registry.GetCounter("dbre_pagestore_bytes_read_total", {},
                            "Bytes read from disk into the buffer pool"),
        registry.GetGauge("dbre_pagestore_resident_bytes", {},
                          "Bytes currently resident in the buffer pool"),
        registry.GetGauge("dbre_pagestore_pinned_pages", {},
                          "Pages currently pinned"),
        registry.GetHistogram("dbre_pagestore_read_us", {},
                              "Page read (pread + checksum) latency"),
    };
  }();
  return metrics;
}

}  // namespace

BufferPool::BufferPool(size_t budget_bytes) : budget_bytes_(budget_bytes) {
  size_t frames = budget_bytes / kPageSize;
  if (frames < kMinFrames) frames = kMinFrames;
  frames_.resize(frames);
}

BufferPool::~BufferPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, file] : files_) {
    if (file.fd >= 0) ::close(file.fd);
  }
}

Result<uint32_t> BufferPool::AttachFile(const std::string& path,
                                        std::vector<uint32_t> page_crcs) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return IoError("fstat " + path + ": " + std::strerror(err));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  uint64_t pages = (size + kPageSize - 1) / kPageSize;
  if (page_crcs.size() != pages) {
    ::close(fd);
    return InvalidArgumentError(
        "buffer pool: " + path + " has " + std::to_string(pages) +
        " pages but " + std::to_string(page_crcs.size()) + " checksums");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t id = next_file_++;
  files_[id] = File{fd, size, path, std::move(page_crcs)};
  return id;
}

void BufferPool::DetachFile(uint32_t file_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  files_.erase(it);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.valid && (frame.key >> 32) == file_id && frame.pins == 0) {
      page_table_.erase(frame.key);
      resident_bytes_ -= frame.bytes;
      frame.valid = false;
      frame.data.clear();
      frame.data.shrink_to_fit();
    }
  }
  Metrics().resident_bytes->Set(static_cast<int64_t>(resident_bytes_));
}

Result<size_t> BufferPool::AcquireFrameLocked(uint64_t key) {
  // One free frame beats evicting; otherwise clock second-chance.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].valid && !frames_[i].loading) return i;
  }
  for (size_t sweep = 0; sweep < frames_.size() * 2; ++sweep) {
    size_t i = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    Frame& frame = frames_[i];
    if (frame.pins > 0 || frame.loading) continue;
    if (frame.ref) {
      frame.ref = false;
      continue;
    }
    // Victim. Pages are clean (read-only files), so eviction is a drop;
    // the failpoint stands in for a writeback failure on this edge.
    DBRE_RETURN_IF_ERROR(FailpointError("pagestore.evict"));
    page_table_.erase(frame.key);
    resident_bytes_ -= frame.bytes;
    frame.valid = false;
    ++evictions_;
    Metrics().evictions->Add(1);
    (void)key;
    return i;
  }
  return FailedPreconditionError(
      "buffer pool: all " + std::to_string(frames_.size()) +
      " frames are pinned");
}

Result<BufferPool::Page> BufferPool::Pin(uint32_t file_id,
                                         uint32_t page_index) {
  uint64_t key = Key(file_id, page_index);
  std::unique_lock<std::mutex> lock(mutex_);
  ++pins_;
  Metrics().pins->Add(1);
  while (true) {
    auto it = page_table_.find(key);
    if (it != page_table_.end()) {
      Frame& frame = frames_[it->second];
      if (frame.loading) {
        // Another thread is reading this page; wait for it.
        loaded_.wait(lock);
        continue;
      }
      ++hits_;
      Metrics().hits->Add(1);
      frame.ref = true;
      ++frame.pins;
      Metrics().pinned_pages->Add(1);
      return Page(this, it->second, frame.data.data(), frame.bytes);
    }
    break;
  }

  auto file_it = files_.find(file_id);
  if (file_it == files_.end()) {
    return InvalidArgumentError("buffer pool: unknown file id " +
                                std::to_string(file_id));
  }
  const File& file = file_it->second;
  uint64_t offset = static_cast<uint64_t>(page_index) * kPageSize;
  if (offset >= file.size) {
    return InvalidArgumentError("buffer pool: page " +
                                std::to_string(page_index) +
                                " out of range for " + file.path);
  }
  size_t bytes = static_cast<size_t>(
      std::min<uint64_t>(kPageSize, file.size - offset));
  uint32_t expected_crc = file.page_crcs[page_index];
  int fd = file.fd;
  std::string path = file.path;

  DBRE_ASSIGN_OR_RETURN(size_t frame_index, AcquireFrameLocked(key));
  Frame& frame = frames_[frame_index];
  frame.key = key;
  frame.loading = true;
  frame.valid = false;
  frame.bytes = bytes;
  if (frame.data.size() < bytes) frame.data.resize(kPageSize);
  page_table_[key] = frame_index;
  ++misses_;
  Metrics().misses->Add(1);

  // I/O outside the lock; later pinners of this page wait on `loaded_`.
  lock.unlock();
  int64_t start_us = obs::MonotonicUs();
  Status read_status = RetryWithBackoff(RetryPolicy{}, [&]() -> Status {
    DBRE_RETURN_IF_ERROR(FailpointError("pagestore.page_read"));
    size_t off = 0;
    while (off < bytes) {
      ssize_t n = ::pread(fd, frame.data.data() + off, bytes - off,
                          static_cast<off_t>(offset + off));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return IoError("pread " + path + " page " +
                       std::to_string(page_index) + ": " +
                       (n < 0 ? std::strerror(errno) : "unexpected EOF"));
      }
      off += static_cast<size_t>(n);
    }
    return Status::Ok();
  });
  if (read_status.ok()) {
    bool crc_ok =
        store::Crc32c(0, frame.data.data(), bytes) == expected_crc &&
        FailpointError("pagestore.page_crc").ok();
    if (!crc_ok) {
      read_status = ParseError("page " + std::to_string(page_index) +
                               " of " + path + ": checksum mismatch");
    }
  }
  Metrics().read_us->Observe(obs::MonotonicUs() - start_us);

  lock.lock();
  frame.loading = false;
  if (!read_status.ok()) {
    page_table_.erase(key);
    frame.valid = false;
    loaded_.notify_all();
    return read_status;
  }
  frame.valid = true;
  frame.ref = true;
  frame.pins = 1;
  resident_bytes_ += bytes;
  Metrics().bytes_read->Add(bytes);
  Metrics().resident_bytes->Set(static_cast<int64_t>(resident_bytes_));
  Metrics().pinned_pages->Add(1);
  loaded_.notify_all();
  return Page(this, frame_index, frame.data.data(), bytes);
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame];
  if (f.pins > 0) {
    --f.pins;
    Metrics().pinned_pages->Add(-1);
  }
}

BufferPool::Page& BufferPool::Page::operator=(Page&& other) noexcept {
  if (this != &other) {
    Reset();
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    size_ = other.size_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void BufferPool::Page::Reset() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.pins = pins_;
  stats.resident_bytes = resident_bytes_;
  stats.budget_bytes = budget_bytes_;
  stats.frames = frames_.size();
  stats.attached_files = files_.size();
  for (const Frame& frame : frames_) {
    if (frame.valid && frame.pins > 0) ++stats.pinned_pages;
  }
  return stats;
}

}  // namespace dbre::pagestore
