#include "pagestore/paged_snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "pagestore/key_index.h"
#include "relational/column_batch.h"
#include "relational/encoded_table.h"
#include "store/crc32c.h"
#include "store/snapshot_format.h"

namespace dbre::pagestore {
namespace {

using store::Crc32c;
using store::kSnapshotFooterMagic;
using store::kSnapshotFooterSize;
using store::kSnapshotMagic;
using store::kTagBool;
using store::kTagInt;
using store::kTagReal;
using store::kTagString;

// The steady-state cursor contract (relational/paged_source.h): a source
// that verified clean at open can only fail mid-run on a real environment
// fault. Retries already happened inside the pool; give up loudly rather
// than degrade the byte-identical invariant.
[[noreturn]] void DiePagedIo(const Status& status) {
  std::fprintf(stderr,
               "dbre pagestore: unrecoverable page I/O failure: %s\n",
               status.ToString().c_str());
  std::abort();
}

// Buffered sequential reader over a plain fd, for the one-pass open scan.
class SeqReader {
 public:
  SeqReader(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {
    buffer_.resize(256 * 1024);
  }

  uint64_t pos() const { return pos_; }

  Status Read(void* out, size_t n) {
    uint8_t* dst = static_cast<uint8_t*>(out);
    while (n > 0) {
      if (avail_ == 0) DBRE_RETURN_IF_ERROR(Fill());
      size_t take = std::min(n, avail_);
      std::memcpy(dst, buffer_.data() + cursor_, take);
      cursor_ += take;
      avail_ -= take;
      pos_ += take;
      dst += take;
      n -= take;
    }
    return Status::Ok();
  }

  Result<uint8_t> U8() {
    uint8_t v;
    DBRE_RETURN_IF_ERROR(Read(&v, 1));
    return v;
  }
  Result<uint32_t> U32() {
    uint8_t b[4];
    DBRE_RETURN_IF_ERROR(Read(b, 4));
    return store::LoadU32(b);
  }
  Result<uint64_t> U64() {
    uint8_t b[8];
    DBRE_RETURN_IF_ERROR(Read(b, 8));
    return store::LoadU64(b);
  }

  // Streams `n` bytes folding them into `*crc` without keeping them.
  Status CrcSkip(uint64_t n, uint32_t* crc) {
    while (n > 0) {
      if (avail_ == 0) DBRE_RETURN_IF_ERROR(Fill());
      size_t take = static_cast<size_t>(std::min<uint64_t>(n, avail_));
      *crc = Crc32c(*crc, buffer_.data() + cursor_, take);
      cursor_ += take;
      avail_ -= take;
      pos_ += take;
      n -= take;
    }
    return Status::Ok();
  }

 private:
  Status Fill() {
    if (pos_ >= size_) {
      return IoError("read " + path_ + ": unexpected EOF");
    }
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(buffer_.size(), size_ - pos_));
    size_t off = 0;
    while (off < want) {
      ssize_t n = ::pread(fd_, buffer_.data() + off, want - off,
                          static_cast<off_t>(pos_ + off));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return IoError("read " + path_ + ": " +
                       (n < 0 ? std::strerror(errno) : "unexpected EOF"));
      }
      off += static_cast<size_t>(n);
    }
    cursor_ = 0;
    avail_ = want;
    return Status::Ok();
  }

  int fd_;
  uint64_t size_;
  std::string path_;
  std::vector<uint8_t> buffer_;
  uint64_t pos_ = 0;
  size_t cursor_ = 0;
  size_t avail_ = 0;
};

// Sequential reader over buffer-pool pages (steady state dictionary walks).
class PoolStream {
 public:
  PoolStream(const BufferPool* pool, uint32_t file_id, uint64_t file_size,
             uint64_t offset)
      : pool_(const_cast<BufferPool*>(pool)),
        file_id_(file_id),
        file_size_(file_size),
        pos_(offset) {}

  uint64_t pos() const { return pos_; }
  void Skip(uint64_t n) { pos_ += n; }

  Status Read(void* out, size_t n) {
    uint8_t* dst = static_cast<uint8_t*>(out);
    while (n > 0) {
      if (pos_ >= file_size_) {
        return OutOfRangeError("paged read past end of file");
      }
      uint32_t page = static_cast<uint32_t>(pos_ / kPageSize);
      if (page != page_index_ || page_.data() == nullptr) {
        DBRE_ASSIGN_OR_RETURN(page_, pool_->Pin(file_id_, page));
        page_index_ = page;
      }
      size_t in_page = static_cast<size_t>(pos_ % kPageSize);
      size_t take = std::min(n, page_.size() - in_page);
      if (take == 0) {
        return OutOfRangeError("paged read past end of file");
      }
      std::memcpy(dst, page_.data() + in_page, take);
      pos_ += take;
      dst += take;
      n -= take;
    }
    return Status::Ok();
  }

  Result<uint8_t> U8() {
    uint8_t v;
    DBRE_RETURN_IF_ERROR(Read(&v, 1));
    return v;
  }
  Result<uint32_t> U32() {
    uint8_t b[4];
    DBRE_RETURN_IF_ERROR(Read(b, 4));
    return store::LoadU32(b);
  }
  Result<uint64_t> U64() {
    uint8_t b[8];
    DBRE_RETURN_IF_ERROR(Read(b, 8));
    return store::LoadU64(b);
  }

 private:
  BufferPool* pool_;
  uint32_t file_id_;
  uint64_t file_size_;
  uint64_t pos_;
  BufferPool::Page page_;
  uint32_t page_index_ = UINT32_MAX;
};

// Parses one dictionary entry. Tags were validated at open, so a surprise
// here is an internal fault, not user data.
Status ParseEntry(PoolStream* s, Value* out) {
  DBRE_ASSIGN_OR_RETURN(uint8_t tag, s->U8());
  switch (tag) {
    case kTagInt: {
      DBRE_ASSIGN_OR_RETURN(uint64_t bits, s->U64());
      *out = Value::Int(static_cast<int64_t>(bits));
      return Status::Ok();
    }
    case kTagReal: {
      DBRE_ASSIGN_OR_RETURN(uint64_t bits, s->U64());
      *out = Value::Real(std::bit_cast<double>(bits));
      return Status::Ok();
    }
    case kTagBool: {
      DBRE_ASSIGN_OR_RETURN(uint8_t b, s->U8());
      *out = Value::Boolean(b != 0);
      return Status::Ok();
    }
    case kTagString: {
      DBRE_ASSIGN_OR_RETURN(uint32_t n, s->U32());
      std::string text(n, '\0');
      // Oversized values simply span pages; Read assembles across pins.
      DBRE_RETURN_IF_ERROR(s->Read(text.data(), n));
      *out = Value::Text(std::move(text));
      return Status::Ok();
    }
    default:
      return InternalError("paged snapshot: unexpected value tag " +
                           std::to_string(tag));
  }
}

Status SkipEntry(PoolStream* s) {
  DBRE_ASSIGN_OR_RETURN(uint8_t tag, s->U8());
  switch (tag) {
    case kTagInt:
    case kTagReal:
      s->Skip(8);
      return Status::Ok();
    case kTagBool:
      s->Skip(1);
      return Status::Ok();
    case kTagString: {
      DBRE_ASSIGN_OR_RETURN(uint32_t n, s->U32());
      s->Skip(n);
      return Status::Ok();
    }
    default:
      return InternalError("paged snapshot: unexpected value tag " +
                           std::to_string(tag));
  }
}

// Streams one column's dictionary codes through the pool. Fetch serves a
// run of up to kBatchSize codes: when the run sits inside one page at
// 4-byte alignment it returns a pointer straight into the pinned page;
// otherwise it memcpys into the aligned scratch buffer (never more than
// two pages per batch).
class SnapshotCodeCursor : public PagedCodeCursor {
 public:
  SnapshotCodeCursor(std::shared_ptr<const PagedSnapshot> snapshot,
                     uint64_t codes_begin)
      : snapshot_(std::move(snapshot)),
        pool_(snapshot_->pool()),
        file_id_(snapshot_->file_id()),
        codes_begin_(codes_begin) {}

  const uint32_t* Fetch(size_t start, size_t count) override {
    uint64_t byte_begin = codes_begin_ + 4 * static_cast<uint64_t>(start);
    uint32_t first_page = static_cast<uint32_t>(byte_begin / kPageSize);
    size_t in_page = static_cast<size_t>(byte_begin % kPageSize);
    const BufferPool::Page& page = PageFor(first_page);
    if (in_page + 4 * count <= page.size() && (in_page & 3) == 0) {
      return reinterpret_cast<const uint32_t*>(page.data() + in_page);
    }
    size_t filled = 0;
    uint8_t* dst = reinterpret_cast<uint8_t*>(scratch_);
    size_t want = 4 * count;
    uint64_t pos = byte_begin;
    while (filled < want) {
      uint32_t p = static_cast<uint32_t>(pos / kPageSize);
      const BufferPool::Page& pg = PageFor(p);
      size_t off = static_cast<size_t>(pos % kPageSize);
      size_t take = std::min(want - filled, pg.size() - off);
      std::memcpy(dst + filled, pg.data() + off, take);
      filled += take;
      pos += take;
    }
    return scratch_;
  }

  uint32_t At(size_t row) override {
    uint64_t byte = codes_begin_ + 4 * static_cast<uint64_t>(row);
    uint32_t p = static_cast<uint32_t>(byte / kPageSize);
    size_t off = static_cast<size_t>(byte % kPageSize);
    const BufferPool::Page& pg = PageFor(p);
    uint32_t v;
    if (off + 4 <= pg.size()) {
      std::memcpy(&v, pg.data() + off, 4);
      if constexpr (std::endian::native == std::endian::big) {
        v = __builtin_bswap32(v);
      }
      return v;
    }
    uint8_t b[4];
    size_t head = pg.size() - off;
    std::memcpy(b, pg.data() + off, head);
    const BufferPool::Page& next = PageFor(p + 1);
    std::memcpy(b + head, next.data(), 4 - head);
    // PageFor invalidated `pg`'s cache slot; the bytes are already copied.
    return store::LoadU32(b);
  }

 private:
  const BufferPool::Page& PageFor(uint32_t page_index) {
    if (page_index != page_index_ || page_.data() == nullptr) {
      Result<BufferPool::Page> pinned = pool_->Pin(file_id_, page_index);
      if (!pinned.ok()) DiePagedIo(pinned.status());
      page_ = std::move(pinned).value();
      page_index_ = page_index;
    }
    return page_;
  }

  std::shared_ptr<const PagedSnapshot> snapshot_;
  BufferPool* pool_;
  uint32_t file_id_;
  uint64_t codes_begin_;
  BufferPool::Page page_;
  uint32_t page_index_ = UINT32_MAX;
  alignas(8) uint32_t scratch_[batch::kBatchSize];
};

}  // namespace

Result<std::shared_ptr<PagedSnapshot>> PagedSnapshot::Open(
    const std::string& path, std::shared_ptr<BufferPool> pool) {
  if (pool == nullptr) {
    return InvalidArgumentError("paged snapshot needs a buffer pool");
  }
  DBRE_RETURN_IF_ERROR(FailpointError("pagestore.open"));
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return IoError("fstat " + path + ": " + std::strerror(err));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);

  // Pass 1: per-page CRC32C of the raw file, re-verified by the pool on
  // every read-back.
  std::vector<uint32_t> page_crcs((size + kPageSize - 1) / kPageSize, 0);
  {
    std::vector<uint8_t> buffer(1u << 20);
    uint64_t off = 0;
    while (off < size) {
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(buffer.size(), size - off));
      size_t got = 0;
      while (got < want) {
        ssize_t n = ::pread(fd, buffer.data() + got, want - got,
                            static_cast<off_t>(off + got));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          ::close(fd);
          return IoError("read " + path + ": " +
                         (n < 0 ? std::strerror(errno) : "unexpected EOF"));
        }
        got += static_cast<size_t>(n);
      }
      size_t consumed = 0;
      while (consumed < want) {
        uint64_t at = off + consumed;
        size_t page = static_cast<size_t>(at / kPageSize);
        size_t in_page = static_cast<size_t>(at % kPageSize);
        size_t take = std::min(want - consumed, kPageSize - in_page);
        page_crcs[page] =
            Crc32c(page_crcs[page], buffer.data() + consumed, take);
        consumed += take;
      }
      off += want;
    }
  }

  // Pass 2: structure + section checksums, mirroring store/snapshot.cc's
  // ParseLayout/LoadSnapshot verification and error text, without ever
  // materializing a row.
  auto fail = [&](Status status) {
    ::close(fd);
    return status;
  };
  if (Failpoints::Check("snapshot.crc").action !=
      FailpointHit::Action::kNone) {
    return fail(ParseError(
        "snapshot " + path +
        ": injected checksum mismatch (failpoint snapshot.crc)"));
  }
  if (size < sizeof(kSnapshotMagic) + 12 + kSnapshotFooterSize) {
    return fail(
        ParseError("snapshot " + path + ": bad magic or truncated header"));
  }
  SeqReader r(fd, size, path);
  char magic[8];
  DBRE_RETURN_IF_ERROR(r.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return fail(
        ParseError("snapshot " + path + ": bad magic or truncated header"));
  }
  DBRE_ASSIGN_OR_RETURN(uint64_t schema_size, r.U64());
  DBRE_ASSIGN_OR_RETURN(uint32_t schema_crc, r.U32());
  if (schema_size > size - r.pos() - kSnapshotFooterSize) {
    return fail(ParseError("snapshot " + path + ": schema blob exceeds file"));
  }
  std::vector<uint8_t> schema_blob(schema_size);
  DBRE_RETURN_IF_ERROR(r.Read(schema_blob.data(), schema_blob.size()));
  if (Crc32c(0, schema_blob.data(), schema_blob.size()) != schema_crc) {
    return fail(ParseError("snapshot " + path + ": schema checksum mismatch"));
  }
  Result<store::ParsedSchema> parsed =
      store::ParseSchemaBlob(schema_blob.data(), schema_blob.size());
  if (!parsed.ok()) return fail(parsed.status());
  const uint64_t rows = parsed->rows;
  const uint32_t columns = parsed->columns;
  const uint64_t pages_end = size - kSnapshotFooterSize;

  // Footer next, matching the whole-file loader's verification order (it
  // validates the footer before walking any column). The footer sits at
  // the end of the file, so read it directly.
  uint8_t footer[kSnapshotFooterSize];
  {
    size_t got = 0;
    while (got < sizeof(footer)) {
      ssize_t n = ::pread(fd, footer + got, sizeof(footer) - got,
                          static_cast<off_t>(pages_end + got));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return fail(IoError("read " + path + ": " +
                            (n < 0 ? std::strerror(errno)
                                   : "unexpected EOF")));
      }
      got += static_cast<size_t>(n);
    }
  }
  const uint64_t fingerprint = store::LoadU64(footer);
  if (Crc32c(0, footer, 8) != store::LoadU32(footer + 8) ||
      std::memcmp(footer + 12, kSnapshotFooterMagic,
                  sizeof(kSnapshotFooterMagic)) != 0) {
    return fail(ParseError("snapshot " + path + ": footer checksum mismatch"));
  }
  if (rows >= EncodedTable::kNullCode) {
    return fail(
        ParseError("snapshot " + path + ": row count overflows encoding"));
  }

  auto snapshot = std::shared_ptr<PagedSnapshot>(new PagedSnapshot());
  snapshot->path_ = path;
  snapshot->pool_ = pool;
  snapshot->file_size_ = size;
  snapshot->rows_ = rows;
  snapshot->schema_ = std::move(parsed->schema);
  snapshot->columns_.resize(columns);
  snapshot->indexes_.resize(columns);

  for (uint32_t c = 0; c < columns; ++c) {
    std::string page_name = "column page " + std::to_string(c);
    if (pages_end - r.pos() < 12) {
      return fail(
          ParseError("snapshot " + path + ": " + page_name + " truncated"));
    }
    DBRE_ASSIGN_OR_RETURN(uint64_t payload_size, r.U64());
    DBRE_ASSIGN_OR_RETURN(uint32_t payload_crc, r.U32());
    if (payload_size > pages_end - r.pos()) {
      return fail(
          ParseError("snapshot " + path + ": " + page_name + " truncated"));
    }
    Column& column = snapshot->columns_[c];
    column.payload_begin = r.pos();
    column.type = snapshot->schema_.attributes()[c].type;
    const uint64_t payload_end = column.payload_begin + payload_size;

    uint32_t crc = 0;
    Status structure = Status::Ok();
    if (payload_size < 5) {
      structure =
          ParseError("snapshot " + path + ": " + page_name + " is malformed");
    } else {
      uint8_t head[5];
      DBRE_RETURN_IF_ERROR(r.Read(head, 5));
      crc = Crc32c(crc, head, 5);
      column.dict_size = store::LoadU32(head);
      column.has_null = head[4] != 0;
      column.dict_begin = r.pos();
      column.fixed = column.type == DataType::kInt64 ||
                     column.type == DataType::kDouble;
      uint8_t expected_tag = 0;
      if (column.type == DataType::kInt64) expected_tag = kTagInt;
      if (column.type == DataType::kDouble) expected_tag = kTagReal;
      if (column.type == DataType::kBool) expected_tag = kTagBool;
      if (column.type == DataType::kString) expected_tag = kTagString;
      column.typed = true;

      if (column.fixed) {
        uint64_t dict_bytes =
            static_cast<uint64_t>(column.dict_size) * store::kFixedEntryBytes;
        if (payload_end - r.pos() < dict_bytes) {
          structure = ParseError("snapshot " + path + ": " + page_name +
                                 " is malformed");
        } else {
          // Verify every tag, folding the fixed entries into the CRC.
          std::vector<uint8_t> chunk;
          uint32_t remaining = column.dict_size;
          while (remaining > 0 && structure.ok()) {
            uint32_t batch = std::min<uint32_t>(remaining, 4096);
            chunk.resize(batch * store::kFixedEntryBytes);
            DBRE_RETURN_IF_ERROR(r.Read(chunk.data(), chunk.size()));
            crc = Crc32c(crc, chunk.data(), chunk.size());
            for (uint32_t i = 0; i < batch; ++i) {
              if (chunk[i * store::kFixedEntryBytes] != expected_tag) {
                structure = ParseError("snapshot " + path + ": " + page_name +
                                       " has a mistyped entry");
                break;
              }
            }
            remaining -= batch;
          }
        }
      } else {
        // Variable-width entries: validate tags/lengths, build the sparse
        // directory, and detect whether every entry matches the declared
        // type (mixed-type legacy pages fall back to untyped handling).
        column.directory.reserve(column.dict_size / kDictDirStride + 1);
        for (uint32_t i = 0; i < column.dict_size && structure.ok(); ++i) {
          if (i % kDictDirStride == 0) {
            column.directory.push_back(r.pos());
          }
          if (payload_end - r.pos() < 1) {
            structure = ParseError("snapshot " + path + ": " + page_name +
                                   " is malformed");
            break;
          }
          DBRE_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
          crc = Crc32c(crc, &tag, 1);
          size_t entry_payload = 0;
          bool need_len = false;
          switch (tag) {
            case kTagInt:
            case kTagReal:
              entry_payload = 8;
              break;
            case kTagBool:
              entry_payload = 1;
              break;
            case kTagString:
              need_len = true;
              break;
            default:
              structure = ParseError("snapshot: unknown value tag " +
                                     std::to_string(tag));
              break;
          }
          if (!structure.ok()) break;
          if (tag != expected_tag) column.typed = false;
          if (need_len) {
            if (payload_end - r.pos() < 4) {
              structure = ParseError("snapshot " + path + ": " + page_name +
                                     " is malformed");
              break;
            }
            uint8_t len_bytes[4];
            DBRE_RETURN_IF_ERROR(r.Read(len_bytes, 4));
            crc = Crc32c(crc, len_bytes, 4);
            entry_payload = store::LoadU32(len_bytes);
          }
          if (payload_end - r.pos() < entry_payload) {
            structure = ParseError("snapshot " + path + ": " + page_name +
                                   " is malformed");
            break;
          }
          DBRE_RETURN_IF_ERROR(r.CrcSkip(entry_payload, &crc));
        }
      }
    }

    if (structure.ok()) {
      column.codes_begin = r.pos();
      if (payload_end - r.pos() != rows * 4) {
        structure = ParseError("snapshot " + path + ": " + page_name +
                               " is malformed");
      }
    }
    // Finish the payload CRC even if the structure was bad: a checksum
    // mismatch is the more fundamental diagnosis and wins, matching the
    // whole-file loader's error order.
    DBRE_RETURN_IF_ERROR(r.CrcSkip(payload_end - r.pos(), &crc));
    if (crc != payload_crc) {
      return fail(ParseError("snapshot " + path + ": " + page_name +
                             " checksum mismatch"));
    }
    if (!structure.ok()) return fail(structure);
  }

  if (r.pos() != pages_end) {
    return fail(
        ParseError("snapshot " + path + ": trailing bytes after pages"));
  }
  snapshot->fingerprint_ = fingerprint;
  ::close(fd);

  DBRE_ASSIGN_OR_RETURN(snapshot->file_id_,
                        pool->AttachFile(path, std::move(page_crcs)));
  return snapshot;
}

PagedSnapshot::~PagedSnapshot() {
  if (pool_ != nullptr && file_id_ != 0) pool_->DetachFile(file_id_);
}

std::unique_ptr<PagedCodeCursor> PagedSnapshot::Codes(size_t column) const {
  return std::make_unique<SnapshotCodeCursor>(
      shared_from_this(), columns_[column].codes_begin);
}

Status PagedSnapshot::ReadBytes(uint64_t off, size_t n, uint8_t* out) const {
  PoolStream stream(pool_.get(), file_id_, file_size_, off);
  return stream.Read(out, n);
}

Result<Value> PagedSnapshot::DictValueAt(size_t column, uint32_t code) const {
  const Column& col = columns_[column];
  if (code >= col.dict_size) {
    return OutOfRangeError("dictionary code " + std::to_string(code) +
                           " out of range for column " +
                           std::to_string(column));
  }
  if (col.fixed) {
    uint8_t entry[store::kFixedEntryBytes];
    DBRE_RETURN_IF_ERROR(ReadBytes(
        col.dict_begin + static_cast<uint64_t>(code) * store::kFixedEntryBytes,
        store::kFixedEntryBytes, entry));
    uint64_t bits = store::LoadU64(entry + 1);
    return col.type == DataType::kInt64
               ? Value::Int(static_cast<int64_t>(bits))
               : Value::Real(std::bit_cast<double>(bits));
  }
  uint32_t dir_slot = code / kDictDirStride;
  PoolStream stream(pool_.get(), file_id_, file_size_,
                    col.directory[dir_slot]);
  for (uint32_t i = dir_slot * kDictDirStride; i < code; ++i) {
    DBRE_RETURN_IF_ERROR(SkipEntry(&stream));
  }
  Value value;
  DBRE_RETURN_IF_ERROR(ParseEntry(&stream, &value));
  return value;
}

Status PagedSnapshot::WalkDict(
    size_t column, uint32_t first, uint32_t count, uint64_t entry_off,
    const std::function<void(uint32_t, const Value&)>& fn) const {
  const Column& col = columns_[column];
  PoolStream stream(pool_.get(), file_id_, file_size_, entry_off);
  Value value;
  for (uint32_t i = 0; i < count; ++i) {
    if (col.fixed) {
      uint8_t entry[store::kFixedEntryBytes];
      DBRE_RETURN_IF_ERROR(stream.Read(entry, store::kFixedEntryBytes));
      uint64_t bits = store::LoadU64(entry + 1);
      value = col.type == DataType::kInt64
                  ? Value::Int(static_cast<int64_t>(bits))
                  : Value::Real(std::bit_cast<double>(bits));
    } else {
      DBRE_RETURN_IF_ERROR(ParseEntry(&stream, &value));
    }
    fn(first + i, value);
  }
  return Status::Ok();
}

Status PagedSnapshot::ForEachDictValue(
    size_t column,
    const std::function<void(uint32_t code, const Value& value)>& fn) const {
  const Column& col = columns_[column];
  return WalkDict(column, 0, col.dict_size, col.dict_begin, fn);
}

Result<std::shared_ptr<const PagedKeyIndex>> PagedSnapshot::KeyIndexFor(
    size_t column) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (indexes_[column] != nullptr) return indexes_[column];
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<const PagedKeyIndex> index,
                        SnapshotKeyIndex::Create(*this, column));
  indexes_[column] = index;
  return index;
}

Result<std::shared_ptr<PagedSnapshot>> OpenSnapshotPaged(
    const std::string& path, std::shared_ptr<BufferPool> pool) {
  return PagedSnapshot::Open(path, std::move(pool));
}

}  // namespace dbre::pagestore
