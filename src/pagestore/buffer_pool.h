// A shared buffer pool of fixed-size pages over read-only files.
//
// Files (snapshots, spilled key indexes) are attached with the CRC32C of
// every kPageSize-byte page, computed by whoever streamed the file at open
// time; every page the pool reads back is re-verified against its CRC, so
// bit rot between open and use surfaces as kDataLoss instead of silently
// corrupting a byte-identical report.
//
// Eviction is clock second-chance over unpinned frames; the frame count is
// fixed at budget/kPageSize (min kMinFrames), so the pool's resident bytes
// never exceed the budget `dbre_serve --buffer-pool-mb` configured.
// Concurrent pins of the same page coalesce: the first pinner marks the
// frame loading and reads outside the pool lock, later pinners wait on a
// condition variable. Transient read errors are retried with backoff
// (common/retry.h) before surfacing.
//
// Failpoints: pagestore.page_read (the pread), pagestore.page_crc (verify),
// pagestore.evict (the eviction edge).
#ifndef DBRE_PAGESTORE_BUFFER_POOL_H_
#define DBRE_PAGESTORE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbre::pagestore {

inline constexpr size_t kPageSize = 64 * 1024;
inline constexpr size_t kMinFrames = 8;

class BufferPool {
 public:
  explicit BufferPool(size_t budget_bytes);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Registers `path` (opened read-only) with the per-page checksums its
  // opener computed while streaming it. Returns the pool-local file id
  // used by Pin. `page_crcs.size()` must equal ceil(file size/kPageSize).
  Result<uint32_t> AttachFile(const std::string& path,
                              std::vector<uint32_t> page_crcs);

  // Drops the file: closes its descriptor and frees its unpinned frames.
  // The caller guarantees no pins into the file remain.
  void DetachFile(uint32_t file_id);

  // RAII pin on one page's frame. data()/size() expose the page bytes
  // (the file's last page is short). Movable, not copyable.
  class Page {
   public:
    Page() = default;
    Page(Page&& other) noexcept { *this = std::move(other); }
    Page& operator=(Page&& other) noexcept;
    ~Page() { Reset(); }

    const uint8_t* data() const { return data_; }
    size_t size() const { return size_; }
    void Reset();

   private:
    friend class BufferPool;
    Page(BufferPool* pool, size_t frame, const uint8_t* data, size_t size)
        : pool_(pool), frame_(frame), data_(data), size_(size) {}

    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
    const uint8_t* data_ = nullptr;
    size_t size_ = 0;
  };

  Result<Page> Pin(uint32_t file_id, uint32_t page_index);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t pins = 0;
    size_t resident_bytes = 0;
    size_t pinned_pages = 0;
    size_t budget_bytes = 0;
    size_t frames = 0;
    size_t attached_files = 0;
  };
  Stats stats() const;

  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct File {
    int fd = -1;
    uint64_t size = 0;
    std::string path;
    std::vector<uint32_t> page_crcs;
  };

  struct Frame {
    uint64_t key = 0;  // file_id << 32 | page_index
    bool valid = false;
    bool loading = false;
    bool ref = false;
    uint32_t pins = 0;
    size_t bytes = 0;  // page payload length (last page is short)
    std::vector<uint8_t> data;
  };

  static uint64_t Key(uint32_t file_id, uint32_t page_index) {
    return (static_cast<uint64_t>(file_id) << 32) | page_index;
  }

  // Picks a frame for `key`: a free frame or a clock victim. Returns
  // kResourceExhausted when every frame is pinned. Lock held.
  Result<size_t> AcquireFrameLocked(uint64_t key);

  void Unpin(size_t frame);

  const size_t budget_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable loaded_;
  uint32_t next_file_ = 1;
  std::map<uint32_t, File> files_;
  std::vector<Frame> frames_;
  std::map<uint64_t, size_t> page_table_;  // key -> frame index
  size_t clock_hand_ = 0;
  size_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t pins_ = 0;
};

}  // namespace dbre::pagestore

#endif  // DBRE_PAGESTORE_BUFFER_POOL_H_
