// Opens a DBSNAP01 snapshot page-at-a-time instead of mmapping it whole.
//
// Open() makes ONE streaming pass over the file with a small read buffer:
// it verifies every checksum the whole-file loader verifies (schema CRC,
// every column payload CRC, footer CRC + magics) using the identical error
// messages, and on the side computes the CRC32C of every kPageSize-byte
// page, which the buffer pool re-verifies on each read-back. Nothing row-
// sized is materialized: per column, Open records the byte offsets of the
// dictionary and code regions and builds a sparse dictionary directory
// (one byte offset per kDictDirStride entries) so DictValueAt is O(stride)
// page-local work. int64/double dictionaries are fixed-width (9 bytes per
// entry) and addressed arithmetically. Values larger than a page — long
// strings — simply span consecutive pages; the reader assembles them
// across pins (the format needs no separate overflow-page chain).
//
// A snapshot whose verification fails never attaches to the pool; the
// service layer quarantines it exactly as it does for LoadSnapshot.
#ifndef DBRE_PAGESTORE_PAGED_SNAPSHOT_H_
#define DBRE_PAGESTORE_PAGED_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "pagestore/buffer_pool.h"
#include "relational/paged_source.h"
#include "relational/schema.h"

namespace dbre::pagestore {

// One byte offset per this many dictionary entries (variable-width
// dictionaries only); a point lookup walks at most the stride.
inline constexpr uint32_t kDictDirStride = 64;

class PagedSnapshot : public PagedSource,
                      public std::enable_shared_from_this<PagedSnapshot> {
 public:
  static Result<std::shared_ptr<PagedSnapshot>> Open(
      const std::string& path, std::shared_ptr<BufferPool> pool);

  ~PagedSnapshot() override;

  PagedSnapshot(const PagedSnapshot&) = delete;
  PagedSnapshot& operator=(const PagedSnapshot&) = delete;

  // --- PagedSource ------------------------------------------------------
  size_t num_rows() const override { return rows_; }
  size_t num_columns() const override { return columns_.size(); }
  uint64_t fingerprint() const override { return fingerprint_; }
  uint32_t dict_size(size_t column) const override {
    return columns_[column].dict_size;
  }
  bool has_null(size_t column) const override {
    return columns_[column].has_null;
  }
  bool typed(size_t column) const override { return columns_[column].typed; }
  DataType declared_type(size_t column) const override {
    return columns_[column].type;
  }
  std::unique_ptr<PagedCodeCursor> Codes(size_t column) const override;
  Result<Value> DictValueAt(size_t column, uint32_t code) const override;
  Status ForEachDictValue(
      size_t column,
      const std::function<void(uint32_t code, const Value& value)>& fn)
      const override;
  Result<std::shared_ptr<const PagedKeyIndex>> KeyIndexFor(
      size_t column) const override;

  // --- extras for the service layer ------------------------------------
  const RelationSchema& schema() const { return schema_; }
  const std::string& path() const { return path_; }
  BufferPool* pool() const { return pool_.get(); }
  uint32_t file_id() const { return file_id_; }

 private:
  friend class SnapshotCodeCursor;
  friend class SnapshotKeyIndex;

  struct Column {
    uint64_t payload_begin = 0;  // file offset of dict_size field
    uint64_t dict_begin = 0;     // file offset of the first dict entry
    uint64_t codes_begin = 0;    // file offset of the code array
    uint32_t dict_size = 0;
    bool has_null = false;
    bool typed = false;
    bool fixed = false;  // 9-byte entries (int64/double)
    DataType type = DataType::kString;
    // Sparse directory for variable-width dictionaries: byte offset (from
    // dict_begin) of entry i*kDictDirStride.
    std::vector<uint64_t> directory;
  };

  PagedSnapshot() = default;

  // Reads `n` bytes at absolute file offset `off` through the pool.
  Status ReadBytes(uint64_t off, size_t n, uint8_t* out) const;

  // Walks dictionary entries [first, first+count) of `column`, starting at
  // byte offset `entry_off` (from file start), invoking fn per entry.
  Status WalkDict(size_t column, uint32_t first, uint32_t count,
                  uint64_t entry_off,
                  const std::function<void(uint32_t, const Value&)>& fn)
      const;

  std::string path_;
  std::shared_ptr<BufferPool> pool_;
  uint32_t file_id_ = 0;
  uint64_t file_size_ = 0;
  uint64_t rows_ = 0;
  uint64_t fingerprint_ = 0;
  RelationSchema schema_;
  std::vector<Column> columns_;

  mutable std::mutex index_mutex_;
  mutable std::vector<std::shared_ptr<const PagedKeyIndex>> indexes_;
};

// Convenience used by the service layer and tests.
Result<std::shared_ptr<PagedSnapshot>> OpenSnapshotPaged(
    const std::string& path, std::shared_ptr<BufferPool> pool);

}  // namespace dbre::pagestore

#endif  // DBRE_PAGESTORE_PAGED_SNAPSHOT_H_
