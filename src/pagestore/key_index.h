// Sorted-run key indexes over a paged snapshot column's dictionary.
//
// An index is (key, code) pairs sorted by key, spilled next to the
// snapshot as `<snapshot>.c<column>.idx` and probed through the buffer
// pool: an in-memory fence key every kFenceStride entries narrows a probe
// to one block, which is binary-searched page-locally. Keys are the raw
// int64 bit pattern for typed int64 columns (`exact()`), and the canonical
// sketch hash (relational/sketch.h SketchHash) otherwise — inexact probe
// hits must be verified by decoding the dictionary value.
//
// On-disk layout (little-endian):
//   [magic "DBREIDX1"][u64 snapshot fingerprint][u32 column][u64 count]
//   [u8 exact][3 zero bytes]          -- 32-byte header
//   count x { u64 key, u32 code }     -- 12-byte entries, sorted (key, code)
//   [u32 CRC32C of header + entries]
//
// Create() reuses a spilled index when the header matches the snapshot
// (content-addressed by fingerprint + column) and the checksum verifies;
// anything else triggers a rebuild, written tmp+rename. Building streams
// the dictionary through the pool and holds the entry run in memory —
// O(dict_size) * 12 bytes transient, the only above-pool allocation in
// the paged path.
//
// Failpoints: pagestore.index_write (spill), pagestore.index_load (reuse).
#ifndef DBRE_PAGESTORE_KEY_INDEX_H_
#define DBRE_PAGESTORE_KEY_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/paged_snapshot.h"
#include "relational/paged_source.h"

namespace dbre::pagestore {

// One fence key per this many 12-byte entries (48KB blocks, <= 2 pages).
inline constexpr uint64_t kFenceStride = 4096;

class SnapshotKeyIndex : public PagedKeyIndex {
 public:
  // Builds (or revalidates and reuses) the index for `column` of `snap`.
  static Result<std::shared_ptr<SnapshotKeyIndex>> Create(
      const PagedSnapshot& snap, size_t column);

  ~SnapshotKeyIndex() override;

  SnapshotKeyIndex(const SnapshotKeyIndex&) = delete;
  SnapshotKeyIndex& operator=(const SnapshotKeyIndex&) = delete;

  bool exact() const override { return exact_; }
  bool ContainsKey(uint64_t key) const override;
  Status ForEachCode(
      uint64_t key,
      const std::function<bool(uint32_t code)>& fn) const override;

  uint64_t entry_count() const { return count_; }
  const std::string& path() const { return path_; }

 private:
  SnapshotKeyIndex() = default;

  // Reads the u64 key / u32 code of entry `i` through the pool, keeping
  // the last-touched page pinned in `*page`/`*page_index`.
  uint64_t EntryKey(uint64_t i, BufferPool::Page* page,
                    uint32_t* page_index) const;
  uint32_t EntryCode(uint64_t i, BufferPool::Page* page,
                     uint32_t* page_index) const;
  void EntryBytes(uint64_t byte_off, size_t n, uint8_t* out,
                  BufferPool::Page* page, uint32_t* page_index) const;

  // First entry index in [lo, hi) whose key is >= `key`.
  uint64_t LowerBound(uint64_t key, uint64_t lo, uint64_t hi,
                      BufferPool::Page* page, uint32_t* page_index) const;

  // Fence-bounded entry range that can contain `key`.
  void ProbeRange(uint64_t key, uint64_t* lo, uint64_t* hi) const;

  std::shared_ptr<BufferPool> pool_;
  uint32_t file_id_ = 0;
  std::string path_;
  uint64_t count_ = 0;
  bool exact_ = false;
  std::vector<uint64_t> fences_;  // key of entry j * kFenceStride
};

}  // namespace dbre::pagestore

#endif  // DBRE_PAGESTORE_KEY_INDEX_H_
