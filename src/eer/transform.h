// Schema transformations on EER schemas.
//
// The paper's Translate sketch explicitly leaves out "the treatment of
// cyclic inclusion dependencies". Cyclic key-based INDs (two relations
// whose key value sets coincide) produce is-a cycles — A is-a B and
// B is-a A — which mean the object types are the *same* application-domain
// object split across relations. MergeIsACycles collapses every such
// strongly connected component into one entity: the representative keeps
// its identifier, gains the union of the attributes, absorbs the others'
// relationship roles and outgoing is-a links.
#ifndef DBRE_EER_TRANSFORM_H_
#define DBRE_EER_TRANSFORM_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/status.h"
#include "eer/model.h"

namespace dbre::eer {

struct MergeReport {
  size_t cycles_merged = 0;
  // merged entity name → surviving representative name.
  std::map<std::string, std::string> absorbed;
};

// Collapses is-a cycles in place. The representative of each cycle is the
// lexicographically smallest entity name. Idempotent.
Result<MergeReport> MergeIsACycles(EerSchema* schema);

// A value-based specialization hint: `entity`.`attribute` partitions the
// instances by the given constants (produced by the selection analysis of
// sql/selection_analysis.h, re-keyed to EER entity names).
struct SpecializationHint {
  std::string entity;
  std::string attribute;
  std::vector<std::string> constants;
};

struct SpecializationReport {
  size_t subtypes_added = 0;
};

// Adds a subtype entity "<Entity>_<constant>" with an is-a link to the
// parent for every constant of every hint whose entity exists. Subtypes
// carry no attributes of their own (they specialize by value); the
// discriminating attribute stays on the parent. Hints naming unknown
// entities are skipped; existing same-named entities are left alone.
Result<SpecializationReport> AddDiscriminatorSubtypes(
    EerSchema* schema, const std::vector<SpecializationHint>& hints);

}  // namespace dbre::eer

#endif  // DBRE_EER_TRANSFORM_H_
