// Graphviz DOT export of an EER schema, in the visual vocabulary of the
// paper's Figure 1: rectangles for entity types, double-bordered rectangles
// for weak entity types, diamonds for relationship types, and double-headed
// arrows for is-a links.
#ifndef DBRE_EER_DOT_EXPORT_H_
#define DBRE_EER_DOT_EXPORT_H_

#include <string>

#include "common/status.h"
#include "eer/model.h"

namespace dbre::eer {

struct DotOptions {
  bool show_attributes = true;  // list attributes inside entity nodes
  std::string graph_name = "eer";
};

// Renders `schema` as a DOT graph.
std::string ToDot(const EerSchema& schema, const DotOptions& options = {});

// Writes the DOT rendering to `path`.
Status WriteDotFile(const EerSchema& schema, const std::string& path,
                    const DotOptions& options = {});

}  // namespace dbre::eer

#endif  // DBRE_EER_DOT_EXPORT_H_
