#include "eer/transform.h"

#include <algorithm>
#include <functional>
#include <vector>

namespace dbre::eer {
namespace {

// Tarjan's strongly-connected components over the is-a digraph
// (subtype → supertype).
struct SccFinder {
  const std::vector<std::string>& nodes;
  const std::map<std::string, std::vector<std::string>>& edges;

  std::map<std::string, int> index;
  std::map<std::string, int> lowlink;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int counter = 0;
  std::vector<std::vector<std::string>> components;

  void Run() {
    for (const std::string& node : nodes) {
      if (!index.contains(node)) Visit(node);
    }
  }

  void Visit(const std::string& node) {
    index[node] = lowlink[node] = counter++;
    stack.push_back(node);
    on_stack[node] = true;
    auto it = edges.find(node);
    if (it != edges.end()) {
      for (const std::string& next : it->second) {
        if (!index.contains(next)) {
          Visit(next);
          lowlink[node] = std::min(lowlink[node], lowlink[next]);
        } else if (on_stack[next]) {
          lowlink[node] = std::min(lowlink[node], index[next]);
        }
      }
    }
    if (lowlink[node] == index[node]) {
      std::vector<std::string> component;
      while (true) {
        std::string top = stack.back();
        stack.pop_back();
        on_stack[top] = false;
        component.push_back(top);
        if (top == node) break;
      }
      if (component.size() >= 2) components.push_back(std::move(component));
    }
  }
};

}  // namespace

Result<MergeReport> MergeIsACycles(EerSchema* schema) {
  if (schema == nullptr) return InvalidArgumentError("schema is null");
  MergeReport report;

  // Build the is-a digraph over entity names.
  std::vector<std::string> nodes;
  for (const EntityType& entity : schema->entities()) {
    nodes.push_back(entity.name);
  }
  std::map<std::string, std::vector<std::string>> edges;
  for (const IsALink& link : schema->isa_links()) {
    edges[link.subtype].push_back(link.supertype);
  }
  SccFinder finder{nodes, edges, {}, {}, {}, {}, 0, {}};
  finder.Run();
  if (finder.components.empty()) return report;

  // Representative per merged entity.
  std::map<std::string, std::string> representative;
  for (std::vector<std::string>& component : finder.components) {
    std::sort(component.begin(), component.end());
    const std::string& keep = component.front();
    for (size_t i = 1; i < component.size(); ++i) {
      representative[component[i]] = keep;
      report.absorbed[component[i]] = keep;
    }
    ++report.cycles_merged;
  }
  auto resolve = [&](const std::string& name) -> const std::string& {
    auto it = representative.find(name);
    return it == representative.end() ? name : it->second;
  };

  // Rebuild the schema with merged entities.
  EerSchema merged;
  for (const EntityType& entity : schema->entities()) {
    if (representative.contains(entity.name)) continue;  // absorbed
    EntityType copy = entity;
    // Union in the attributes of absorbed members.
    for (const auto& [absorbed_name, keep] : representative) {
      if (keep != entity.name) continue;
      DBRE_ASSIGN_OR_RETURN(const EntityType* absorbed,
                            schema->GetEntity(absorbed_name));
      copy.attributes = copy.attributes.Union(absorbed->attributes);
      copy.weak = copy.weak || absorbed->weak;
    }
    DBRE_RETURN_IF_ERROR(merged.AddEntity(std::move(copy)));
  }
  for (const RelationshipType& relationship : schema->relationships()) {
    RelationshipType copy = relationship;
    for (Role& role : copy.roles) role.entity = resolve(role.entity);
    DBRE_RETURN_IF_ERROR(merged.AddRelationship(std::move(copy)));
  }
  for (const IsALink& link : schema->isa_links()) {
    IsALink resolved{resolve(link.subtype), resolve(link.supertype)};
    if (resolved.subtype == resolved.supertype) continue;  // intra-cycle
    Status status = merged.AddIsA(resolved);
    if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
      return status;
    }
  }
  *schema = std::move(merged);
  return report;
}

Result<SpecializationReport> AddDiscriminatorSubtypes(
    EerSchema* schema, const std::vector<SpecializationHint>& hints) {
  if (schema == nullptr) return InvalidArgumentError("schema is null");
  SpecializationReport report;
  for (const SpecializationHint& hint : hints) {
    if (!schema->HasEntity(hint.entity)) continue;
    for (const std::string& constant : hint.constants) {
      std::string name = hint.entity + "_" + constant;
      if (schema->HasEntity(name)) continue;
      EntityType subtype;
      subtype.name = name;
      DBRE_RETURN_IF_ERROR(schema->AddEntity(std::move(subtype)));
      Status link = schema->AddIsA(IsALink{name, hint.entity});
      if (!link.ok() && link.code() != StatusCode::kAlreadyExists) {
        return link;
      }
      ++report.subtypes_added;
    }
  }
  return report;
}

}  // namespace dbre::eer
