#include "eer/model.h"

#include <algorithm>

namespace dbre::eer {

const char* CardinalityName(Cardinality cardinality) {
  switch (cardinality) {
    case Cardinality::kOne:
      return "1";
    case Cardinality::kMany:
      return "N";
  }
  return "?";
}

std::string EntityType::ToString() const {
  std::string out = weak ? "weak entity " : "entity ";
  out += name + " " + attributes.ToString();
  if (!identifier.empty()) out += " id=" + identifier.ToString();
  return out;
}

bool RelationshipType::IsManyToMany() const {
  size_t many = 0;
  for (const Role& role : roles) {
    if (role.cardinality == Cardinality::kMany) ++many;
  }
  return many >= 2;
}

std::string RelationshipType::ToString() const {
  std::string out = "relationship " + name + "(";
  for (size_t i = 0; i < roles.size(); ++i) {
    if (i > 0) out += ", ";
    out += roles[i].entity;
    out += ":";
    out += CardinalityName(roles[i].cardinality);
  }
  out += ")";
  if (!attributes.empty()) out += " " + attributes.ToString();
  return out;
}

Status EerSchema::AddEntity(EntityType entity) {
  if (entity.name.empty()) {
    return InvalidArgumentError("entity name must not be empty");
  }
  if (HasEntity(entity.name)) {
    return AlreadyExistsError("entity already exists: " + entity.name);
  }
  entities_.push_back(std::move(entity));
  return Status::Ok();
}

Status EerSchema::AddRelationship(RelationshipType relationship) {
  if (relationship.name.empty()) {
    return InvalidArgumentError("relationship name must not be empty");
  }
  if (relationship.roles.size() < 2) {
    return InvalidArgumentError("relationship " + relationship.name +
                                " needs at least two roles");
  }
  bool duplicate = std::any_of(
      relationships_.begin(), relationships_.end(),
      [&](const RelationshipType& r) { return r.name == relationship.name; });
  if (duplicate) {
    return AlreadyExistsError("relationship already exists: " +
                              relationship.name);
  }
  for (Role& role : relationship.roles) {
    if (role.role_name.empty()) role.role_name = role.entity;
  }
  relationships_.push_back(std::move(relationship));
  return Status::Ok();
}

Status EerSchema::AddIsA(IsALink link) {
  if (link.subtype == link.supertype) {
    return InvalidArgumentError("is-a link from " + link.subtype +
                                " to itself");
  }
  if (std::find(isa_links_.begin(), isa_links_.end(), link) !=
      isa_links_.end()) {
    return AlreadyExistsError("duplicate is-a link: " + link.ToString());
  }
  isa_links_.push_back(std::move(link));
  return Status::Ok();
}

bool EerSchema::HasEntity(std::string_view name) const {
  return std::any_of(entities_.begin(), entities_.end(),
                     [&](const EntityType& e) { return e.name == name; });
}

Result<const EntityType*> EerSchema::GetEntity(std::string_view name) const {
  for (const EntityType& entity : entities_) {
    if (entity.name == name) return &entity;
  }
  return NotFoundError("no entity " + std::string(name));
}

Result<EntityType*> EerSchema::GetMutableEntity(std::string_view name) {
  for (EntityType& entity : entities_) {
    if (entity.name == name) return &entity;
  }
  return NotFoundError("no entity " + std::string(name));
}

Status EerSchema::Validate() const {
  for (const RelationshipType& relationship : relationships_) {
    for (const Role& role : relationship.roles) {
      if (!HasEntity(role.entity)) {
        return FailedPreconditionError("relationship " + relationship.name +
                                       " references missing entity " +
                                       role.entity);
      }
    }
  }
  for (const IsALink& link : isa_links_) {
    if (!HasEntity(link.subtype) || !HasEntity(link.supertype)) {
      return FailedPreconditionError("is-a link references missing entity: " +
                                     link.ToString());
    }
  }
  for (const EntityType& entity : entities_) {
    if (!entity.weak) continue;
    bool participates = std::any_of(
        relationships_.begin(), relationships_.end(),
        [&](const RelationshipType& relationship) {
          return std::any_of(relationship.roles.begin(),
                             relationship.roles.end(), [&](const Role& role) {
                               return role.entity == entity.name;
                             });
        });
    if (!participates) {
      return FailedPreconditionError("weak entity " + entity.name +
                                     " participates in no relationship");
    }
  }
  return Status::Ok();
}

std::string EerSchema::ToText() const {
  std::string out;
  for (const EntityType& entity : entities_) {
    out += entity.ToString();
    out += '\n';
  }
  for (const RelationshipType& relationship : relationships_) {
    out += relationship.ToString();
    out += '\n';
  }
  for (const IsALink& link : isa_links_) {
    out += link.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace dbre::eer
