// Extended Entity-Relationship model — the target of the Translate step.
//
// The paper's target (§7) is "the ER model extended to the Specialization/
// Generalization of object-types": entity types (possibly weak),
// relationship types with named roles and cardinalities, and is-a links.
// Figure 1 of the paper is an instance of this model; DOT and text
// exporters render it.
#ifndef DBRE_EER_MODEL_H_
#define DBRE_EER_MODEL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/attribute_set.h"

namespace dbre::eer {

// Cardinality of one role of a relationship type.
enum class Cardinality {
  kOne,   // each instance participates at most once
  kMany,  // unbounded participation
};

const char* CardinalityName(Cardinality cardinality);

struct EntityType {
  std::string name;
  AttributeSet attributes;   // includes identifier attributes
  AttributeSet identifier;   // may be empty for weak entities identified
                             // through their owner
  bool weak = false;

  std::string ToString() const;
};

// One participant (role) of a relationship type.
struct Role {
  std::string entity;        // EntityType::name
  Cardinality cardinality = Cardinality::kMany;
  std::string role_name;     // optional label, defaults to entity name
};

struct RelationshipType {
  std::string name;
  std::vector<Role> roles;
  AttributeSet attributes;   // relationship's own attributes

  bool IsManyToMany() const;
  std::string ToString() const;
};

// Specialization: `subtype` is-a `supertype`.
struct IsALink {
  std::string subtype;
  std::string supertype;

  std::string ToString() const { return subtype + " is-a " + supertype; }
  friend bool operator==(const IsALink& a, const IsALink& b) {
    return a.subtype == b.subtype && a.supertype == b.supertype;
  }
};

class EerSchema {
 public:
  Status AddEntity(EntityType entity);
  Status AddRelationship(RelationshipType relationship);
  Status AddIsA(IsALink link);

  bool HasEntity(std::string_view name) const;
  Result<const EntityType*> GetEntity(std::string_view name) const;
  Result<EntityType*> GetMutableEntity(std::string_view name);

  const std::vector<EntityType>& entities() const { return entities_; }
  const std::vector<RelationshipType>& relationships() const {
    return relationships_;
  }
  const std::vector<IsALink>& isa_links() const { return isa_links_; }

  // Structural sanity: every relationship role and is-a endpoint names an
  // existing entity; weak entities participate in at least one
  // relationship.
  Status Validate() const;

  // Multi-line human-readable listing.
  std::string ToText() const;

 private:
  std::vector<EntityType> entities_;
  std::vector<RelationshipType> relationships_;
  std::vector<IsALink> isa_links_;
};

}  // namespace dbre::eer

#endif  // DBRE_EER_MODEL_H_
