#include "eer/dot_export.h"

#include <fstream>

namespace dbre::eer {
namespace {

// DOT identifiers with punctuation need quoting; escape embedded quotes.
std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

std::string EntityLabel(const EntityType& entity, bool show_attributes) {
  if (!show_attributes || entity.attributes.empty()) return entity.name;
  std::string label = entity.name + "\\n";
  bool first = true;
  for (const std::string& attribute : entity.attributes) {
    if (!first) label += ", ";
    first = false;
    label += attribute;
    if (entity.identifier.Contains(attribute)) label += "*";
  }
  return label;
}

}  // namespace

std::string ToDot(const EerSchema& schema, const DotOptions& options) {
  std::string out = "graph " + options.graph_name + " {\n";
  out += "  rankdir=TB;\n";
  out += "  node [fontsize=10];\n";

  for (const EntityType& entity : schema.entities()) {
    out += "  " + Quote(entity.name) + " [shape=box";
    if (entity.weak) out += ", peripheries=2";
    out += ", label=" + Quote(EntityLabel(entity, options.show_attributes));
    out += "];\n";
  }
  for (const RelationshipType& relationship : schema.relationships()) {
    std::string node = "rel_" + relationship.name;
    out += "  " + Quote(node) + " [shape=diamond, label=" +
           Quote(relationship.name) + "];\n";
    for (const Role& role : relationship.roles) {
      out += "  " + Quote(node) + " -- " + Quote(role.entity) +
             " [label=" + Quote(CardinalityName(role.cardinality)) + "];\n";
    }
  }
  for (const IsALink& link : schema.isa_links()) {
    // Double-pointed arrowhead, as in Figure 1.
    out += "  " + Quote(link.subtype) + " -- " + Quote(link.supertype) +
           " [dir=forward, arrowhead=\"veevee\", label=\"is-a\"];\n";
  }
  out += "}\n";
  return out;
}

Status WriteDotFile(const EerSchema& schema, const std::string& path,
                    const DotOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return IoError("cannot open " + path + " for writing");
  out << ToDot(schema, options);
  if (!out) return IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace dbre::eer
