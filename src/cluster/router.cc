#include "cluster/router.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace dbre::cluster {
namespace {

using service::Json;

struct RouterMetrics {
  obs::Counter* requests;
  obs::Counter* forwards;
  obs::Counter* forward_retries;
  obs::Counter* migrations;
  obs::Counter* failovers;
  obs::Counter* worker_failures;
  obs::Gauge* live_workers;
  obs::Histogram* migration_us;
};

const RouterMetrics& Metrics() {
  static const RouterMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return RouterMetrics{
        registry.GetCounter("dbre_router_requests_total", {},
                            "Requests received by the router"),
        registry.GetCounter("dbre_router_forwards_total", {},
                            "Requests forwarded to a worker"),
        registry.GetCounter("dbre_router_forward_retries_total", {},
                            "Forwards retried after a worker failure"),
        registry.GetCounter("dbre_router_migrations_total", {},
                            "Sessions moved by explicit migrate/drain"),
        registry.GetCounter("dbre_router_failovers_total", {},
                            "Sessions restored elsewhere after their "
                            "worker died"),
        registry.GetCounter("dbre_router_worker_failures_total", {},
                            "Workers marked dead by probes or forwards"),
        registry.GetGauge("dbre_router_live_workers", {},
                          "Workers currently considered alive"),
        registry.GetHistogram("dbre_router_migration_us", {},
                              "End-to-end detach+restore migration time"),
    };
  }();
  return metrics;
}

StatusCode StatusCodeFromName(const std::string& name) {
  if (name == "ok") return StatusCode::kOk;
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "already_exists") return StatusCode::kAlreadyExists;
  if (name == "failed_precondition") return StatusCode::kFailedPrecondition;
  if (name == "out_of_range") return StatusCode::kOutOfRange;
  if (name == "parse_error") return StatusCode::kParseError;
  if (name == "io_error") return StatusCode::kIoError;
  return StatusCode::kInternal;
}

// Sets `key` in an object, replacing an existing entry (Json::Set appends
// blindly; a duplicate key would be ambiguous on the wire).
void SetField(Json* object, const std::string& key, Json value) {
  for (auto& [existing, slot] : object->object()) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  object->Set(key, std::move(value));
}

// Responses serialize as {"id":…,"ok":true|false,…}; the "ok" token sits
// before any payload, so a prefix scan avoids re-parsing a large report
// just to learn whether the worker succeeded.
bool ResponseOk(const std::string& response) {
  size_t pos = response.find("\"ok\":");
  return pos != std::string::npos &&
         response.compare(pos + 5, 4, "true") == 0;
}

// Unwraps a worker's response line: the `result` object on ok, the
// structured error re-hydrated as a Status otherwise.
Result<Json> ParseWorkerResponse(const std::string& line) {
  DBRE_ASSIGN_OR_RETURN(Json response, Json::Parse(line));
  if (response.GetBool("ok")) {
    const Json* result = response.Find("result");
    return result != nullptr ? *result : Json::MakeObject();
  }
  const Json* error = response.Find("error");
  if (error == nullptr) {
    return InternalError("malformed worker response (no result or error)");
  }
  return Status(StatusCodeFromName(error->GetString("code")),
                error->GetString("message"));
}

}  // namespace

// Single-flight latch: at most one failover/migration per session at a
// time; concurrent requests for the same session queue here and re-check
// the routing table once the first finishes.
class Router::MigrationGuard {
 public:
  MigrationGuard(Router* router, std::string session)
      : router_(router), session_(std::move(session)) {
    std::unique_lock<std::mutex> lock(router_->migrate_mutex_);
    router_->migrate_cv_.wait(lock, [this] {
      return router_->migrating_.insert(session_).second;
    });
  }

  ~MigrationGuard() {
    {
      std::lock_guard<std::mutex> lock(router_->migrate_mutex_);
      router_->migrating_.erase(session_);
    }
    router_->migrate_cv_.notify_all();
  }

 private:
  Router* router_;
  std::string session_;
};

Router::Router(std::vector<RouterWorkerConfig> workers, RouterOptions options)
    : options_(options),
      loop_(
          [this](uint64_t conn_id, const std::string& line) {
            return Handle(conn_id, line);
          },
          options.loop),
      ring_(options.vnodes_per_node) {
  for (RouterWorkerConfig& config : workers) {
    auto worker = std::make_unique<Worker>();
    worker->config = std::move(config);
    ring_.AddNode(worker->config.id);
    workers_.push_back(std::move(worker));
  }
  loop_.set_close_handler(
      [this](uint64_t conn_id) { DropConnection(conn_id); });
}

Router::~Router() { Stop(); }

Status Router::Start(uint16_t port) {
  if (workers_.empty()) {
    return InvalidArgumentError("router needs at least one worker");
  }
  DBRE_RETURN_IF_ERROR(loop_.Start(port));
  Metrics().live_workers->Add(static_cast<int64_t>(workers_.size()));
  if (options_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  return Status::Ok();
}

void Router::Stop() {
  if (stopped_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  loop_.Stop();
  {
    std::lock_guard<std::mutex> lock(upstream_mutex_);
    upstreams_.clear();
  }
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->control_mutex);
    worker->control.reset();
  }
}

std::string Router::Lookup(const std::string& session) {
  std::lock_guard<std::mutex> lock(table_mutex_);
  auto it = table_.find(session);
  if (it != table_.end()) return it->second;
  return ring_.OwnerOf(session);
}

Router::Worker* Router::FindWorker(const std::string& id) {
  for (const auto& worker : workers_) {
    if (worker->config.id == id) return worker.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Control channel.

Result<Json> Router::ControlRpc(Worker* worker, Json request) {
  SetField(&request, "id",
           Json::Int(control_id_.fetch_add(1, std::memory_order_relaxed)));
  const std::string line = request.Dump();
  std::lock_guard<std::mutex> lock(worker->control_mutex);
  Status last = IoError("control channel unavailable");
  // Two passes: the first may hold a channel from before a worker restart
  // (write succeeds into a dead socket, the read fails); the second
  // reconnects fresh. Connect failures end it — TcpConnectWithRetry
  // already spent the backoff budget.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (worker->control == nullptr) {
      Result<std::unique_ptr<service::SocketChannel>> connected =
          service::TcpConnectWithRetry(worker->config.host,
                                       worker->config.port,
                                       options_.connect_deadline_ms,
                                       options_.control_recv_timeout_ms);
      if (!connected.ok()) return connected.status();
      worker->control = std::move(connected).value();
    }
    Status sent = worker->control->WriteLine(line);
    if (!sent.ok()) {
      worker->control.reset();
      last = sent;
      continue;
    }
    Result<std::string> response = worker->control->ReadLine();
    if (!response.ok()) {
      worker->control.reset();
      last = response.status().code() == StatusCode::kNotFound
                 ? IoError("worker " + worker->config.id +
                           " closed its control channel")
                 : response.status();
      continue;
    }
    return ParseWorkerResponse(*response);
  }
  return last;
}

void Router::WorkerFailed(Worker* worker) {
  if (!worker->alive.load(std::memory_order_acquire)) return;
  // One probe separates a flaky connection from a dead process: the
  // control RPC reconnects from scratch, so it only fails when the worker
  // really is unreachable.
  Json probe = Json::MakeObject();
  probe.Set("cmd", Json::Str("hello"));
  if (ControlRpc(worker, std::move(probe)).ok()) return;
  MarkDead(worker);
}

void Router::MarkDead(Worker* worker) {
  if (worker->alive.exchange(false)) {
    {
      std::lock_guard<std::mutex> lock(table_mutex_);
      ring_.RemoveNode(worker->config.id);
    }
    Metrics().worker_failures->Add(1);
    Metrics().live_workers->Add(-1);
  }
}

void Router::Revive(Worker* worker) {
  if (!worker->alive.exchange(true)) {
    if (worker->in_ring.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(table_mutex_);
      ring_.AddNode(worker->config.id);
    }
    Metrics().live_workers->Add(1);
  }
}

void Router::HealthLoop() {
  std::unique_lock<std::mutex> lock(health_mutex_);
  while (!health_stop_) {
    health_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.health_interval_ms));
    if (health_stop_) return;
    lock.unlock();
    for (const auto& worker : workers_) {
      Json probe = Json::MakeObject();
      probe.Set("cmd", Json::Str("hello"));
      probe.Set("protocol", Json::Int(service::kProtocolVersion));
      bool up = ControlRpc(worker.get(), std::move(probe)).ok();
      if (up) {
        Revive(worker.get());
      } else {
        MarkDead(worker.get());
      }
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Routing and forwarding.

Result<Router::Worker*> Router::RouteSession(const std::string& session) {
  std::string assigned;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    auto it = table_.find(session);
    if (it != table_.end()) assigned = it->second;
  }
  if (!assigned.empty()) {
    Worker* worker = FindWorker(assigned);
    if (worker != nullptr && worker->alive.load(std::memory_order_acquire)) {
      return worker;
    }
    return Failover(session);
  }
  std::string owner;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    owner = ring_.OwnerOf(session);
  }
  if (owner.empty()) {
    return FailedPreconditionError(
        "no live workers in the ring; cannot route session '" + session +
        "'");
  }
  Worker* worker = FindWorker(owner);
  if (worker == nullptr) {
    return InternalError("ring names unknown worker '" + owner + "'");
  }
  return worker;
}

Result<Router::Worker*> Router::Failover(const std::string& session) {
  MigrationGuard guard(this, session);
  // Another request may have completed this failover while we queued.
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    auto it = table_.find(session);
    if (it != table_.end()) {
      Worker* worker = FindWorker(it->second);
      if (worker != nullptr &&
          worker->alive.load(std::memory_order_acquire)) {
        return worker;
      }
    }
  }
  std::string target_id;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    target_id = ring_.OwnerOf(session);
  }
  if (target_id.empty()) {
    return FailedPreconditionError("session '" + session +
                                   "' lost its worker and no live worker "
                                   "remains to restore it on");
  }
  Worker* target = FindWorker(target_id);
  if (target == nullptr) {
    return InternalError("ring names unknown worker '" + target_id + "'");
  }
  Json restore = Json::MakeObject();
  restore.Set("cmd", Json::Str("restore"));
  restore.Set("session", Json::Str(session));
  Result<Json> restored = ControlRpc(target, std::move(restore));
  // AlreadyExists means a previous (partial) failover landed it there —
  // exactly the state we want.
  if (!restored.ok() &&
      restored.status().code() != StatusCode::kAlreadyExists) {
    return Status(restored.status().code(),
                  "failover of session '" + session + "' to worker '" +
                      target_id + "' failed: " +
                      restored.status().message());
  }
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    table_[session] = target_id;
  }
  Metrics().failovers->Add(1);
  return target;
}

Result<std::shared_ptr<service::SocketChannel>> Router::UpstreamFor(
    uint64_t conn_id, Worker* worker) {
  {
    std::lock_guard<std::mutex> lock(upstream_mutex_);
    auto it = upstreams_.find({conn_id, worker->config.id});
    if (it != upstreams_.end()) return it->second;
  }
  Result<std::unique_ptr<service::SocketChannel>> connected =
      service::TcpConnectWithRetry(worker->config.host, worker->config.port,
                                   options_.connect_deadline_ms,
                                   options_.upstream_recv_timeout_ms);
  if (!connected.ok()) return connected.status();
  std::shared_ptr<service::SocketChannel> channel =
      std::move(connected).value();
  std::lock_guard<std::mutex> lock(upstream_mutex_);
  upstreams_[{conn_id, worker->config.id}] = channel;
  return channel;
}

void Router::DropUpstream(uint64_t conn_id, Worker* worker) {
  std::lock_guard<std::mutex> lock(upstream_mutex_);
  upstreams_.erase({conn_id, worker->config.id});
}

void Router::DropConnection(uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(upstream_mutex_);
  auto it = upstreams_.lower_bound({conn_id, std::string()});
  while (it != upstreams_.end() && it->first.first == conn_id) {
    it = upstreams_.erase(it);
  }
}

Result<std::string> Router::Forward(uint64_t conn_id,
                                    const std::string& session,
                                    const std::string& line) {
  Metrics().forwards->Add(1);
  Status last = IoError("no worker reachable for session '" + session + "'");
  // Two attempts: a failure inside the first (dead worker) triggers
  // failover in RouteSession, and the retry lands on the session's new
  // home. More than one retry only delays the error the client must see.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0) Metrics().forward_retries->Add(1);
    DBRE_ASSIGN_OR_RETURN(Worker * worker, RouteSession(session));
    Result<std::shared_ptr<service::SocketChannel>> channel =
        UpstreamFor(conn_id, worker);
    if (!channel.ok()) {
      last = channel.status();
      WorkerFailed(worker);
      continue;
    }
    Status sent = (*channel)->WriteLine(line);
    if (!sent.ok()) {
      DropUpstream(conn_id, worker);
      last = sent;
      WorkerFailed(worker);
      continue;
    }
    Result<std::string> response = (*channel)->ReadLine();
    if (!response.ok()) {
      DropUpstream(conn_id, worker);
      last = response.status().code() == StatusCode::kNotFound
                 ? IoError("worker " + worker->config.id +
                           " closed the connection mid-request")
                 : response.status();
      WorkerFailed(worker);
      continue;
    }
    if (ResponseOk(*response)) {
      // The table records where the session was actually served — it
      // self-heals after failovers and ring changes.
      std::lock_guard<std::mutex> lock(table_mutex_);
      table_[session] = worker->config.id;
    }
    return std::move(response).value();
  }
  return last;
}

// ---------------------------------------------------------------------------
// Protocol surface.

std::string Router::Handle(uint64_t conn_id, const std::string& line) {
  Result<service::Request> request = service::ParseRequest(line, limits_);
  if (!request.ok()) return service::ErrorResponse(-1, request.status());
  Metrics().requests->Add(1);
  std::string raw;
  Result<Json> result = Dispatch(conn_id, *request, line, &raw);
  if (!result.ok()) {
    return service::ErrorResponse(request->id, result.status());
  }
  if (!raw.empty()) return raw;  // forwarded verbatim, ids preserved
  return service::OkResponse(request->id, std::move(result).value());
}

Result<Json> Router::Dispatch(uint64_t conn_id,
                              const service::Request& request,
                              const std::string& line,
                              std::string* raw_response) {
  const std::string& cmd = request.cmd;
  if (cmd == "hello") return HandleHello(request);
  if (cmd == "cluster") return HandleCluster();
  if (cmd == "route") return HandleRoute(request);
  if (cmd == "migrate") return HandleMigrate(request);
  if (cmd == "drain") return HandleDrain(request);
  if (cmd == "stats") return HandleStats();
  if (cmd == "metrics") return HandleMetrics();
  if (cmd == "sessions") return AggregateSessions();
  if (cmd == "questions" && request.params.Find("session") == nullptr) {
    return AggregateQuestions();
  }
  if (cmd == "failpoint") {
    return FailedPreconditionError(
        "the router injects no faults; send failpoint to a worker "
        "directly");
  }
  if (cmd == "shutdown") {
    // Stops the router only: workers are independent processes with their
    // own lifecycle (and other routers may be using them).
    loop_.RequestStop();
    Json result = Json::MakeObject();
    result.Set("bye", Json::Bool(true));
    return result;
  }
  if (cmd == "create") {
    DBRE_ASSIGN_OR_RETURN(*raw_response, HandleCreate(conn_id, request));
    return Json::Null();
  }
  std::string session = request.params.GetString("session");
  if (session.empty()) {
    return InvalidArgumentError("command '" + cmd +
                                "' needs a \"session\" field to route by");
  }
  // Everything session-scoped forwards verbatim — including commands this
  // router predates, so workers can grow the protocol without a router
  // redeploy.
  DBRE_ASSIGN_OR_RETURN(std::string raw, Forward(conn_id, session, line));
  if ((cmd == "close" || cmd == "detach") && ResponseOk(raw)) {
    std::lock_guard<std::mutex> lock(table_mutex_);
    table_.erase(session);
  }
  *raw_response = std::move(raw);
  return Json::Null();
}

Result<Json> Router::HandleHello(const service::Request& request) {
  const Json* protocol = request.params.Find("protocol");
  if (protocol != nullptr) {
    if (!protocol->IsInt()) {
      return InvalidArgumentError("hello \"protocol\" must be an integer");
    }
    if (protocol->AsInt() != service::kProtocolVersion) {
      return FailedPreconditionError(
          "protocol version mismatch: client speaks " +
          std::to_string(protocol->AsInt()) + ", this router speaks " +
          std::to_string(service::kProtocolVersion));
    }
  }
  size_t alive = 0;
  for (const auto& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) ++alive;
  }
  Json result = Json::MakeObject();
  result.Set("server", Json::Str("dbre-router"));
  result.Set("protocol", Json::Int(service::kProtocolVersion));
  result.Set("workers", Json::Int(static_cast<int64_t>(alive)));
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    result.Set("sessions", Json::Int(static_cast<int64_t>(table_.size())));
  }
  // A client announcing its session gets the route pre-resolved (and, if
  // that session's worker died, failed over) in the same round trip.
  std::string session = request.params.GetString("session");
  if (!session.empty()) {
    result.Set("session", Json::Str(session));
    Result<Worker*> routed = RouteSession(session);
    if (routed.ok()) {
      result.Set("worker", Json::Str((*routed)->config.id));
    }
  }
  return result;
}

Result<Json> Router::HandleRoute(const service::Request& request) {
  std::string session = request.params.GetString("session");
  if (session.empty()) {
    return InvalidArgumentError("route needs a \"session\" field");
  }
  DBRE_ASSIGN_OR_RETURN(Worker * worker, RouteSession(session));
  Json result = Json::MakeObject();
  result.Set("session", Json::Str(session));
  result.Set("worker", Json::Str(worker->config.id));
  return result;
}

Result<Json> Router::HandleCluster() {
  Json list = Json::MakeArray();
  std::unordered_map<std::string, int64_t> per_worker;
  size_t table_size = 0;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    table_size = table_.size();
    for (const auto& [session, worker] : table_) ++per_worker[worker];
  }
  for (const auto& worker : workers_) {
    Json entry = Json::MakeObject();
    entry.Set("id", Json::Str(worker->config.id));
    entry.Set("host", Json::Str(worker->config.host));
    entry.Set("port", Json::Int(worker->config.port));
    entry.Set("alive",
              Json::Bool(worker->alive.load(std::memory_order_acquire)));
    entry.Set("in_ring",
              Json::Bool(worker->in_ring.load(std::memory_order_acquire)));
    auto it = per_worker.find(worker->config.id);
    entry.Set("sessions",
              Json::Int(it != per_worker.end() ? it->second : 0));
    list.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result.Set("workers", std::move(list));
  result.Set("sessions", Json::Int(static_cast<int64_t>(table_size)));
  return result;
}

Result<Json> Router::HandleMigrate(const service::Request& request) {
  std::string session = request.params.GetString("session");
  if (session.empty()) {
    return InvalidArgumentError("migrate needs a \"session\" field");
  }
  return MigrateSession(session, request.params.GetString("to"));
}

Result<Json> Router::MigrateSession(const std::string& session,
                                    const std::string& to) {
  MigrationGuard guard(this, session);
  std::string source_id;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    auto it = table_.find(session);
    if (it != table_.end()) source_id = it->second;
  }
  Worker* source = source_id.empty() ? nullptr : FindWorker(source_id);
  if (source != nullptr && !source->alive.load(std::memory_order_acquire)) {
    source = nullptr;  // dead source: restore-only, the journal is sealed
  }
  std::string target_id = to;
  if (target_id.empty()) {
    {
      std::lock_guard<std::mutex> lock(table_mutex_);
      target_id = ring_.OwnerOf(session);
    }
    if (target_id.empty() || target_id == source_id) {
      // Hashing put it where it already is (or the ring is empty): pick
      // the first other live worker so `migrate` always moves.
      target_id.clear();
      for (const auto& worker : workers_) {
        if (worker->config.id != source_id &&
            worker->alive.load(std::memory_order_acquire)) {
          target_id = worker->config.id;
          break;
        }
      }
    }
  }
  if (target_id.empty()) {
    return FailedPreconditionError(
        "no live worker to migrate session '" + session + "' to");
  }
  if (target_id == source_id) {
    return AlreadyExistsError("session '" + session +
                              "' is already on worker '" + target_id + "'");
  }
  Worker* target = FindWorker(target_id);
  if (target == nullptr) {
    return NotFoundError("unknown worker '" + target_id + "'");
  }
  if (!target->alive.load(std::memory_order_acquire)) {
    return FailedPreconditionError("worker '" + target_id + "' is down");
  }

  int64_t start_us = obs::MonotonicUs();
  if (source != nullptr) {
    Json detach = Json::MakeObject();
    detach.Set("cmd", Json::Str("detach"));
    detach.Set("session", Json::Str(session));
    Result<Json> detached = ControlRpc(source, std::move(detach));
    if (!detached.ok() &&
        detached.status().code() != StatusCode::kNotFound) {
      return Status(detached.status().code(),
                    "detach of session '" + session + "' from worker '" +
                        source_id + "' failed: " +
                        detached.status().message());
    }
  }
  Json restore = Json::MakeObject();
  restore.Set("cmd", Json::Str("restore"));
  restore.Set("session", Json::Str(session));
  Result<Json> restored = ControlRpc(target, std::move(restore));
  if (!restored.ok() &&
      restored.status().code() != StatusCode::kAlreadyExists) {
    if (source != nullptr) {
      // Undo: put the session back where it came from so a failed
      // migration strands nothing. Best effort — the journal stays on
      // disk either way.
      Json undo = Json::MakeObject();
      undo.Set("cmd", Json::Str("restore"));
      undo.Set("session", Json::Str(session));
      (void)ControlRpc(source, std::move(undo));
    }
    return Status(restored.status().code(),
                  "restore of session '" + session + "' on worker '" +
                      target_id + "' failed: " +
                      restored.status().message());
  }
  int64_t elapsed_us = obs::MonotonicUs() - start_us;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    table_[session] = target_id;
  }
  Metrics().migrations->Add(1);
  Metrics().migration_us->Observe(static_cast<uint64_t>(elapsed_us));
  Json result = Json::MakeObject();
  result.Set("session", Json::Str(session));
  if (!source_id.empty()) result.Set("from", Json::Str(source_id));
  result.Set("to", Json::Str(target_id));
  result.Set("duration_us", Json::Int(elapsed_us));
  return result;
}

Result<Json> Router::HandleDrain(const service::Request& request) {
  std::string worker_id = request.params.GetString("worker");
  if (worker_id.empty()) {
    return InvalidArgumentError("drain needs a \"worker\" field");
  }
  Worker* worker = FindWorker(worker_id);
  if (worker == nullptr) {
    return NotFoundError("unknown worker '" + worker_id + "'");
  }
  // Out of the ring first so nothing new lands there while we move its
  // sessions; in_ring=false keeps the health prober from re-adding it.
  worker->in_ring.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    ring_.RemoveNode(worker_id);
  }
  // The worker's own session list is the source of truth (the table only
  // knows sessions that passed through this router).
  Json list_request = Json::MakeObject();
  list_request.Set("cmd", Json::Str("sessions"));
  DBRE_ASSIGN_OR_RETURN(Json listed, ControlRpc(worker, list_request));
  Json migrated = Json::MakeArray();
  Json errors = Json::MakeArray();
  const Json* sessions = listed.Find("sessions");
  if (sessions != nullptr && sessions->IsArray()) {
    for (const Json& entry : sessions->array()) {
      std::string session = entry.GetString("session");
      if (session.empty()) continue;
      {
        // Drain moves sessions the table has never seen; seed it so
        // MigrateSession treats this worker as the source.
        std::lock_guard<std::mutex> lock(table_mutex_);
        table_.emplace(session, worker_id);
      }
      Result<Json> moved = MigrateSession(session, "");
      if (moved.ok()) {
        migrated.Append(Json::Str(session));
      } else {
        Json failure = Json::MakeObject();
        failure.Set("session", Json::Str(session));
        failure.Set("error", Json::Str(moved.status().ToString()));
        errors.Append(std::move(failure));
      }
    }
  }
  Json result = Json::MakeObject();
  result.Set("drained", Json::Str(worker_id));
  result.Set("migrated", std::move(migrated));
  result.Set("errors", std::move(errors));
  return result;
}

Result<Json> Router::HandleStats() {
  size_t alive = 0;
  for (const auto& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) ++alive;
  }
  Json router = Json::MakeObject();
  router.Set("workers", Json::Int(static_cast<int64_t>(workers_.size())));
  router.Set("workers_alive", Json::Int(static_cast<int64_t>(alive)));
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    router.Set("sessions", Json::Int(static_cast<int64_t>(table_.size())));
  }
  {
    std::lock_guard<std::mutex> lock(migrate_mutex_);
    router.Set("migrating",
               Json::Int(static_cast<int64_t>(migrating_.size())));
  }
  EventLoopStats loop = loop_.stats();
  Json transport = Json::MakeObject();
  transport.Set("accepted", Json::Int(static_cast<int64_t>(loop.accepted)));
  transport.Set("requests", Json::Int(static_cast<int64_t>(loop.requests)));
  transport.Set("responses",
                Json::Int(static_cast<int64_t>(loop.responses)));
  transport.Set("backpressure_pauses",
                Json::Int(static_cast<int64_t>(loop.backpressure_pauses)));
  transport.Set("connections",
                Json::Int(static_cast<int64_t>(loop.connections)));
  transport.Set("handler_threads",
                Json::Int(static_cast<int64_t>(loop.handler_threads)));
  Json result = Json::MakeObject();
  result.Set("router", std::move(router));
  result.Set("loop", std::move(transport));
  return result;
}

Result<Json> Router::HandleMetrics() {
  Json result = Json::MakeObject();
  result.Set("metrics",
             Json::Str(obs::Registry::Default().RenderPrometheus()));
  return result;
}

Result<Json> Router::AggregateSessions() {
  Json list = Json::MakeArray();
  for (const auto& worker : workers_) {
    if (!worker->alive.load(std::memory_order_acquire)) continue;
    Json request = Json::MakeObject();
    request.Set("cmd", Json::Str("sessions"));
    Result<Json> result = ControlRpc(worker.get(), std::move(request));
    if (!result.ok()) continue;  // a dying worker drops out of the union
    const Json* sessions = result->Find("sessions");
    if (sessions == nullptr || !sessions->IsArray()) continue;
    for (const Json& entry : sessions->array()) {
      Json tagged = entry;
      tagged.Set("worker", Json::Str(worker->config.id));
      list.Append(std::move(tagged));
    }
  }
  Json result = Json::MakeObject();
  result.Set("sessions", std::move(list));
  return result;
}

Result<Json> Router::AggregateQuestions() {
  Json list = Json::MakeArray();
  for (const auto& worker : workers_) {
    if (!worker->alive.load(std::memory_order_acquire)) continue;
    Json request = Json::MakeObject();
    request.Set("cmd", Json::Str("questions"));
    Result<Json> result = ControlRpc(worker.get(), std::move(request));
    if (!result.ok()) continue;
    const Json* questions = result->Find("questions");
    if (questions == nullptr || !questions->IsArray()) continue;
    for (const Json& entry : questions->array()) {
      Json tagged = entry;
      tagged.Set("worker", Json::Str(worker->config.id));
      list.Append(std::move(tagged));
    }
  }
  Json result = Json::MakeObject();
  result.Set("questions", std::move(list));
  return result;
}

Result<std::string> Router::HandleCreate(uint64_t conn_id,
                                         const service::Request& request) {
  std::string name = request.params.GetString("name");
  if (name.empty()) {
    std::lock_guard<std::mutex> lock(table_mutex_);
    name = "r" + std::to_string(next_name_++);
  }
  // Pin the name so placement is the ring's decision; the worker may still
  // pick a different id if the name is taken there — the response's actual
  // id is what the table records.
  Json rewritten = request.params;
  SetField(&rewritten, "name", Json::Str(name));
  const std::string line = rewritten.Dump();
  Status last = FailedPreconditionError("no live workers in the ring");
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string owner;
    {
      std::lock_guard<std::mutex> lock(table_mutex_);
      owner = ring_.OwnerOf(name);
    }
    if (owner.empty()) break;
    Worker* worker = FindWorker(owner);
    if (worker == nullptr) {
      return InternalError("ring names unknown worker '" + owner + "'");
    }
    Result<std::shared_ptr<service::SocketChannel>> channel =
        UpstreamFor(conn_id, worker);
    if (!channel.ok()) {
      last = channel.status();
      WorkerFailed(worker);
      continue;
    }
    Status sent = (*channel)->WriteLine(line);
    if (!sent.ok()) {
      DropUpstream(conn_id, worker);
      last = sent;
      WorkerFailed(worker);
      continue;
    }
    Result<std::string> response = (*channel)->ReadLine();
    if (!response.ok()) {
      DropUpstream(conn_id, worker);
      last = IoError("worker " + worker->config.id +
                     " failed during create: " +
                     response.status().message());
      WorkerFailed(worker);
      continue;
    }
    if (ResponseOk(*response)) {
      Result<Json> parsed = ParseWorkerResponse(*response);
      std::string actual =
          parsed.ok() ? parsed->GetString("session") : name;
      if (actual.empty()) actual = name;
      std::lock_guard<std::mutex> lock(table_mutex_);
      table_[actual] = worker->config.id;
    }
    return std::move(response).value();
  }
  return last;
}

}  // namespace dbre::cluster
