#include "cluster/service_transport.h"

namespace dbre::cluster {

EventLoopTransport::EventLoopTransport(service::Server* server,
                                       EventLoopOptions options)
    : server_(server),
      loop_(
          [this](uint64_t, const std::string& line) {
            std::string response = server_->HandleLine(line);
            // `shutdown` flips the server flag inside HandleLine; surface
            // it to the loop after the response is produced so the bye
            // line still reaches the client during graceful Stop.
            if (server_->shutdown_requested()) loop_.RequestStop();
            return response;
          },
          options) {}

}  // namespace dbre::cluster
