// Consistent-hash ring mapping session ids onto worker nodes.
//
// Each node contributes `vnodes_per_node` virtual points (FNV-1a of
// "node#i", avalanched by RingMix) on a 64-bit ring; a key is owned by the
// first virtual point clockwise from its own mixed hash. Virtual points smooth the load (with one
// point per node, removing a node would dump its whole arc on a single
// neighbor), and consistent hashing bounds disruption: removing a node
// moves only the sessions it owned, adding one steals roughly 1/N of each
// existing node's keys — everything else keeps its placement, which is
// what makes rebalancing a migration of few sessions instead of all.
//
// The hash is FNV-1a, written out explicitly (not std::hash) so placement
// is identical across processes, platforms and standard libraries: a
// restarted router re-derives the same default placements.
//
// Not thread-safe; the router guards its ring with the routing-table lock.
#ifndef DBRE_CLUSTER_HASH_RING_H_
#define DBRE_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dbre::cluster {

// 64-bit FNV-1a; exposed so tests can pin the placement function.
uint64_t Fnv1a64(const std::string& data);

// Avalanche finalizer applied on top of FNV-1a before a value is placed on
// the ring. FNV's trailing xor-multiply only diffuses the last byte into
// the low ~47 bits (the prime is ~2^40), so ids sharing a prefix and
// differing in trailing digits — exactly what "node#i" vnode labels and
// "s<N>" session names look like — get nearly identical high bits and
// cluster on a 64-bit ring. The splitmix64 finalizer spreads every input
// bit across the word; it is a fixed bijection, so placement stays
// deterministic across processes.
uint64_t RingMix(uint64_t h);

class HashRing {
 public:
  explicit HashRing(size_t vnodes_per_node = 64)
      : vnodes_per_node_(vnodes_per_node > 0 ? vnodes_per_node : 1) {}

  // Adding an existing node or removing an absent one is a no-op.
  void AddNode(const std::string& node);
  void RemoveNode(const std::string& node);

  bool HasNode(const std::string& node) const;
  size_t node_count() const { return nodes_.size(); }
  std::vector<std::string> Nodes() const;

  // The node owning `key`; "" when the ring is empty.
  std::string OwnerOf(const std::string& key) const;

 private:
  size_t vnodes_per_node_;
  std::map<std::string, std::vector<uint64_t>> nodes_;  // node → its points
  // point hash → node. On collision the lexicographically smaller node
  // wins deterministically (see AddNode).
  std::map<uint64_t, std::string> ring_;
};

}  // namespace dbre::cluster

#endif  // DBRE_CLUSTER_HASH_RING_H_
