// dbre_router: a sharding front process for a fleet of dbre_serve workers.
//
// Clients speak the ordinary dbred NDJSON protocol to the router; the
// router owns *placement*, the workers own sessions. Placement is a
// consistent-hash ring over worker ids (hash_ring.h) for the default, plus
// an authoritative routing table session → worker that records where each
// session actually lives — the table wins, the ring only decides where a
// session goes when nobody knows it yet. Session-scoped commands forward
// verbatim (the response bytes come straight from the worker, so a report
// through the router is byte-identical to one from the worker); `create`
// is rewritten only to pin the session name the ring hashed.
//
// Migration rides the shared --data-dir: `detach` on the source worker
// seals the session's journal (fsync, ownership released, no close
// tombstone), `restore` on the target replays it — deterministic replay
// makes the resumed session byte-identical. The router drives that pair
// for explicit `migrate`/`drain`, and as *failover* when a worker dies:
// a dead worker's sessions restore on their new ring owner from the
// journal the dead process already made durable.
//
// Each client connection gets its own upstream socket per worker (an
// upstream shared across clients would serialize everyone behind one
// blocking `wait`); a separate per-worker control channel carries the
// router's own RPCs — health pings, detach/restore, aggregation.
//
// Router-added commands: `route` (where does this session live),
// `cluster` (fleet snapshot), `migrate`, `drain`. `shutdown` stops the
// router only — workers are independent processes with their own
// lifecycle. `failpoint` is refused: inject faults on a worker directly.
#ifndef DBRE_CLUSTER_ROUTER_H_
#define DBRE_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/event_loop.h"
#include "cluster/hash_ring.h"
#include "common/status.h"
#include "service/protocol.h"
#include "service/transport.h"

namespace dbre::cluster {

struct RouterWorkerConfig {
  std::string id;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  size_t vnodes_per_node = 64;
  // Period of the health prober; 0 disables it (failures are then only
  // detected lazily, when a forward hits the dead socket).
  int64_t health_interval_ms = 500;
  // Budget for (re)connecting to a worker, with capped backoff — covers a
  // worker that is restarting.
  int64_t connect_deadline_ms = 2'000;
  // SO_RCVTIMEO on control channels: a hung worker must not wedge the
  // health prober or a migration forever.
  int64_t control_recv_timeout_ms = 10'000;
  // SO_RCVTIMEO on forwarding channels. 0 (default) = none: a forwarded
  // `wait` legitimately blocks up to the worker's max_wait_ms, and a
  // SIGKILLed worker's sockets error out on their own.
  int64_t upstream_recv_timeout_ms = 0;
  EventLoopOptions loop;
};

class Router {
 public:
  Router(std::vector<RouterWorkerConfig> workers, RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start(uint16_t port);
  uint16_t port() const { return loop_.port(); }

  // Blocks until a client issues `shutdown` (to the router).
  void WaitUntilShutdown() { loop_.WaitUntilStopRequested(); }
  void Stop();

  // Where `session` would be served right now (test/introspection hook;
  // does not trigger failover). "" when unknown to table and ring empty.
  std::string Lookup(const std::string& session);

 private:
  struct Worker {
    RouterWorkerConfig config;
    std::atomic<bool> alive{true};
    // Drained workers leave the ring for good; dead ones return on revive.
    std::atomic<bool> in_ring{true};
    std::mutex control_mutex;  // serializes control-channel RPCs
    std::unique_ptr<service::SocketChannel> control;
  };

  std::string Handle(uint64_t conn_id, const std::string& line);
  Result<service::Json> Dispatch(uint64_t conn_id,
                                 const service::Request& request,
                                 const std::string& line,
                                 std::string* raw_response);

  // Local commands.
  Result<service::Json> HandleHello(const service::Request& request);
  Result<service::Json> HandleRoute(const service::Request& request);
  Result<service::Json> HandleCluster();
  Result<service::Json> HandleMigrate(const service::Request& request);
  Result<service::Json> HandleDrain(const service::Request& request);
  Result<service::Json> HandleStats();
  Result<service::Json> HandleMetrics();
  Result<service::Json> AggregateSessions();
  Result<service::Json> AggregateQuestions();
  // Returns the worker's raw response line (ids preserved verbatim).
  Result<std::string> HandleCreate(uint64_t conn_id,
                                   const service::Request& request);

  // Forwarding path.
  Result<std::string> Forward(uint64_t conn_id, const std::string& session,
                              const std::string& line);
  Result<Worker*> RouteSession(const std::string& session);
  Result<Worker*> Failover(const std::string& session);
  Result<service::Json> MigrateSession(const std::string& session,
                                       const std::string& to);

  Worker* FindWorker(const std::string& id);
  Result<std::shared_ptr<service::SocketChannel>> UpstreamFor(
      uint64_t conn_id, Worker* worker);
  void DropUpstream(uint64_t conn_id, Worker* worker);
  void DropConnection(uint64_t conn_id);

  // One request/response on the worker's control channel (reconnects once
  // on a transport error). Returns the response's `result` object, or the
  // worker's structured error as a Status.
  Result<service::Json> ControlRpc(Worker* worker, service::Json request);
  // A transport-level failure talking to `worker`: probe once; if the
  // probe also fails, mark it dead and pull it from the ring.
  void WorkerFailed(Worker* worker);
  void MarkDead(Worker* worker);
  void Revive(Worker* worker);
  void HealthLoop();

  // Single-flight latch per session for failover/migration.
  class MigrationGuard;

  RouterOptions options_;
  service::ProtocolLimits limits_;
  std::vector<std::unique_ptr<Worker>> workers_;
  EventLoopServer loop_;
  std::atomic<int64_t> control_id_{1};

  std::mutex table_mutex_;  // guards ring_ and table_
  HashRing ring_;
  std::unordered_map<std::string, std::string> table_;  // session → worker
  uint64_t next_name_ = 1;  // for router-generated session names

  std::mutex upstream_mutex_;
  std::map<std::pair<uint64_t, std::string>,
           std::shared_ptr<service::SocketChannel>>
      upstreams_;

  std::mutex migrate_mutex_;
  std::condition_variable migrate_cv_;
  std::set<std::string> migrating_;

  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;
  std::thread health_thread_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dbre::cluster

#endif  // DBRE_CLUSTER_ROUTER_H_
