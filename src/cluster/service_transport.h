// EventLoopServer ↔ service::Server glue.
//
// Serves the dbred NDJSON protocol over the epoll event loop behind the
// same lifecycle surface as service::TcpServer (Start / port /
// WaitUntilShutdown / Stop), so dbre_serve picks the transport with one
// flag and everything above the socket — Server, SessionManager, store —
// is untouched. All protocol state lives in the Server; a dropped
// connection never takes a session with it, exactly as with the
// thread-per-connection transport.
#ifndef DBRE_CLUSTER_SERVICE_TRANSPORT_H_
#define DBRE_CLUSTER_SERVICE_TRANSPORT_H_

#include <cstdint>
#include <memory>

#include "cluster/event_loop.h"
#include "common/status.h"
#include "service/server.h"

namespace dbre::cluster {

class EventLoopTransport {
 public:
  explicit EventLoopTransport(service::Server* server,
                              EventLoopOptions options = {});

  Status Start(uint16_t port) { return loop_.Start(port); }
  uint16_t port() const { return loop_.port(); }

  // Blocks until some client issues `shutdown`.
  void WaitUntilShutdown() { loop_.WaitUntilStopRequested(); }

  // Graceful teardown; the shutdown response still flushes first.
  void Stop() { loop_.Stop(); }

  EventLoopStats stats() const { return loop_.stats(); }

 private:
  service::Server* server_;
  EventLoopServer loop_;
};

}  // namespace dbre::cluster

#endif  // DBRE_CLUSTER_SERVICE_TRANSPORT_H_
