#include "cluster/event_loop.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace dbre::cluster {
namespace {

// epoll user-data ids 0 and 1 are the wake eventfd and the listener;
// connections start at 2.
constexpr uint64_t kWakeId = 0;
constexpr uint64_t kListenId = 1;
constexpr uint64_t kFirstConnId = 2;

struct LoopMetrics {
  obs::Counter* accepted;
  obs::Counter* requests;
  obs::Counter* pauses;
};

const LoopMetrics& Metrics() {
  static const LoopMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return LoopMetrics{
        registry.GetCounter("dbre_eventloop_accepted_total", {},
                            "Connections accepted by the epoll transport"),
        registry.GetCounter("dbre_eventloop_requests_total", {},
                            "Request lines read by the epoll transport"),
        registry.GetCounter(
            "dbre_eventloop_backpressure_pauses_total", {},
            "Connection reads paused by pipelining/write-buffer bounds"),
    };
  }();
  return metrics;
}

Status ErrnoStatus(const char* what) {
  return IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection state. The loop thread owns everything except `queue`/
// `running` (shared with the handler pool under `mutex`) and the sticky
// `closed` flag handler threads read to stop draining a dead connection.
struct EventLoopServer::Conn {
  int fd = -1;
  uint64_t id = 0;

  std::string in;        // bytes read past the last complete line
  std::string out;       // response bytes not yet accepted by the kernel
  size_t out_off = 0;    // consumed prefix of `out`
  uint32_t interest = 0; // epoll mask currently registered
  bool paused = false;   // reads suspended by backpressure
  bool read_closed = false;  // peer sent EOF; flush then close
  size_t inflight = 0;   // requests read whose response is not yet in `out`

  std::atomic<bool> closed{false};
  std::mutex mutex;
  std::deque<std::string> queue;  // request lines awaiting a handler
  bool running = false;           // a pool task is draining `queue`
};

// ---------------------------------------------------------------------------
// Grow-on-demand handler pool: a new thread is spawned only when a task
// arrives and no thread is idle (so sleeping `wait` handlers grow the pool
// instead of starving other connections), up to the cap; beyond it tasks
// queue. Threads park until StopAndJoin, which drains the queue first so
// already-read requests still get their responses.
class EventLoopServer::HandlerPool {
 public:
  explicit HandlerPool(size_t max_threads)
      : max_threads_(max_threads > 0 ? max_threads : 1) {}
  ~HandlerPool() { StopAndJoin(); }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
      tasks_.push_back(std::move(task));
      if (idle_ == 0 && threads_.size() < max_threads_) {
        threads_.emplace_back([this] { Worker(); });
        ++created_;
      }
    }
    cv_.notify_one();
  }

  void StopAndJoin() {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      threads.swap(threads_);
    }
    cv_.notify_all();
    for (std::thread& thread : threads) thread.join();
  }

  size_t threads_created() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }

 private:
  void Worker() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      while (tasks_.empty() && !stop_) {
        ++idle_;
        cv_.wait(lock);
        --idle_;
      }
      if (tasks_.empty()) return;  // stopping and drained
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();
      lock.lock();
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  size_t idle_ = 0;
  size_t created_ = 0;
  bool stop_ = false;
  const size_t max_threads_;
};

// ---------------------------------------------------------------------------

EventLoopServer::EventLoopServer(Handler handler, EventLoopOptions options)
    : handler_(std::move(handler)), options_(options) {}

EventLoopServer::~EventLoopServer() { Stop(); }

Status EventLoopServer::Start(uint16_t port) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return ErrnoStatus("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return ErrnoStatus("eventfd");
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind");
  }
  if (::listen(listen_fd_, 256) != 0) return ErrnoStatus("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return ErrnoStatus("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return ErrnoStatus("epoll_ctl wake");
  }
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return ErrnoStatus("epoll_ctl listen");
  }

  pool_ = std::make_unique<HandlerPool>(options_.max_handler_threads);
  next_conn_id_ = kFirstConnId;
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::Ok();
}

void EventLoopServer::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // EAGAIN means the counter is saturated — the loop is awake already.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoopServer::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void EventLoopServer::WaitUntilStopRequested() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void EventLoopServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  RequestStop();
  // Phase 1: stop reading new requests (the listener closes, reads pause)
  // but keep the loop flushing, so responses to requests already handed to
  // the pool still reach their clients.
  reading_stopped_.store(true, std::memory_order_release);
  Wake();
  if (pool_ != nullptr) pool_->StopAndJoin();
  // Phase 2: every handler has responded; drain, final flush, tear down.
  loop_exit_.store(true, std::memory_order_release);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

EventLoopStats EventLoopServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  EventLoopStats snapshot = stats_;
  if (pool_ != nullptr) snapshot.handler_threads = pool_->threads_created();
  return snapshot;
}

void EventLoopServer::LoopMain() {
  std::vector<epoll_event> events(128);
  bool reading_stop_applied = false;
  while (!loop_exit_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kWakeId) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (ev.data.u64 == kListenId) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(ev.data.u64);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn);
        continue;
      }
      if (ev.events & EPOLLOUT) TryWrite(conn);
      if (!conn->closed.load(std::memory_order_relaxed) &&
          (ev.events & EPOLLIN)) {
        ReadReady(conn);
      }
      if (!conn->closed.load(std::memory_order_relaxed)) {
        UpdateInterest(conn);
        MaybeFinish(conn);
      }
    }
    DrainCompletions();
    if (reading_stopped_.load(std::memory_order_acquire) &&
        !reading_stop_applied) {
      reading_stop_applied = true;
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      std::vector<std::shared_ptr<Conn>> open;
      open.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) open.push_back(conn);
      for (const auto& conn : open) UpdateInterest(conn);
    }
  }
  // Final pass: responses queued between the pool joining and the loop
  // exiting (the `shutdown` bye is the common one) still flush, best
  // effort, before every socket closes.
  DrainCompletions();
  std::vector<std::shared_ptr<Conn>> open;
  open.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) open.push_back(conn);
  for (const auto& conn : open) {
    if (!conn->closed.load(std::memory_order_relaxed)) TryWrite(conn);
  }
  for (const auto& conn : open) CloseConn(conn);
}

void EventLoopServer::AcceptReady() {
  while (listen_fd_ >= 0) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: backlog drained; transient errors retry on the
               // next readiness event instead of spinning here
    }
    if (Failpoints::Check("service.accept").action !=
        FailpointHit::Action::kNone) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conn->interest = EPOLLIN;
    conns_.emplace(conn->id, conn);
    Metrics().accepted->Add(1);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
    ++stats_.connections;
  }
}

void EventLoopServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  if (!FailpointError("socket.recv").ok()) {
    CloseConn(conn);
    return;
  }
  char buf[64 << 10];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      ExtractLines(conn);
      if (conn->closed.load(std::memory_order_relaxed)) return;
      // Paused (backpressure) or a short read (socket drained): let the
      // loop service other connections; level-triggered epoll re-fires.
      if (conn->paused || n < static_cast<ssize_t>(sizeof(buf))) return;
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(conn);
    return;
  }
}

void EventLoopServer::ExtractLines(const std::shared_ptr<Conn>& conn) {
  size_t start = 0;
  size_t dispatched = 0;
  bool overlong = false;
  while (true) {
    size_t newline = conn->in.find('\n', start);
    if (newline == std::string::npos) break;
    if (newline - start > options_.max_line_bytes) {
      // A terminated line over the bound is just as hostile as an
      // unterminated one; stop dispatching and drop the connection below.
      overlong = true;
      break;
    }
    std::string line = conn->in.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++conn->inflight;
    ++dispatched;
    bool need_task = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->queue.push_back(std::move(line));
      if (!conn->running) {
        conn->running = true;
        need_task = true;
      }
    }
    if (need_task) {
      std::shared_ptr<Conn> task_conn = conn;
      pool_->Submit([this, task_conn] { RunConn(task_conn); });
    }
  }
  if (start > 0) conn->in.erase(0, start);
  if (overlong || conn->in.size() > options_.max_line_bytes) {
    // No newline within the transport bound: drop the connection rather
    // than buffer without limit. (Lines the bound admits still get the
    // protocol parser's structured too-long error.)
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.overlong_lines;
    }
    CloseConn(conn);
    return;
  }
  if (dispatched > 0) {
    Metrics().requests->Add(dispatched);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests += dispatched;
  }
  UpdateInterest(conn);
}

void EventLoopServer::RunConn(const std::shared_ptr<Conn>& conn) {
  while (true) {
    std::string line;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->queue.empty() ||
          conn->closed.load(std::memory_order_acquire)) {
        conn->running = false;
        return;
      }
      line = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    Respond(conn->id, handler_(conn->id, line));
  }
}

void EventLoopServer::Respond(uint64_t conn_id, std::string response) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.emplace_back(conn_id, std::move(response));
  }
  Wake();
}

void EventLoopServer::DrainCompletions() {
  std::vector<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (auto& [conn_id, response] : batch) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;  // connection died mid-request
    std::shared_ptr<Conn> conn = it->second;
    if (conn->inflight > 0) --conn->inflight;
    conn->out += response;
    conn->out += '\n';
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.responses;
    }
    TryWrite(conn);
    if (!conn->closed.load(std::memory_order_relaxed)) {
      UpdateInterest(conn);
      MaybeFinish(conn);
    }
  }
}

void EventLoopServer::TryWrite(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  if (!FailpointError("socket.send").ok()) {
    CloseConn(conn);
    return;
  }
  while (conn->out_off < conn->out.size()) {
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn);
    return;
  }
  if (conn->out_off == conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
  } else if (conn->out_off > (64u << 10)) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
}

void EventLoopServer::UpdateInterest(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  size_t backlog = conn->out.size() - conn->out_off;
  bool should_pause =
      conn->inflight >= options_.max_pipelined_requests ||
      backlog > options_.max_write_buffer_bytes;
  if (should_pause && !conn->paused) {
    conn->paused = true;
    Metrics().pauses->Add(1);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.backpressure_pauses;
  } else if (!should_pause && conn->paused) {
    conn->paused = false;
  }
  uint32_t want = 0;
  if (!conn->paused && !conn->read_closed &&
      !reading_stopped_.load(std::memory_order_acquire)) {
    want |= EPOLLIN;
  }
  if (backlog > 0) want |= EPOLLOUT;
  if (want != conn->interest) {
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->interest = want;
    }
  }
}

void EventLoopServer::MaybeFinish(const std::shared_ptr<Conn>& conn) {
  // EOF semantics: a client may send its last request and shut down its
  // write side; the connection closes only after every response flushed.
  if (conn->read_closed && conn->inflight == 0 &&
      conn->out_off == conn->out.size()) {
    CloseConn(conn);
  }
}

void EventLoopServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->id);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (stats_.connections > 0) --stats_.connections;
  }
  if (close_handler_) close_handler_(conn->id);
}

}  // namespace dbre::cluster
