#include "cluster/hash_ring.h"

namespace dbre::cluster {

uint64_t Fnv1a64(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

uint64_t RingMix(uint64_t h) {
  // splitmix64 finalizer (Steele/Lea/Flood): full-avalanche bijection.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

namespace {
uint64_t RingPoint(const std::string& label) {
  return RingMix(Fnv1a64(label));
}
}  // namespace

void HashRing::AddNode(const std::string& node) {
  if (nodes_.count(node) > 0) return;
  std::vector<uint64_t> points;
  points.reserve(vnodes_per_node_);
  for (size_t i = 0; i < vnodes_per_node_; ++i) {
    uint64_t point = RingPoint(node + "#" + std::to_string(i));
    auto [it, inserted] = ring_.emplace(point, node);
    if (!inserted) {
      // Two nodes hashing a vnode to the same point: keep the smaller name
      // so the winner does not depend on insertion order.
      if (node < it->second) it->second = node; else continue;
    }
    points.push_back(point);
  }
  nodes_.emplace(node, std::move(points));
}

void HashRing::RemoveNode(const std::string& node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  for (uint64_t point : it->second) {
    auto entry = ring_.find(point);
    if (entry != ring_.end() && entry->second == node) ring_.erase(entry);
  }
  nodes_.erase(it);
}

bool HashRing::HasNode(const std::string& node) const {
  return nodes_.count(node) > 0;
}

std::vector<std::string> HashRing::Nodes() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [node, points] : nodes_) names.push_back(node);
  return names;
}

std::string HashRing::OwnerOf(const std::string& key) const {
  if (ring_.empty()) return "";
  auto it = ring_.lower_bound(RingPoint(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

}  // namespace dbre::cluster
