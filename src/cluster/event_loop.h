// Epoll event-loop transport for line-oriented NDJSON servers.
//
// One loop thread owns every socket: a non-blocking listener plus all
// accepted connections, each with its own read buffer (bytes past the last
// newline) and write buffer (responses not yet drained by the kernel).
// Request *execution* never runs on the loop thread — a request line is
// handed to a grow-on-demand handler pool, because dbred handlers may
// legitimately block for seconds (`wait` parks until a question arrives).
// The loop stays responsive to every other connection while any number of
// handlers sleep.
//
// Ordering and pipelining: a client may write many request lines without
// reading responses. Requests of one connection execute strictly serially,
// in arrival order, so responses come back one per request in request
// order — the protocol's contract — while different connections execute in
// parallel. Pipelining is bounded: once `max_pipelined_requests` are
// in flight for a connection, or its write buffer exceeds
// `max_write_buffer_bytes` (a client that sends but never reads), the loop
// stops reading that connection's socket until it drains. Backpressure
// thus propagates to the client through TCP flow control instead of
// growing unbounded queues.
//
// The same EventLoopServer serves both the worker daemon (handler =
// Server::HandleLine, see service_transport.h) and the router front
// process (handler = Router::Handle, whose upstream calls block on worker
// sockets — exactly why handlers get pool threads, not loop time).
#ifndef DBRE_CLUSTER_EVENT_LOOP_H_
#define DBRE_CLUSTER_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dbre::cluster {

struct EventLoopOptions {
  // A request line longer than this closes the connection (the protocol
  // parser's own limit produces a structured error first for anything it
  // accepts; this is the transport's memory safety net).
  size_t max_line_bytes = 64u << 20;
  // Unanswered requests per connection before its reads pause.
  size_t max_pipelined_requests = 64;
  // Buffered unsent response bytes per connection before reads pause.
  size_t max_write_buffer_bytes = 8u << 20;
  // Handler threads are created on demand (a sleeping `wait` occupies
  // one), capped here; beyond the cap requests queue for a free thread.
  size_t max_handler_threads = 128;
};

struct EventLoopStats {
  uint64_t accepted = 0;         // connections ever accepted
  uint64_t requests = 0;         // request lines read
  uint64_t responses = 0;        // response lines queued for write
  uint64_t backpressure_pauses = 0;  // read-side pauses engaged
  uint64_t overlong_lines = 0;   // connections closed for a missing newline
  size_t connections = 0;        // live now
  size_t handler_threads = 0;    // pool threads created so far
};

class EventLoopServer {
 public:
  // Maps one request line (newline stripped) to one response line; runs on
  // a handler-pool thread. `conn_id` identifies the connection for
  // handlers that keep per-connection state (the router's upstreams).
  using Handler =
      std::function<std::string(uint64_t conn_id, const std::string& line)>;
  // Observes a connection closing (loop thread; must not block).
  using CloseHandler = std::function<void(uint64_t conn_id)>;

  explicit EventLoopServer(Handler handler, EventLoopOptions options = {});
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  // Set before Start.
  void set_close_handler(CloseHandler handler) {
    close_handler_ = std::move(handler);
  }

  // Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  // loop thread.
  Status Start(uint16_t port);

  uint16_t port() const { return port_; }

  // Marks the server as shutting down and wakes WaitUntilStopRequested.
  // Safe from handler threads (a `shutdown` request calls this); the loop
  // keeps flushing so the shutdown response still reaches its client.
  void RequestStop();

  // Blocks until RequestStop (typically: until some client asked for
  // shutdown); the owner then calls Stop.
  void WaitUntilStopRequested();

  // Full teardown: stops reading, drains in-flight handlers, flushes what
  // their responses can reach, closes every socket, joins all threads.
  // Idempotent; also run by the destructor. Not from a handler thread.
  void Stop();

  EventLoopStats stats() const;

 private:
  struct Conn;
  class HandlerPool;

  void LoopMain();
  void Wake();
  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  void ExtractLines(const std::shared_ptr<Conn>& conn);
  void DrainCompletions();
  void TryWrite(const std::shared_ptr<Conn>& conn);
  void UpdateInterest(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void MaybeFinish(const std::shared_ptr<Conn>& conn);
  void RunConn(const std::shared_ptr<Conn>& conn);  // handler-pool task
  void Respond(uint64_t conn_id, std::string response);

  Handler handler_;
  CloseHandler close_handler_;
  EventLoopOptions options_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd: completions and stop requests
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_thread_;
  std::unique_ptr<HandlerPool> pool_;

  // Loop-thread state.
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;

  // Handler threads → loop thread.
  std::mutex completions_mutex_;
  std::vector<std::pair<uint64_t, std::string>> completions_;

  std::atomic<bool> reading_stopped_{false};  // phase 1 of Stop
  std::atomic<bool> loop_exit_{false};        // phase 2 of Stop
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  mutable std::mutex stats_mutex_;
  EventLoopStats stats_;
};

}  // namespace dbre::cluster

#endif  // DBRE_CLUSTER_EVENT_LOOP_H_
