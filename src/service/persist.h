// Session persistence: what the journal records of a dbred session mean.
//
// A `SessionPersistence` sits between a Session and its `store::Journal`,
// translating session events into journal records:
//
//   {"t":"create","session":id}               session came to life
//   {"t":"ddl","sql":"..."}                   catalog DDL applied
//   {"t":"csv","relation":R,"fp":"<hex16>","rows":N}
//                                             extension loaded; its rows
//                                             live in the content-addressed
//                                             snapshot named by fp
//   {"t":"joins","joins":[...]}               candidate joins registered
//   {"t":"mutate","sql":"..."}                live DML applied to the catalog
//   {"t":"run","infer_keys":b,...,"oracle":s} pipeline run accepted
//   {"t":"answer","kind":k,"subject":s,...}   one expert decision resolved
//   {"t":"phase","phase":p}                   pipeline phase completed
//   {"t":"done"} / {"t":"failed","error":e}   run reached a terminal state
//   {"t":"close"}                             clean client-requested close
//
// Replaying these records in order (service/session_manager.h,
// RecoverAll) reconstructs the session byte-for-byte: the catalog reloads
// from snapshots, the run re-executes, and a ReplayOracle feeds the
// journaled answers back to the deterministic pipeline.
//
// Logging is best-effort by design: a persistence failure (disk full)
// must not take down a live elicitation session, so errors are sticky and
// surfaced through `last_error` / the `persist` protocol command rather
// than thrown into the session's path. During recovery the instance is
// switched to `replaying` mode, which suppresses all logging — replayed
// events must not re-append what is already in the journal.
//
// A journal error that survives the journal's own retries flips the
// instance into *degraded ephemeral mode*: the session keeps running and
// answering, but journaling is suspended (no point hammering a failed
// disk on every event), Sync() reports the condition, and the
// `dbre_degraded_sessions` gauge counts sessions running without
// durability. Degraded is one-way for the life of the instance; a restart
// with a healthy disk recovers whatever made it to the journal before the
// failure.
#ifndef DBRE_SERVICE_PERSIST_H_
#define DBRE_SERVICE_PERSIST_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/oracle.h"
#include "relational/equi_join.h"
#include "relational/table.h"
#include "service/json.h"
#include "store/journal.h"
#include "store/store.h"

namespace dbre::service {

class SessionPersistence {
 public:
  SessionPersistence(store::Store* store,
                     std::unique_ptr<store::Journal> journal)
      : store_(store), journal_(std::move(journal)) {}
  ~SessionPersistence();

  // While replaying, every Log* call is a no-op (recovery applies events
  // that are already journaled).
  void set_replaying(bool replaying) {
    replaying_.store(replaying, std::memory_order_release);
  }
  bool replaying() const {
    return replaying_.load(std::memory_order_acquire);
  }

  store::Store* store() { return store_; }

  void LogCreate(const std::string& session_id);
  void LogDdl(const std::string& sql);
  // Snapshots the extension (content-addressed, deduplicated) and records
  // its fingerprint.
  void LogExtension(const Table& table, const std::string& relation,
                    size_t rows);
  void LogJoins(const std::vector<EquiJoin>& joins);
  // A DML script that was applied to the live catalog ({"t":"mutate"}).
  // Logged *after* the mutation applies, so a journaled mutation is always
  // one the catalog actually absorbed (a crash in between replays the
  // catalog without it — the client never got its OK).
  void LogMutation(const std::string& sql);
  void LogRunStart(bool infer_keys, bool close_inds, bool merge_isa_cycles,
                   const std::string& oracle);
  void LogPhase(const std::string& phase);
  // `answer` holds the kind-specific fields (action/name/value), matching
  // the wire answer format of docs/SERVICE.md.
  void LogAnswer(const std::string& kind, const std::string& subject,
                 Json answer);
  void LogFinished(bool ok, const std::string& error);
  void LogClose();

  // Forces the journal to disk (the `persist` protocol command). In
  // degraded mode this reports the condition instead of touching the
  // journal.
  Status Sync();

  // First logging failure since construction, if any. Ok() if healthy.
  Status last_error() const;

  // True once a journal error exhausted its retries and logging was
  // suspended for the life of this instance.
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  store::JournalStats stats() const { return journal_->stats(); }

 private:
  void Append(const Json& record);
  void SyncQuietly();  // best-effort Sync; failure goes to last_error
  void EnterDegraded(const Status& status);

  store::Store* const store_;  // not owned
  std::unique_ptr<store::Journal> journal_;
  std::atomic<bool> replaying_{false};
  std::atomic<bool> degraded_{false};

  mutable std::mutex mutex_;
  Status error_;
};

// ExpertOracle decorator that journals every decision after the wrapped
// oracle (live AsyncOracle, default or threshold policy) produces it. It
// wraps the *resolved* answer, so client answers, timeout fallbacks and
// cancel fallbacks all journal identically — recovery cannot tell them
// apart, and does not need to.
class JournalingOracle : public ExpertOracle {
 public:
  JournalingOracle(ExpertOracle* wrapped, SessionPersistence* persist)
      : wrapped_(wrapped), persist_(persist) {}

  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override;
  bool EnforceFailedFd(const FunctionalDependency& fd) override;
  bool EnforceFailedFd(const FunctionalDependency& fd,
                       double g3_error) override;
  bool ValidateFd(const FunctionalDependency& fd) override;
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override;
  std::string NameRelationForFd(const FunctionalDependency& fd) override;
  std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source) override;

 private:
  ExpertOracle* const wrapped_;        // not owned
  SessionPersistence* const persist_;  // not owned
};

// Formats a fingerprint the way journals and snapshot files name it:
// 16 lowercase hex digits. ParseFingerprint inverts it.
std::string FingerprintToHex(uint64_t fingerprint);
Result<uint64_t> ParseFingerprint(const std::string& hex);

}  // namespace dbre::service

#endif  // DBRE_SERVICE_PERSIST_H_
