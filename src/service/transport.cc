#include "service/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace dbre::service {
namespace {

struct TransportMetrics {
  obs::Counter* accept_errors;
};

const TransportMetrics& Metrics() {
  static const TransportMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return TransportMetrics{
        registry.GetCounter("dbre_accept_errors_total", {},
                            "Transient accept() failures retried by the "
                            "listener"),
    };
  }();
  return metrics;
}

Status ErrnoStatus(const char* what) {
  return IoError(std::string(what) + ": " + std::strerror(errno));
}

// A write to a closed socket must surface as an error status, not SIGPIPE.
void IgnoreSigpipeOnce() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

Result<std::string> StreamChannel::ReadLine() {
  std::string line;
  if (!std::getline(*in_, line)) return NotFoundError("eof");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

Status StreamChannel::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  (*out_) << line << '\n';
  out_->flush();
  if (!out_->good()) return IoError("output stream failed");
  return Status::Ok();
}

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> SocketChannel::ReadLine() {
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    DBRE_RETURN_IF_ERROR(FailpointError("socket.recv"));
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (!buffer_.empty()) {
        // Final unterminated line.
        std::string line = std::move(buffer_);
        buffer_.clear();
        return line;
      }
      return NotFoundError("eof");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status SocketChannel::WriteLine(const std::string& line) {
  IgnoreSigpipeOnce();
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::string framed = line;
  framed.push_back('\n');
  size_t limit = framed.size();
  bool injected = false;
  FailpointHit hit = Failpoints::Check("socket.send");
  if (hit.action == FailpointHit::Action::kError) {
    limit = 0;
    injected = true;
  } else if (hit.action == FailpointHit::Action::kTorn) {
    // Simulate the peer vanishing mid-frame: part of the line reaches the
    // wire, then the send fails.
    limit = std::min(limit, hit.torn_bytes);
    injected = true;
  }
  size_t sent = 0;
  while (sent < limit) {
    ssize_t n = ::send(fd_, framed.data() + sent, limit - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  if (injected) {
    return IoError("send: injected failure (failpoint socket.send)");
  }
  return Status::Ok();
}

void SocketChannel::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<std::unique_ptr<SocketChannel>> TcpConnect(const std::string& host,
                                                  uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    hostent* resolved = ::gethostbyname(host.c_str());
    if (resolved == nullptr || resolved->h_addrtype != AF_INET) {
      ::close(fd);
      return NotFoundError("cannot resolve host " + host);
    }
    std::memcpy(&addr.sin_addr, resolved->h_addr_list[0],
                sizeof(addr.sin_addr));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = ErrnoStatus("connect");
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketChannel>(fd);
}

Result<std::unique_ptr<SocketChannel>> TcpConnectWithRetry(
    const std::string& host, uint16_t port, int64_t deadline_ms,
    int64_t recv_timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  int64_t backoff_ms = 10;
  while (true) {
    Result<std::unique_ptr<SocketChannel>> channel = TcpConnect(host, port);
    if (channel.ok()) {
      if (recv_timeout_ms > 0) {
        timeval tv{};
        tv.tv_sec = recv_timeout_ms / 1000;
        tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
        ::setsockopt((*channel)->fd(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv));
      }
      return channel;
    }
    // Resolution failures are permanent; refused/unreachable means the
    // server is (re)starting — those are worth waiting out.
    if (channel.status().code() == StatusCode::kNotFound) return channel;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status(channel.status().code(),
                    channel.status().message() + " (gave up after " +
                        std::to_string(deadline_ms) + " ms of retries)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min<int64_t>(backoff_ms * 2, 250);
  }
}

size_t ServeChannel(Server* server, LineChannel* channel) {
  size_t handled = 0;
  while (!server->shutdown_requested()) {
    auto line = channel->ReadLine();
    if (!line.ok()) break;  // EOF or broken transport
    if (line->empty()) continue;
    std::string response = server->HandleLine(*line);
    ++handled;
    if (!channel->WriteLine(response).ok()) break;
  }
  return handled;
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  IgnoreSigpipeOnce();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = ErrnoStatus("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status = ErrnoStatus("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status status = ErrnoStatus("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  // Transient accept() failures — EMFILE/ENFILE when fds run out,
  // ECONNABORTED when a client gives up in the backlog, ENOMEM under
  // pressure — must not kill the listener for every future client. Back
  // off (capped) and keep accepting; only Stop() closing the listener
  // ends the loop.
  int64_t backoff_ms = 1;
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0 && Failpoints::Check("service.accept").action !=
                       FailpointHit::Action::kNone) {
      ::close(fd);
      fd = -1;
      errno = ECONNABORTED;
    }
    if (fd < 0) {
      if (listen_fd_.load() < 0) return;  // listener closed by Stop()
      if (errno == EINTR) continue;
      Metrics().accept_errors->Add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min<int64_t>(backoff_ms * 2, 100);
      continue;
    }
    backoff_ms = 1;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto channel = std::make_shared<SocketChannel>(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      channel->ShutdownBoth();
      return;
    }
    connections_.push_back(channel);
    connection_threads_.emplace_back([this, channel] {
      ServeChannel(server_, channel.get());
      if (server_->shutdown_requested()) {
        std::lock_guard<std::mutex> signal_lock(mutex_);
        shutdown_cv_.notify_all();
      }
    });
  }
}

void TcpServer::WaitUntilShutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock, [this] {
    return stopping_ || server_->shutdown_requested();
  });
}

void TcpServer::Stop() {
  std::vector<std::shared_ptr<SocketChannel>> connections;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    connections.swap(connections_);
    threads.swap(connection_threads_);
  }
  if (int fd = listen_fd_.exchange(-1); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable() &&
      accept_thread_.get_id() != std::this_thread::get_id()) {
    accept_thread_.join();
  }
  for (const auto& connection : connections) connection->ShutdownBoth();
  for (std::thread& thread : threads) {
    if (thread.get_id() == std::this_thread::get_id()) {
      thread.detach();
    } else {
      thread.join();
    }
  }
}

}  // namespace dbre::service
