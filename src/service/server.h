// The dbred daemon core: protocol dispatch over a SessionManager.
//
// A `Server` is transport-agnostic and connection-agnostic: it maps one
// request line to one response line, and every bit of state lives in the
// SessionManager (sessions, questions, reports) — never in the connection.
// That is what makes sessions survive disconnects: a client that drops
// mid-question can reconnect (or a different client can take over) and
// `answer` by session + question id. `HandleLine` is safe to call from any
// number of connection threads concurrently.
//
// Commands (see docs/SERVICE.md): hello, create, sessions, status,
// load_ddl, load_csv, add_joins, mutate, run, wait, watch, questions,
// answer, report, summary, export_ddl, export_eer, export_navigation,
// close, stats, metrics, trace, persist, restore, detach, failpoint,
// shutdown.
//
// With a data dir (`dbre_serve --data-dir`), the constructor replays every
// journal found on disk before serving: crashed sessions come back with
// their catalogs re-interned from snapshots and their pipelines re-running
// against the journaled expert answers (docs/STORAGE.md).
#ifndef DBRE_SERVICE_SERVER_H_
#define DBRE_SERVICE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/protocol.h"
#include "service/session_manager.h"

namespace dbre::service {

struct ServerOptions {
  SessionManagerOptions sessions;
  ProtocolLimits limits;
  // Upper bound a `wait` request may block server-side, even if the client
  // asks for longer (keeps connection threads reclaimable).
  int64_t max_wait_ms = 30'000;
  // When > 0, arms the process-wide slow-op log: any instrumented
  // operation (pipeline phase, expert wait, journal fsync, snapshot
  // write/load) at least this many milliseconds long is retained and
  // reported by `stats`. 0 leaves the log disabled.
  int64_t slow_op_ms = 0;
  // The `failpoint` wire command injects faults — including crash-here
  // and sticky error injection — so it is off by default: a production
  // daemon must not be crashable by any client that can reach the port.
  // Opt in with `dbre_serve --enable-failpoints`; setting DBRE_FAILPOINTS
  // in the environment also enables it (that operator already opted this
  // process into fault injection).
  bool enable_failpoints = false;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Handles one request line; always returns exactly one response line
  // (without trailing newline), errors included.
  std::string HandleLine(const std::string& line);

  // True once a client issued `shutdown`; transports exit their serve
  // loops when they see it.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  SessionManager* sessions() { return &manager_; }
  const ServerOptions& options() const { return options_; }

  // What startup recovery did (empty report without a data dir).
  const SessionManager::RecoveryReport& recovery() const {
    return recovery_;
  }

 private:
  struct WaitHub;

  Result<Json> Dispatch(const Request& request);

  Result<Json> HandleHello(const Request& request);
  Result<Json> HandleCreate(const Request& request);
  Result<Json> HandleSessions();
  Result<Json> HandleStatus(const Request& request);
  Result<Json> HandleLoadDdl(const Request& request);
  Result<Json> HandleLoadCsv(const Request& request);
  Result<Json> HandleAddJoins(const Request& request);
  Result<Json> HandleMutate(const Request& request);
  Result<Json> HandleRun(const Request& request);
  Result<Json> HandleWait(const Request& request);
  Result<Json> HandleWatch(const Request& request);
  Result<Json> HandleQuestions(const Request& request);
  Result<Json> HandleAnswer(const Request& request);
  Result<Json> HandleReport(const Request& request);
  Result<Json> HandleExport(const Request& request);
  Result<Json> HandleClose(const Request& request);
  Result<Json> HandleStats();
  Result<Json> HandleMetrics();
  Result<Json> HandleTrace(const Request& request);
  Result<Json> HandlePersist(const Request& request);
  Result<Json> HandleRestore(const Request& request);
  Result<Json> HandleDetach(const Request& request);
  Result<Json> HandleFailpoint(const Request& request);

  Result<std::shared_ptr<Session>> SessionParam(const Request& request);

  // Per-session wait rendezvous: a `wait` parks on its own session's hub,
  // so a state change on one session wakes only that session's waiters —
  // with 32 clients on a shared global hub every event woke every waiter
  // (a thundering herd that dominated tail latency under load).
  std::shared_ptr<WaitHub> HubFor(const std::string& session_id);
  void NotifyHub(const std::string& session_id);
  void DropHub(const std::string& session_id);
  void NotifyAllHubs();

  ServerOptions options_;
  SessionManager manager_;
  SessionManager::RecoveryReport recovery_;
  std::atomic<bool> shutdown_{false};

  std::mutex hubs_mutex_;
  std::unordered_map<std::string, std::shared_ptr<WaitHub>> hubs_;
};

}  // namespace dbre::service

#endif  // DBRE_SERVICE_SERVER_H_
