// One reverse-engineering session inside the dbred service.
//
// A session owns a catalog (loaded over the wire as DDL + CSV extensions),
// a workload Q, and at most one pipeline run at a time. The run executes
// on a SessionManager worker thread; its oracle is this session's
// AsyncOracle, so every expert decision suspends the worker until a client
// answers (or the timeout falls back to conservative defaults). The
// session object — and with it the pending questions, the catalog and the
// finished report — lives independently of any client connection: clients
// may disconnect mid-question, reconnect, and pick the session back up by
// id.
//
// Loaded extensions are interned in the server-wide ExtensionRegistry, so
// sessions working on the same legacy database share row storage and the
// memoized QueryCache partitions.
#ifndef DBRE_SERVICE_SESSION_H_
#define DBRE_SERVICE_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "core/presumption_diff.h"
#include "core/replay_oracle.h"
#include "obs/trace.h"
#include "pagestore/paged_snapshot.h"
#include "relational/extension_registry.h"
#include "service/async_oracle.h"
#include "service/persist.h"
#include "sql/dml.h"

namespace dbre::service {

struct SessionLimits {
  // Budget for this session's loaded extensions (ApproximateBytes of every
  // table). Loads that would exceed it fail with kFailedPrecondition.
  size_t max_bytes = 256u << 20;
};

// Shared accounting across all sessions of a server.
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t max_total_bytes)
      : max_total_(max_total_bytes) {}

  bool Reserve(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      if (used + bytes > max_total_) return false;
      if (used_.compare_exchange_weak(used, used + bytes,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }
  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t max_total() const { return max_total_; }

 private:
  std::atomic<size_t> used_{0};
  size_t max_total_;
};

class Session {
 public:
  enum class State { kIdle, kRunning, kDone, kFailed, kClosed };

  struct RunOptions {
    bool infer_keys = false;
    bool close_inds = false;
    bool merge_isa_cycles = false;
    // Which expert answers this run: "async" (questions go to clients),
    // "default" (DefaultOracle), or "threshold" (unattended data-driven
    // policy, same knobs as dbre_cli's).
    std::string oracle = "async";
    // Recovery only (never set over the wire): journaled answers that
    // replay ahead of the live oracle, so a resumed run re-asks only the
    // questions the expert never answered. Also suppresses re-journaling
    // the run record.
    std::shared_ptr<ReplayOracle> replay;
  };

  Session(std::string id, AsyncOracle::Options oracle_options,
          SessionLimits limits, ExtensionRegistry* registry,
          std::shared_ptr<MemoryBudget> budget);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& id() const { return id_; }
  State state() const;
  static const char* StateName(State state);

  // Current pipeline phase name while running ("" otherwise).
  std::string phase() const;

  // Catalog loading — only while idle (a running pipeline reads the
  // catalog without locks).
  Status LoadDdl(const std::string& sql, size_t* relations_out,
                 size_t* rows_out);
  Status LoadCsv(const std::string& relation, const std::string& csv_text,
                 size_t* rows_out);
  Status AddJoins(const std::vector<EquiJoin>& joins);

  // Recovery-path counterpart of LoadCsv: installs the extension decoded
  // from the data dir's snapshot with this fingerprint into `relation`
  // (whose schema must already be loaded via LoadDdl and must match the
  // snapshot's column layout), then interns it by the snapshot's verified
  // footer fingerprint — no CSV parse, no row re-hash.
  Status RestoreExtension(const std::string& relation, uint64_t fingerprint,
                          size_t* rows_out);

  // Turns on paged extensions for this session: the opener (backed by the
  // session manager's shared buffer pool) maps a snapshot fingerprint to a
  // live paged source. With an opener set, LoadCsv snapshots the parsed
  // rows and swaps them for the page-backed source, and RestoreExtension
  // opens the snapshot paged instead of materializing it — either way the
  // extension's working set is bounded by the pool budget, not its size.
  using PagedOpener = std::function<
      Result<std::shared_ptr<pagestore::PagedSnapshot>>(uint64_t)>;
  void SetPagedOpener(PagedOpener opener);

  size_t join_count() const;
  size_t relation_count() const;
  size_t memory_bytes() const;

  // Live mutation (docs/INCREMENTAL.md): applies a DML script (INSERT /
  // UPDATE / DELETE, sql/dml.h) to the catalog, journals it, and emits a
  // "mutate" event to watchers. Allowed while idle, done or failed — a
  // finished session stays mutable so the expert can evolve the extension
  // and re-run; the next BeginRun re-validates the presumptions against
  // the mutated extension (with the already-answered questions replaying
  // automatically). Tables interned in the ExtensionRegistry detach
  // copy-on-write before the first row changes; paged tables materialize
  // first (mutations never write through the buffer pool).
  Status ApplyMutation(const std::string& sql, sql::DmlStats* stats_out);

  // Event stream backing the `watch` wire command: "mutate" events (one
  // per applied script) and "report" events (presumption changes after
  // each finished run). Bounded ring — a slow watcher that falls more
  // than the capacity behind loses the oldest events (detectable: the
  // first returned seq jumps). Seqs start at 1 and never repeat.
  std::vector<Json> EventsSince(uint64_t after_seq) const;
  uint64_t event_seq() const;

  // Recovery only: seeds the in-memory answer log with a journaled answer
  // record, so post-recovery mutations + reruns replay the same answers a
  // live session would have.
  void SeedAnswer(Json record);

  // Appends a freshly-resolved expert answer (journal record form) to the
  // in-memory answer log. Called by the recording oracle during a run.
  void RecordAnswer(Json record);

  // State transition kIdle/kDone/kFailed → kRunning with validation; the
  // manager then schedules ExecuteRun on a worker. Re-running a finished
  // session is the incremental path: the catalog (possibly mutated since)
  // is re-engineered with the session's answer log replaying ahead of the
  // live oracle, so only new questions reach the expert.
  Status BeginRun(const RunOptions& options);

  // Runs the pipeline synchronously (worker thread). Terminal state kDone
  // or kFailed; wakes WaitFinished waiters.
  void ExecuteRun(const RunOptions& options);

  // Blocks until the run reaches a terminal state; false on timeout
  // (timeout_ms < 0 waits forever).
  bool WaitFinished(int64_t timeout_ms) const;

  AsyncOracle* oracle() { return &oracle_; }
  const AsyncOracle* oracle() const { return &oracle_; }

  // Completed pipeline-phase spans of this session's runs, oldest first
  // (bounded; see obs/trace.h). Backs the server's `trace` command.
  const obs::TraceRing& trace() const { return trace_; }

  // Fires (outside all session locks) whenever a question is asked or
  // resolved, or the run reaches a terminal state — the server's `wait`
  // command hangs off this.
  void SetListener(std::function<void()> listener);

  // The failure of the last run (OK unless state() == kFailed).
  Status last_error() const;

  // Durability. The persistence object (if any) journals catalog loads,
  // run starts, expert answers and terminal states; see service/persist.h.
  // Attach before any load so the journal is complete.
  void AttachPersistence(std::shared_ptr<SessionPersistence> persist);
  SessionPersistence* persistence() { return persist_.get(); }

  // Permanently stops journaling (graceful daemon shutdown): the session
  // should resume from its journal on restart, so neither a close record
  // nor the cancel-fallback answers of the dying run may be appended.
  void DisarmPersistence();

  // Artifact exports; kFailedPrecondition unless state() == kDone.
  Result<std::string> ReportJson(bool include_timings) const;
  Result<std::string> ExportDdl() const;
  Result<std::string> ExportEerDot() const;
  Result<std::string> ExportNavigationDot() const;
  Result<std::string> SummaryText() const;

  // Cancels any in-flight run (pending questions resolve with fallback
  // answers, the pipeline aborts at its next phase boundary) and releases
  // the session's memory reservation. Idempotent.
  void Close();

  // Aborts an in-flight run with `reason` (the scheduler watchdog's
  // deadline enforcement): pending questions resolve with fallbacks, the
  // pipeline cancels at its next phase boundary, and the session fails
  // with `reason` instead of a generic cancellation. No-op unless
  // running; first reason wins. True only on the call that armed the
  // abort, so callers can count aborts exactly once.
  bool AbortRun(const Status& reason);

  // Monotonic-clock microseconds when the in-flight run started
  // *executing* (not when it was admitted — queued runs read 0, so the
  // watchdog's deadline excludes queue wait). 0 while no run is active.
  int64_t run_started_us() const {
    return run_started_us_.load(std::memory_order_acquire);
  }

 private:
  Status ReserveDelta(size_t old_bytes, size_t new_bytes);

  // Appends an event to the bounded ring (lock held) and returns the
  // listener to fire after the lock drops.
  std::function<void()> EmitEventLocked(const char* type, Json payload);

  // Snapshots `table`'s freshly-loaded rows and re-adopts them paged.
  // Degrades gracefully: any failure leaves the materialized extension in
  // place (correctness never depends on paging). Lock held.
  void TryAdoptPaged(Table* table);

  const std::string id_;
  const SessionLimits limits_;
  ExtensionRegistry* const registry_;  // not owned; may be null
  const std::shared_ptr<MemoryBudget> budget_;

  AsyncOracle oracle_;
  obs::TraceRing trace_;
  std::atomic<bool> cancel_{false};
  std::atomic<int64_t> run_started_us_{0};
  // Set once before any load (AttachPersistence) and disarmed at shutdown;
  // ExecuteRun reads it without the session lock.
  std::shared_ptr<SessionPersistence> persist_;
  PagedOpener paged_opener_;  // set once at creation, before any load

  mutable std::mutex mutex_;
  mutable std::condition_variable finished_;
  State state_ = State::kIdle;
  std::string phase_;
  Database database_;
  std::vector<EquiJoin> joins_;
  size_t bytes_ = 0;
  std::optional<PipelineReport> report_;
  Status error_;
  Status abort_reason_;  // set by AbortRun while kRunning
  bool closed_ = false;
  std::function<void()> listener_;

  // Incremental re-engineering state. `answers_` is the session's own
  // answer log (journal record form, FIFO per subject); reruns replay it
  // so only genuinely new questions reach the expert. `last_presumptions_`
  // is the previous report's canonical dependency strings, diffed against
  // each new report for the watch stream.
  std::vector<Json> answers_;
  PresumptionSet last_presumptions_;
  bool has_presumptions_ = false;
  std::deque<Json> events_;
  uint64_t event_seq_ = 0;
};

}  // namespace dbre::service

#endif  // DBRE_SERVICE_SESSION_H_
