#include "service/persist.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "service/protocol.h"

namespace dbre::service {
namespace {

struct PersistMetrics {
  obs::Gauge* degraded_sessions;
  obs::Counter* degraded_total;
};

const PersistMetrics& Metrics() {
  static const PersistMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return PersistMetrics{
        registry.GetGauge("dbre_degraded_sessions", {},
                          "Live sessions running without durability after "
                          "a persistent journal failure"),
        registry.GetCounter("dbre_degraded_sessions_total", {},
                            "Sessions that ever entered degraded "
                            "ephemeral mode"),
    };
  }();
  return metrics;
}

}  // namespace

std::string FingerprintToHex(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

Result<uint64_t> ParseFingerprint(const std::string& hex) {
  if (hex.size() != 16) {
    return ParseError("fingerprint must be 16 hex digits: '" + hex + "'");
  }
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return ParseError("fingerprint must be 16 hex digits: '" + hex + "'");
    }
    value = value << 4 | static_cast<uint64_t>(digit);
  }
  return value;
}

SessionPersistence::~SessionPersistence() {
  if (degraded()) Metrics().degraded_sessions->Add(-1);
}

void SessionPersistence::EnterDegraded(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_.ok()) error_ = status;
  }
  bool expected = false;
  if (degraded_.compare_exchange_strong(expected, true)) {
    Metrics().degraded_sessions->Add(1);
    Metrics().degraded_total->Add(1);
  }
}

void SessionPersistence::Append(const Json& record) {
  if (replaying() || degraded()) return;
  Status status = journal_->Append(record);
  // The journal already retried with backoff; an error here means the
  // disk is persistently unhealthy. Degrade instead of failing every
  // subsequent event against it.
  if (!status.ok()) EnterDegraded(status);
}

void SessionPersistence::SyncQuietly() {
  if (replaying() || degraded()) return;
  Status status = journal_->Sync();
  if (!status.ok()) EnterDegraded(status);
}

void SessionPersistence::LogCreate(const std::string& session_id) {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("create"));
  record.Set("session", Json::Str(session_id));
  Append(record);
}

void SessionPersistence::LogDdl(const std::string& sql) {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("ddl"));
  record.Set("sql", Json::Str(sql));
  Append(record);
}

void SessionPersistence::LogExtension(const Table& table,
                                      const std::string& relation,
                                      size_t rows) {
  if (replaying() || degraded()) return;
  Result<store::SnapshotInfo> snapshot = store_->PutSnapshot(table);
  if (!snapshot.ok()) {
    EnterDegraded(snapshot.status());
    return;
  }
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("csv"));
  record.Set("relation", Json::Str(relation));
  record.Set("fp", Json::Str(FingerprintToHex(snapshot->fingerprint)));
  record.Set("rows", Json::Int(static_cast<int64_t>(rows)));
  Append(record);
}

void SessionPersistence::LogJoins(const std::vector<EquiJoin>& joins) {
  Json list = Json::MakeArray();
  for (const EquiJoin& join : joins) list.Append(JoinToJson(join));
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("joins"));
  record.Set("joins", std::move(list));
  Append(record);
}

void SessionPersistence::LogMutation(const std::string& sql) {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("mutate"));
  record.Set("sql", Json::Str(sql));
  Append(record);
  // Like answers: the mutation is already live in memory, so losing the
  // record would make a replayed catalog diverge from what clients saw.
  SyncQuietly();
}

void SessionPersistence::LogRunStart(bool infer_keys, bool close_inds,
                                     bool merge_isa_cycles,
                                     const std::string& oracle) {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("run"));
  record.Set("infer_keys", Json::Bool(infer_keys));
  record.Set("close_inds", Json::Bool(close_inds));
  record.Set("merge_isa_cycles", Json::Bool(merge_isa_cycles));
  record.Set("oracle", Json::Str(oracle));
  Append(record);
}

void SessionPersistence::LogPhase(const std::string& phase) {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("phase"));
  record.Set("phase", Json::Str(phase));
  Append(record);
}

void SessionPersistence::LogAnswer(const std::string& kind,
                                   const std::string& subject, Json answer) {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("answer"));
  record.Set("kind", Json::Str(kind));
  record.Set("subject", Json::Str(subject));
  for (auto& [key, value] : answer.object()) {
    record.Set(key, std::move(value));
  }
  Append(record);
  // An answer is the product of (possibly hours of) expert attention —
  // make it durable now, not at the next batch boundary.
  SyncQuietly();
}

void SessionPersistence::LogFinished(bool ok, const std::string& error) {
  Json record = Json::MakeObject();
  if (ok) {
    record.Set("t", Json::Str("done"));
  } else {
    record.Set("t", Json::Str("failed"));
    record.Set("error", Json::Str(error));
  }
  Append(record);
  SyncQuietly();
}

void SessionPersistence::LogClose() {
  Json record = Json::MakeObject();
  record.Set("t", Json::Str("close"));
  Append(record);
  SyncQuietly();
}

Status SessionPersistence::Sync() {
  if (degraded()) {
    return FailedPreconditionError("journaling degraded: " +
                                   last_error().message());
  }
  Status status = journal_->Sync();
  if (!status.ok()) EnterDegraded(status);
  return status;
}

Status SessionPersistence::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

namespace {

const char* NeiActionName(NeiAction action) {
  switch (action) {
    case NeiAction::kConceptualize: return "conceptualize";
    case NeiAction::kForceLeftInRight: return "force_left";
    case NeiAction::kForceRightInLeft: return "force_right";
    case NeiAction::kIgnore: return "ignore";
  }
  return "ignore";
}

Json BoolAnswer(bool value) {
  Json answer = Json::MakeObject();
  answer.Set("value", Json::Bool(value));
  return answer;
}

Json NameAnswer(const std::string& name) {
  Json answer = Json::MakeObject();
  answer.Set("name", Json::Str(name));
  return answer;
}

}  // namespace

NeiDecision JournalingOracle::DecideNonEmptyIntersection(
    const EquiJoin& join, const JoinCounts& counts) {
  NeiDecision decision = wrapped_->DecideNonEmptyIntersection(join, counts);
  Json answer = Json::MakeObject();
  answer.Set("action", Json::Str(NeiActionName(decision.action)));
  if (!decision.relation_name.empty()) {
    answer.Set("name", Json::Str(decision.relation_name));
  }
  persist_->LogAnswer("nei", join.ToString(), std::move(answer));
  return decision;
}

bool JournalingOracle::EnforceFailedFd(const FunctionalDependency& fd) {
  bool enforce = wrapped_->EnforceFailedFd(fd);
  persist_->LogAnswer("enforce_fd", fd.ToString(), BoolAnswer(enforce));
  return enforce;
}

bool JournalingOracle::EnforceFailedFd(const FunctionalDependency& fd,
                                       double g3_error) {
  bool enforce = wrapped_->EnforceFailedFd(fd, g3_error);
  persist_->LogAnswer("enforce_fd", fd.ToString(), BoolAnswer(enforce));
  return enforce;
}

bool JournalingOracle::ValidateFd(const FunctionalDependency& fd) {
  bool valid = wrapped_->ValidateFd(fd);
  persist_->LogAnswer("validate_fd", fd.ToString(), BoolAnswer(valid));
  return valid;
}

bool JournalingOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  bool accept = wrapped_->ConceptualizeHiddenObject(candidate);
  persist_->LogAnswer("hidden_object", candidate.ToString(),
                      BoolAnswer(accept));
  return accept;
}

std::string JournalingOracle::NameRelationForFd(
    const FunctionalDependency& fd) {
  std::string name = wrapped_->NameRelationForFd(fd);
  persist_->LogAnswer("name_fd", fd.ToString(), NameAnswer(name));
  return name;
}

std::string JournalingOracle::NameHiddenObjectRelation(
    const QualifiedAttributes& source) {
  std::string name = wrapped_->NameHiddenObjectRelation(source);
  persist_->LogAnswer("name_hidden", source.ToString(), NameAnswer(name));
  return name;
}

}  // namespace dbre::service
