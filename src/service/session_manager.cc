#include "service/session_manager.h"

#include <utility>

namespace dbre::service {

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(options),
      budget_(std::make_shared<MemoryBudget>(options.max_total_bytes)),
      pool_(std::make_unique<ThreadPool>(
          options.max_inflight_runs > 0 ? options.max_inflight_runs : 1)) {}

SessionManager::~SessionManager() { Shutdown(); }

Result<std::string> SessionManager::CreateSession(
    const std::string& name_hint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return FailedPreconditionError(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " live sessions)");
  }
  std::string id = name_hint;
  if (id.empty() || sessions_.count(id) > 0) {
    do {
      id = "s" + std::to_string(next_session_++);
    } while (sessions_.count(id) > 0);
  }
  AsyncOracle::Options oracle_options;
  oracle_options.timeout_ms = options_.question_timeout_ms;
  SessionLimits limits;
  limits.max_bytes = options_.max_session_bytes;
  sessions_.emplace(id, std::make_shared<Session>(id, oracle_options, limits,
                                                  &registry_, budget_));
  return id;
}

Result<std::shared_ptr<Session>> SessionManager::Get(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return NotFoundError("no session with id '" + id + "'");
  }
  return it->second;
}

std::vector<std::shared_ptr<Session>> SessionManager::Sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> sessions;
  sessions.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) sessions.push_back(session);
  return sessions;
}

size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

Status SessionManager::SubmitRun(const std::shared_ptr<Session>& session,
                                 const Session::RunOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_ + queued_ >=
        options_.max_inflight_runs + options_.max_queued_runs) {
      return FailedPreconditionError(
          "run admission rejected: " + std::to_string(inflight_) +
          " in flight and " + std::to_string(queued_) +
          " queued (limits " + std::to_string(options_.max_inflight_runs) +
          "/" + std::to_string(options_.max_queued_runs) + "); retry later");
    }
    ++queued_;
  }
  Status begun = session->BeginRun(options);
  if (!begun.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
    return begun;
  }
  pool_->Submit([this, session, options] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --queued_;
      ++inflight_;
    }
    session->ExecuteRun(options);
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
  });
  return Status::Ok();
}

Status SessionManager::CloseSession(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return NotFoundError("no session with id '" + id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Close outside the manager lock: it wakes suspended workers, which may
  // call back into the manager's counters.
  session->Close();
  return Status::Ok();
}

void SessionManager::Shutdown() {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, session] : sessions_) sessions.push_back(session);
    sessions_.clear();
  }
  for (const auto& session : sessions) session->Close();
  if (pool_) pool_->Wait();
}

size_t SessionManager::inflight_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

size_t SessionManager::queued_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

}  // namespace dbre::service
