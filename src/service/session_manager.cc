#include "service/session_manager.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "obs/metrics.h"
#include "service/protocol.h"

namespace dbre::service {
namespace {

// Admission and occupancy metrics for the run scheduler. One struct so
// SubmitRun touches a single cached static.
struct SchedulerMetrics {
  obs::Counter* sessions_created;
  obs::Counter* sessions_closed;
  obs::Counter* sessions_detached;
  obs::Counter* admission_rejects;
  obs::Counter* deadline_aborts;
  obs::Gauge* live_sessions;
  obs::Gauge* queued_runs;
  obs::Gauge* inflight_runs;
};

const SchedulerMetrics& Metrics() {
  static const SchedulerMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return SchedulerMetrics{
        registry.GetCounter("dbre_sessions_created_total", {},
                            "Sessions created (including recovered)"),
        registry.GetCounter("dbre_sessions_closed_total", {},
                            "Sessions closed"),
        registry.GetCounter("dbre_sessions_detached_total", {},
                            "Sessions detached for migration (journal "
                            "sealed, no tombstone)"),
        registry.GetCounter(
            "dbre_run_admission_rejects_total", {},
            "Run submissions rejected by the inflight+queued limit"),
        registry.GetCounter("dbre_run_deadline_aborts_total", {},
                            "Runs aborted by the scheduler watchdog for "
                            "exceeding their deadline"),
        registry.GetGauge("dbre_live_sessions", {}, "Sessions currently live"),
        registry.GetGauge("dbre_queued_runs", {},
                          "Runs admitted but not yet executing"),
        registry.GetGauge("dbre_inflight_runs", {},
                          "Runs currently executing"),
    };
  }();
  return metrics;
}

bool HasCloseRecord(const store::JournalReplay& replay) {
  for (const Json& record : replay.records) {
    if (record.GetString("t") == "close") return true;
  }
  return false;
}

}  // namespace

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)),
      budget_(std::make_shared<MemoryBudget>(options_.max_total_bytes)),
      pool_(std::make_unique<ThreadPool>(
          options_.max_inflight_runs > 0 ? options_.max_inflight_runs : 1)) {
  if (!options_.data_dir.empty()) {
    store::StoreOptions store_options;
    store_options.journal = options_.journal;
    Result<std::unique_ptr<store::Store>> opened =
        store::Store::Open(options_.data_dir, store_options);
    if (opened.ok()) {
      store_ = std::move(opened).value();
    } else {
      // Sessions still work, in-memory; the failure is surfaced through
      // store_status() (dbre_serve refuses to start on it).
      store_status_ = opened.status();
    }
  }
  if (options_.buffer_pool_bytes > 0) {
    if (store_ == nullptr) {
      if (store_status_.ok()) {
        store_status_ = FailedPreconditionError(
            "buffer_pool_bytes requires a data dir (paged extensions live "
            "in its snapshots)");
      }
    } else if (!budget_->Reserve(options_.buffer_pool_bytes)) {
      // The pool's frames count against the global memory budget so
      // admission sees them; a pool bigger than the budget is a
      // misconfiguration, not something to silently clamp.
      store_status_ = FailedPreconditionError(
          "buffer pool budget (" +
          std::to_string(options_.buffer_pool_bytes) +
          " bytes) exceeds the total memory budget (" +
          std::to_string(options_.max_total_bytes) + " bytes)");
    } else {
      buffer_pool_ = std::make_shared<pagestore::BufferPool>(
          options_.buffer_pool_bytes);
    }
  }
  if (options_.run_deadline_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

SessionManager::~SessionManager() { Shutdown(); }

void SessionManager::WatchdogLoop() {
  const int64_t deadline_ms = options_.run_deadline_ms;
  // Poll a few times per deadline window so an overdue run is caught
  // within ~a quarter of its budget past the line.
  const auto poll = std::chrono::milliseconds(
      std::clamp<int64_t>(deadline_ms / 4, 10, 250));
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, poll);
    if (watchdog_stop_) return;
    lock.unlock();
    int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
    for (const auto& session : Sessions()) {
      int64_t started_us = session->run_started_us();
      if (started_us > 0 && now_us - started_us > deadline_ms * 1000 &&
          session->AbortRun(FailedPreconditionError(
              "run exceeded the " + std::to_string(deadline_ms) +
              " ms deadline and was aborted by the scheduler watchdog"))) {
        Metrics().deadline_aborts->Add(1);
      }
    }
    lock.lock();
  }
}

void SessionManager::StopWatchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

Result<std::shared_ptr<Session>> SessionManager::MakeSession(
    const std::string& id, bool replaying) {
  std::shared_ptr<SessionPersistence> persist;
  if (store_ != nullptr) {
    DBRE_ASSIGN_OR_RETURN(std::unique_ptr<store::Journal> journal,
                          store_->OpenSessionJournal(id));
    persist = std::make_shared<SessionPersistence>(store_.get(),
                                                   std::move(journal));
    persist->set_replaying(replaying);
  }
  AsyncOracle::Options oracle_options;
  oracle_options.timeout_ms = options_.question_timeout_ms;
  SessionLimits limits;
  limits.max_bytes = options_.max_session_bytes;
  auto session = std::make_shared<Session>(id, oracle_options, limits,
                                           &registry_, budget_);
  if (persist != nullptr) {
    session->AttachPersistence(persist);
    persist->LogCreate(id);  // no-op while replaying
  }
  if (buffer_pool_ != nullptr && persist != nullptr) {
    session->SetPagedOpener(
        [this](uint64_t fingerprint) { return PagedSourceFor(fingerprint); });
  }
  return session;
}

Result<std::shared_ptr<pagestore::PagedSnapshot>>
SessionManager::PagedSourceFor(uint64_t fingerprint) {
  if (buffer_pool_ == nullptr || store_ == nullptr) {
    return FailedPreconditionError(
        "paged extensions are off (no buffer pool configured)");
  }
  std::lock_guard<std::mutex> lock(paged_mutex_);
  auto it = paged_sources_.find(fingerprint);
  if (it != paged_sources_.end()) {
    if (std::shared_ptr<pagestore::PagedSnapshot> live = it->second.lock()) {
      return live;
    }
    paged_sources_.erase(it);
  }
  Result<std::shared_ptr<pagestore::PagedSnapshot>> opened =
      pagestore::OpenSnapshotPaged(store_->SnapshotPath(fingerprint),
                                   buffer_pool_);
  if (!opened.ok()) {
    // Parity with LoadSnapshot: a snapshot failing verification is set
    // aside so the next PutSnapshot of the same extension rewrites it
    // cleanly instead of tripping over the corpse.
    if (opened.status().code() != StatusCode::kNotFound) {
      (void)store_->QuarantineSnapshot(fingerprint);
    }
    return opened.status();
  }
  if ((*opened)->fingerprint() != fingerprint) {
    (void)store_->QuarantineSnapshot(fingerprint);
    return ParseError("snapshot " + store_->SnapshotPath(fingerprint) +
                      ": footer fingerprint does not match its content "
                      "address");
  }
  paged_sources_[fingerprint] = *opened;
  return opened;
}

Result<std::string> SessionManager::CreateSession(
    const std::string& name_hint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return FailedPreconditionError(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " live sessions)");
  }
  // An id is taken if a session is live under it OR a journal from a
  // previous life still exists on disk (creating over it would corrupt
  // the replayable history; `restore` it or `close` it instead).
  auto taken = [this](const std::string& id) {
    return sessions_.count(id) > 0 ||
           (store_ != nullptr && store_->HasSessionJournal(id));
  };
  std::string id = name_hint;
  if (id.empty() || taken(id)) {
    do {
      id = "s" + std::to_string(next_session_++);
    } while (taken(id));
  }
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        MakeSession(id, /*replaying=*/false));
  sessions_.emplace(id, std::move(session));
  if (store_ != nullptr && !options_.worker_id.empty()) {
    // Best effort: a failed stamp costs nothing now and at worst makes
    // the session look unowned to a sibling's recovery.
    (void)store_->ClaimSession(id, options_.worker_id);
  }
  Metrics().sessions_created->Add(1);
  Metrics().live_sessions->Add(1);
  return id;
}

Result<std::shared_ptr<Session>> SessionManager::Get(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return NotFoundError("no session with id '" + id + "'");
  }
  return it->second;
}

std::vector<std::shared_ptr<Session>> SessionManager::Sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> sessions;
  sessions.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) sessions.push_back(session);
  return sessions;
}

size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

Status SessionManager::SubmitRun(const std::shared_ptr<Session>& session,
                                 const Session::RunOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_ + queued_ >=
        options_.max_inflight_runs + options_.max_queued_runs) {
      Metrics().admission_rejects->Add(1);
      return FailedPreconditionError(
          "run admission rejected: " + std::to_string(inflight_) +
          " in flight and " + std::to_string(queued_) +
          " queued (limits " + std::to_string(options_.max_inflight_runs) +
          "/" + std::to_string(options_.max_queued_runs) + "); retry later");
    }
    ++queued_;
    Metrics().queued_runs->Add(1);
  }
  Status begun = session->BeginRun(options);
  if (!begun.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
    Metrics().queued_runs->Add(-1);
    return begun;
  }
  pool_->Submit([this, session, options] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --queued_;
      ++inflight_;
      Metrics().queued_runs->Add(-1);
      Metrics().inflight_runs->Add(1);
    }
    session->ExecuteRun(options);
    std::lock_guard<std::mutex> lock(mutex_);
    --inflight_;
    Metrics().inflight_runs->Add(-1);
  });
  return Status::Ok();
}

Status SessionManager::CloseSession(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return NotFoundError("no session with id '" + id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
    Metrics().sessions_closed->Add(1);
    Metrics().live_sessions->Add(-1);
  }
  // Tombstone first (durable even if the directory removal below is cut
  // short by a crash — recovery sees the close record and GCs), then
  // disarm so the cancel-fallback answers of a dying run are not
  // journaled as expert decisions.
  if (session->persistence() != nullptr) {
    session->persistence()->LogClose();
    session->DisarmPersistence();
  }
  // Close outside the manager lock: it wakes suspended workers, which may
  // call back into the manager's counters.
  session->Close();
  if (store_ != nullptr && store_->HasSessionJournal(id)) {
    DBRE_RETURN_IF_ERROR(store_->RemoveSession(id));
  }
  // The closed session's catalog is gone; drop any canonical extensions it
  // was the last holder of (returning their rows / pool pages) and prune
  // dead paged-source handles. A finished run's task closure may still be
  // unwinding on a worker with its own reference to the session — give it
  // a moment so the sweep observes the true final count. Bounded: a
  // lingering reference only defers the release to the next sweep.
  for (int i = 0; i < 2000 && session.use_count() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  session.reset();
  registry_.Sweep();
  {
    std::lock_guard<std::mutex> paged_lock(paged_mutex_);
    for (auto it = paged_sources_.begin(); it != paged_sources_.end();) {
      it = it->second.expired() ? paged_sources_.erase(it) : std::next(it);
    }
  }
  return Status::Ok();
}

void SessionManager::Shutdown() {
  // The watchdog goes first so it cannot abort sessions that are merely
  // draining below.
  StopWatchdog();
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, session] : sessions_) sessions.push_back(session);
    sessions_.clear();
    Metrics().sessions_closed->Add(static_cast<uint64_t>(sessions.size()));
    Metrics().live_sessions->Add(-static_cast<int64_t>(sessions.size()));
  }
  for (const auto& session : sessions) session->DisarmPersistence();
  for (const auto& session : sessions) session->Close();
  if (pool_) pool_->Wait();
  sessions.clear();
  registry_.Sweep();
}

SessionManager::RecoveryReport SessionManager::RecoverAll() {
  RecoveryReport report;
  if (store_ == nullptr) return report;
  for (const std::string& id : store_->ListSessionIds()) {
    if (!options_.worker_id.empty()) {
      // A session stamped by a different worker is (presumably) live in
      // that process — adopting it here would run the same journal twice.
      // Unowned sessions (pre-sharding data, or a released handoff) are
      // fair game.
      Result<std::string> owner = store_->SessionOwner(id);
      if (owner.ok() && !owner->empty() && *owner != options_.worker_id) {
        continue;
      }
    }
    Result<store::JournalReplay> replay = store_->ReadSessionJournal(id);
    if (!replay.ok()) {
      report.errors.push_back(id + ": " + replay.status().ToString());
      continue;
    }
    report.records_dropped += replay->dropped;
    // Mid-stream corruption: set the bad piece(s) aside and recover from
    // the valid prefix. Only a failed quarantine skips the session — a
    // corrupt segment left in place would replay differently next time.
    if (replay->corrupt) {
      size_t moved = 0;
      Status quarantined = store_->QuarantineJournalCorruption(
          id, replay->corrupt_segment, replay->corrupt_valid_end, &moved);
      if (!quarantined.ok()) {
        report.errors.push_back(id + ": " + quarantined.ToString());
        continue;
      }
      report.segments_quarantined += moved;
    }
    if (HasCloseRecord(*replay)) {
      ++report.sessions_closed;
      Status removed = store_->RemoveSession(id);
      if (!removed.ok()) {
        report.errors.push_back(id + ": " + removed.ToString());
      }
      continue;
    }
    if (replay->records.empty()) {
      // A journal that never got a single valid record holds nothing to
      // resume; clear it so the id becomes usable again.
      store_->RemoveSession(id);
      continue;
    }
    bool resumed_run = false;
    Result<std::shared_ptr<Session>> recovered =
        RecoverFromReplay(id, *replay, &resumed_run);
    if (!recovered.ok()) {
      report.errors.push_back(id + ": " + recovered.status().ToString());
      continue;
    }
    if (!options_.worker_id.empty()) {
      (void)store_->ClaimSession(id, options_.worker_id);
    }
    ++report.sessions_recovered;
    if (resumed_run) ++report.runs_resumed;
  }
  return report;
}

Result<std::shared_ptr<Session>> SessionManager::RecoverSession(
    const std::string& id) {
  if (store_ == nullptr) {
    return FailedPreconditionError("server has no data dir");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.count(id) > 0) {
      return AlreadyExistsError("session '" + id + "' is live");
    }
  }
  if (!store_->HasSessionJournal(id)) {
    return NotFoundError("no journal on disk for session '" + id + "'");
  }
  DBRE_ASSIGN_OR_RETURN(store::JournalReplay replay,
                        store_->ReadSessionJournal(id));
  if (replay.corrupt) {
    DBRE_RETURN_IF_ERROR(store_->QuarantineJournalCorruption(
        id, replay.corrupt_segment, replay.corrupt_valid_end, nullptr));
  }
  if (HasCloseRecord(replay) || replay.records.empty()) {
    return FailedPreconditionError("session '" + id +
                                   "' has no resumable journal");
  }
  bool resumed_run = false;
  Result<std::shared_ptr<Session>> recovered =
      RecoverFromReplay(id, replay, &resumed_run);
  if (recovered.ok() && !options_.worker_id.empty()) {
    // Takeover: restore transfers ownership even from another worker's
    // stamp (migration targets restore sessions the source just sealed).
    (void)store_->ClaimSession(id, options_.worker_id);
  }
  return recovered;
}

Result<store::JournalStats> SessionManager::DetachSession(
    const std::string& id) {
  if (store_ == nullptr) {
    return FailedPreconditionError(
        "server has no data dir; detach needs a journal to hand off");
  }
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return NotFoundError("no session with id '" + id + "'");
    }
    session = it->second;
  }
  SessionPersistence* persist = session->persistence();
  if (persist == nullptr) {
    return FailedPreconditionError("session '" + id +
                                   "' has no journal to hand off");
  }
  if (persist->degraded()) {
    return FailedPreconditionError(
        "session '" + id +
        "' persistence is degraded; its journal is incomplete and a "
        "restore elsewhere would not resume it faithfully");
  }
  // Seal: everything the target will replay must be durably on disk
  // before this worker forgets the session.
  Status synced = persist->Sync();
  if (synced.ok()) synced = persist->last_error();
  if (!synced.ok()) return synced;
  store::JournalStats stats = persist->stats();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end() || it->second != session) {
      return NotFoundError("session '" + id + "' closed during detach");
    }
    sessions_.erase(it);
    Metrics().sessions_detached->Add(1);
    Metrics().live_sessions->Add(-1);
  }
  // No close tombstone — the journal must stay resumable. Disarm before
  // Close so the cancel-fallback answers of a still-running pipeline are
  // never journaled as if an expert gave them (the target re-asks those
  // questions instead).
  session->DisarmPersistence();
  session->Close();
  // Same drain-then-sweep dance as CloseSession: let a finishing run's
  // task closure release its reference so the sweep frees this session's
  // share of the extension cache.
  for (int i = 0; i < 2000 && session.use_count() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  session.reset();
  registry_.Sweep();
  {
    std::lock_guard<std::mutex> paged_lock(paged_mutex_);
    for (auto it = paged_sources_.begin(); it != paged_sources_.end();) {
      it = it->second.expired() ? paged_sources_.erase(it) : std::next(it);
    }
  }
  if (!options_.worker_id.empty()) {
    (void)store_->ReleaseSession(id);
  }
  return stats;
}

Result<std::shared_ptr<Session>> SessionManager::RecoverFromReplay(
    const std::string& id, const store::JournalReplay& replay,
    bool* resumed_run) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      return FailedPreconditionError(
          "session limit reached (" + std::to_string(options_.max_sessions) +
          " live sessions)");
    }
    if (sessions_.count(id) > 0) {
      return AlreadyExistsError("session '" + id + "' is live");
    }
  }
  // Opening the journal re-validates the tail and truncates any torn
  // suffix, so the records applied below and the file agree.
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        MakeSession(id, /*replaying=*/true));

  bool has_run = false;
  Session::RunOptions run_options;
  auto replay_oracle = std::make_shared<ReplayOracle>();
  for (const Json& record : replay.records) {
    std::string type = record.GetString("t");
    if (type == "ddl") {
      DBRE_RETURN_IF_ERROR(
          session->LoadDdl(record.GetString("sql"), nullptr, nullptr));
    } else if (type == "csv") {
      DBRE_ASSIGN_OR_RETURN(uint64_t fingerprint,
                            ParseFingerprint(record.GetString("fp")));
      DBRE_RETURN_IF_ERROR(session->RestoreExtension(
          record.GetString("relation"), fingerprint, nullptr));
    } else if (type == "joins") {
      const Json* joins = record.Find("joins");
      if (joins == nullptr || !joins->IsArray()) {
        return ParseError("journal joins record without a joins array");
      }
      std::vector<EquiJoin> parsed;
      parsed.reserve(joins->array().size());
      for (const Json& value : joins->array()) {
        DBRE_ASSIGN_OR_RETURN(EquiJoin join, ParseJoin(value));
        parsed.push_back(std::move(join));
      }
      DBRE_RETURN_IF_ERROR(session->AddJoins(parsed));
    } else if (type == "mutate") {
      // Mutations re-apply in journal order, so the catalog the rerun
      // below re-engineers is exactly the one live clients last saw.
      // Persistence is still in replaying mode, so this does not
      // re-journal the record.
      DBRE_RETURN_IF_ERROR(
          session->ApplyMutation(record.GetString("sql"), nullptr));
    } else if (type == "run") {
      has_run = true;
      run_options.infer_keys = record.GetBool("infer_keys");
      run_options.close_inds = record.GetBool("close_inds");
      run_options.merge_isa_cycles = record.GetBool("merge_isa_cycles");
      run_options.oracle = record.GetString("oracle", "async");
    } else if (type == "answer") {
      // FIFO across runs: the single rerun below corresponds to the last
      // live run, which replayed earlier runs' answers in this same order.
      PrimeReplayAnswer(replay_oracle.get(), record);
      session->SeedAnswer(record);
    }
    // "create", "phase", "done" and "failed" rebuild no state: the re-run
    // below regenerates phases and the terminal state deterministically.
  }
  session->persistence()->set_replaying(false);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!sessions_.emplace(id, session).second) {
      return AlreadyExistsError("session '" + id + "' is live");
    }
    Metrics().sessions_created->Add(1);
    Metrics().live_sessions->Add(1);
  }
  if (has_run) {
    run_options.replay = replay_oracle;
    DBRE_RETURN_IF_ERROR(SubmitRun(session, run_options));
    *resumed_run = true;
  }
  return session;
}

size_t SessionManager::inflight_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

size_t SessionManager::queued_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

}  // namespace dbre::service
