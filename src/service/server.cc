#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace dbre::service {

// One rendezvous per session: `wait` parks here, the session's listener
// notifies here. Taking the lock before notify_all pairs with the waiter's
// predicate re-check, so a notification between check and sleep is never
// lost.
struct Server::WaitHub {
  std::mutex mutex;
  std::condition_variable changed;

  void Notify() {
    { std::lock_guard<std::mutex> lock(mutex); }
    changed.notify_all();
  }
};

std::shared_ptr<Server::WaitHub> Server::HubFor(
    const std::string& session_id) {
  std::lock_guard<std::mutex> lock(hubs_mutex_);
  std::shared_ptr<WaitHub>& hub = hubs_[session_id];
  if (hub == nullptr) hub = std::make_shared<WaitHub>();
  return hub;
}

void Server::NotifyHub(const std::string& session_id) {
  std::shared_ptr<WaitHub> hub;
  {
    std::lock_guard<std::mutex> lock(hubs_mutex_);
    auto it = hubs_.find(session_id);
    if (it == hubs_.end()) return;
    hub = it->second;
  }
  hub->Notify();
}

void Server::DropHub(const std::string& session_id) {
  std::shared_ptr<WaitHub> hub;
  {
    std::lock_guard<std::mutex> lock(hubs_mutex_);
    auto it = hubs_.find(session_id);
    if (it == hubs_.end()) return;
    hub = std::move(it->second);
    hubs_.erase(it);
  }
  // Waiters hold their own shared_ptr; wake them one last time so they
  // observe the terminal state instead of sleeping out their timeout.
  hub->Notify();
}

void Server::NotifyAllHubs() {
  std::vector<std::shared_ptr<WaitHub>> hubs;
  {
    std::lock_guard<std::mutex> lock(hubs_mutex_);
    hubs.reserve(hubs_.size());
    for (const auto& [id, hub] : hubs_) hubs.push_back(hub);
  }
  for (const auto& hub : hubs) hub->Notify();
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), manager_(options_.sessions) {
  if (std::getenv("DBRE_FAILPOINTS") != nullptr) {
    options_.enable_failpoints = true;
  }
  if (options_.slow_op_ms > 0) {
    obs::Registry::Default().slow_ops()->set_threshold_us(
        options_.slow_op_ms * 1000);
  }
  if (manager_.store() != nullptr) {
    recovery_ = manager_.RecoverAll();
    // Recovered sessions need the same listener `create` installs, or
    // `wait` would sleep through their questions and terminal states.
    for (const auto& session : manager_.Sessions()) {
      session->SetListener([hub = HubFor(session->id())] { hub->Notify(); });
    }
  }
}

std::string Server::HandleLine(const std::string& line) {
  auto request = ParseRequest(line, options_.limits);
  if (!request.ok()) return ErrorResponse(-1, request.status());
  Result<Json> result = Dispatch(*request);
  if (!result.ok()) return ErrorResponse(request->id, result.status());
  return OkResponse(request->id, std::move(result).value());
}

Result<Json> Server::Dispatch(const Request& request) {
  const std::string& cmd = request.cmd;
  if (cmd == "hello") return HandleHello(request);
  if (cmd == "create") return HandleCreate(request);
  if (cmd == "sessions") return HandleSessions();
  if (cmd == "status") return HandleStatus(request);
  if (cmd == "load_ddl") return HandleLoadDdl(request);
  if (cmd == "load_csv") return HandleLoadCsv(request);
  if (cmd == "add_joins") return HandleAddJoins(request);
  if (cmd == "mutate") return HandleMutate(request);
  if (cmd == "run") return HandleRun(request);
  if (cmd == "wait") return HandleWait(request);
  if (cmd == "watch") return HandleWatch(request);
  if (cmd == "questions") return HandleQuestions(request);
  if (cmd == "answer") return HandleAnswer(request);
  if (cmd == "report") return HandleReport(request);
  if (cmd == "summary" || cmd == "export_ddl" || cmd == "export_eer" ||
      cmd == "export_navigation") {
    return HandleExport(request);
  }
  if (cmd == "close") return HandleClose(request);
  if (cmd == "stats") return HandleStats();
  if (cmd == "metrics") return HandleMetrics();
  if (cmd == "trace") return HandleTrace(request);
  if (cmd == "persist") return HandlePersist(request);
  if (cmd == "restore") return HandleRestore(request);
  if (cmd == "detach") return HandleDetach(request);
  if (cmd == "failpoint") return HandleFailpoint(request);
  if (cmd == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    NotifyAllHubs();
    Json result = Json::MakeObject();
    result.Set("bye", Json::Bool(true));
    return result;
  }
  return InvalidArgumentError("unknown command '" + cmd + "'");
}

Result<std::shared_ptr<Session>> Server::SessionParam(
    const Request& request) {
  std::string id = request.params.GetString("session");
  if (id.empty()) {
    return InvalidArgumentError("command '" + request.cmd +
                                "' needs a \"session\" field");
  }
  return manager_.Get(id);
}

Result<Json> Server::HandleHello(const Request& request) {
  const Json* protocol = request.params.Find("protocol");
  if (protocol != nullptr) {
    if (!protocol->IsInt()) {
      return InvalidArgumentError("hello \"protocol\" must be an integer");
    }
    if (protocol->AsInt() != kProtocolVersion) {
      return FailedPreconditionError(
          "protocol version mismatch: client speaks " +
          std::to_string(protocol->AsInt()) + ", this server speaks " +
          std::to_string(kProtocolVersion));
    }
  }
  Json result = Json::MakeObject();
  result.Set("server", Json::Str("dbred"));
  result.Set("protocol", Json::Int(kProtocolVersion));
  result.Set("minor", Json::Int(kProtocolMinorVersion));
  if (!options_.sessions.worker_id.empty()) {
    result.Set("worker", Json::Str(options_.sessions.worker_id));
  }
  result.Set("sessions",
             Json::Int(static_cast<int64_t>(manager_.session_count())));
  // A client announcing the session it wants (reconnect, router routing)
  // learns whether that session is live here without a second round trip.
  std::string session = request.params.GetString("session");
  if (!session.empty()) {
    result.Set("session", Json::Str(session));
    result.Set("session_here", Json::Bool(manager_.Get(session).ok()));
  }
  return result;
}

Result<Json> Server::HandleCreate(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(
      std::string id,
      manager_.CreateSession(request.params.GetString("name")));
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session, manager_.Get(id));
  session->SetListener([hub = HubFor(id)] { hub->Notify(); });
  Json result = Json::MakeObject();
  result.Set("session", Json::Str(id));
  return result;
}

Result<Json> Server::HandleSessions() {
  Json list = Json::MakeArray();
  for (const auto& session : manager_.Sessions()) {
    Json entry = Json::MakeObject();
    entry.Set("session", Json::Str(session->id()));
    entry.Set("state", Json::Str(Session::StateName(session->state())));
    entry.Set("pending", Json::Int(static_cast<int64_t>(
                             session->oracle()->Pending().size())));
    list.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result.Set("sessions", std::move(list));
  return result;
}

Result<Json> Server::HandleStatus(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  Json result = Json::MakeObject();
  result.Set("session", Json::Str(session->id()));
  result.Set("state", Json::Str(Session::StateName(session->state())));
  result.Set("phase", Json::Str(session->phase()));
  result.Set("relations",
             Json::Int(static_cast<int64_t>(session->relation_count())));
  result.Set("joins",
             Json::Int(static_cast<int64_t>(session->join_count())));
  result.Set("pending_questions",
             Json::Int(static_cast<int64_t>(
                 session->oracle()->Pending().size())));
  result.Set("memory_bytes",
             Json::Int(static_cast<int64_t>(session->memory_bytes())));
  if (session->state() == Session::State::kFailed) {
    result.Set("error", Json::Str(session->last_error().ToString()));
  }
  SessionPersistence* persist = session->persistence();
  if (persist != nullptr) {
    result.Set("persist", Json::Str(persist->degraded() ? "degraded" : "ok"));
    if (persist->degraded()) {
      result.Set("persist_error",
                 Json::Str(persist->last_error().ToString()));
    }
  }
  return result;
}

Result<Json> Server::HandleLoadDdl(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  const Json* sql = request.params.Find("sql");
  if (sql == nullptr || !sql->IsString()) {
    return InvalidArgumentError("load_ddl needs a string \"sql\" field");
  }
  size_t relations = 0;
  size_t rows = 0;
  DBRE_RETURN_IF_ERROR(session->LoadDdl(sql->AsString(), &relations, &rows));
  Json result = Json::MakeObject();
  result.Set("relations", Json::Int(static_cast<int64_t>(relations)));
  result.Set("rows", Json::Int(static_cast<int64_t>(rows)));
  return result;
}

Result<Json> Server::HandleLoadCsv(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  std::string relation = request.params.GetString("relation");
  const Json* csv = request.params.Find("csv");
  if (relation.empty() || csv == nullptr || !csv->IsString()) {
    return InvalidArgumentError(
        "load_csv needs \"relation\" and string \"csv\" fields");
  }
  size_t rows = 0;
  DBRE_RETURN_IF_ERROR(session->LoadCsv(relation, csv->AsString(), &rows));
  Json result = Json::MakeObject();
  result.Set("rows", Json::Int(static_cast<int64_t>(rows)));
  return result;
}

Result<Json> Server::HandleAddJoins(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  const Json* joins = request.params.Find("joins");
  if (joins == nullptr || !joins->IsArray()) {
    return InvalidArgumentError("add_joins needs a \"joins\" array");
  }
  std::vector<EquiJoin> parsed;
  parsed.reserve(joins->array().size());
  for (const Json& value : joins->array()) {
    DBRE_ASSIGN_OR_RETURN(EquiJoin join, ParseJoin(value));
    parsed.push_back(std::move(join));
  }
  DBRE_RETURN_IF_ERROR(session->AddJoins(parsed));
  Json result = Json::MakeObject();
  result.Set("added", Json::Int(static_cast<int64_t>(parsed.size())));
  result.Set("total", Json::Int(static_cast<int64_t>(session->join_count())));
  return result;
}

Result<Json> Server::HandleMutate(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  const Json* sql = request.params.Find("sql");
  if (sql == nullptr || !sql->IsString()) {
    return InvalidArgumentError("mutate needs a string \"sql\" field");
  }
  sql::DmlStats stats;
  DBRE_RETURN_IF_ERROR(session->ApplyMutation(sql->AsString(), &stats));
  Json tables = Json::MakeArray();
  for (const sql::TableMutation& mutation : stats.tables) {
    Json entry = Json::MakeObject();
    entry.Set("table", Json::Str(mutation.table));
    entry.Set("inserted", Json::Int(static_cast<int64_t>(mutation.inserted)));
    entry.Set("updated", Json::Int(static_cast<int64_t>(mutation.updated)));
    entry.Set("deleted", Json::Int(static_cast<int64_t>(mutation.deleted)));
    entry.Set("structural", Json::Bool(mutation.structural));
    tables.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result.Set("statements", Json::Int(static_cast<int64_t>(stats.statements)));
  result.Set("inserted",
             Json::Int(static_cast<int64_t>(stats.rows_inserted)));
  result.Set("updated", Json::Int(static_cast<int64_t>(stats.rows_updated)));
  result.Set("deleted", Json::Int(static_cast<int64_t>(stats.rows_deleted)));
  result.Set("tables", std::move(tables));
  result.Set("state", Json::Str(Session::StateName(session->state())));
  return result;
}

Result<Json> Server::HandleRun(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  Session::RunOptions options;
  options.infer_keys = request.params.GetBool("infer_keys");
  options.close_inds = request.params.GetBool("close_inds");
  options.merge_isa_cycles = request.params.GetBool("merge_isa_cycles");
  options.oracle = request.params.GetString("oracle", "async");
  DBRE_RETURN_IF_ERROR(manager_.SubmitRun(session, options));
  Json result = Json::MakeObject();
  result.Set("state", Json::Str("running"));
  return result;
}

Result<Json> Server::HandleWait(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  std::string what = request.params.GetString("for", "question");
  if (what != "question" && what != "finished") {
    return InvalidArgumentError(
        "wait needs \"for\": question or finished");
  }
  int64_t timeout_ms = request.params.GetInt("timeout_ms", 10'000);
  timeout_ms = std::clamp<int64_t>(timeout_ms, 0, options_.max_wait_ms);

  auto terminal = [&session] {
    Session::State state = session->state();
    return state == Session::State::kDone ||
           state == Session::State::kFailed ||
           state == Session::State::kClosed;
  };
  auto ready = [&] {
    if (shutdown_requested() || terminal()) return true;
    return what == "question" && !session->oracle()->Pending().empty();
  };

  std::shared_ptr<WaitHub> hub = HubFor(session->id());
  {
    std::unique_lock<std::mutex> lock(hub->mutex);
    hub->changed.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          ready);
  }

  Json result = Json::MakeObject();
  result.Set("ready", Json::Bool(ready()));
  result.Set("state", Json::Str(Session::StateName(session->state())));
  result.Set("pending", Json::Int(static_cast<int64_t>(
                            session->oracle()->Pending().size())));
  return result;
}

Result<Json> Server::HandleWatch(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  uint64_t after_seq = 0;
  const Json* after = request.params.Find("after_seq");
  if (after != nullptr) {
    if (!after->IsInt() || after->AsInt() < 0) {
      return InvalidArgumentError(
          "watch \"after_seq\" must be a non-negative integer");
    }
    after_seq = static_cast<uint64_t>(after->AsInt());
  }
  int64_t timeout_ms = request.params.GetInt("timeout_ms", 10'000);
  timeout_ms = std::clamp<int64_t>(timeout_ms, 0, options_.max_wait_ms);

  // Long-poll like `wait`: park until an event lands past the client's
  // cursor. A closed session still drains whatever is buffered, so a
  // watcher sees the final events instead of hanging out its timeout.
  auto ready = [&] {
    if (shutdown_requested()) return true;
    if (session->state() == Session::State::kClosed) return true;
    return session->event_seq() > after_seq;
  };
  std::shared_ptr<WaitHub> hub = HubFor(session->id());
  {
    std::unique_lock<std::mutex> lock(hub->mutex);
    hub->changed.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          ready);
  }

  std::vector<Json> events = session->EventsSince(after_seq);
  uint64_t next_seq = after_seq;
  Json list = Json::MakeArray();
  for (Json& event : events) {
    uint64_t seq = static_cast<uint64_t>(event.GetInt("seq"));
    next_seq = std::max(next_seq, seq);
    list.Append(std::move(event));
  }
  // Events older than the ring's capacity are gone; advance the cursor
  // past the gap so a lagging watcher cannot spin on a hole forever.
  next_seq = std::max(next_seq, session->event_seq());
  Json result = Json::MakeObject();
  result.Set("events", std::move(list));
  result.Set("next_seq", Json::Int(static_cast<int64_t>(next_seq)));
  result.Set("state", Json::Str(Session::StateName(session->state())));
  return result;
}

Result<Json> Server::HandleQuestions(const Request& request) {
  std::vector<std::shared_ptr<Session>> sessions;
  if (request.params.Find("session") != nullptr) {
    DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                          SessionParam(request));
    sessions.push_back(std::move(session));
  } else {
    sessions = manager_.Sessions();
  }
  Json list = Json::MakeArray();
  for (const auto& session : sessions) {
    for (const PendingQuestion& question : session->oracle()->Pending()) {
      list.Append(QuestionToJson(session->id(), question));
    }
  }
  Json result = Json::MakeObject();
  result.Set("questions", std::move(list));
  return result;
}

Result<Json> Server::HandleAnswer(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  const Json* qid = request.params.Find("question");
  if (qid == nullptr || !qid->IsInt() || qid->AsInt() < 0) {
    return InvalidArgumentError(
        "answer needs an integer \"question\" id");
  }
  DBRE_RETURN_IF_ERROR(session->oracle()->AnswerWith(
      static_cast<uint64_t>(qid->AsInt()),
      [&request](const PendingQuestion& question) {
        return ParseAnswer(question.kind, request.params);
      }));
  Json result = Json::MakeObject();
  result.Set("answered", Json::Int(qid->AsInt()));
  return result;
}

Result<Json> Server::HandleReport(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  bool timings = request.params.GetBool("timings", false);
  DBRE_ASSIGN_OR_RETURN(std::string report, session->ReportJson(timings));
  Json result = Json::MakeObject();
  result.Set("report", Json::Str(std::move(report)));
  return result;
}

Result<Json> Server::HandleExport(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  Json result = Json::MakeObject();
  if (request.cmd == "summary") {
    DBRE_ASSIGN_OR_RETURN(std::string text, session->SummaryText());
    result.Set("summary", Json::Str(std::move(text)));
  } else if (request.cmd == "export_ddl") {
    DBRE_ASSIGN_OR_RETURN(std::string ddl, session->ExportDdl());
    result.Set("ddl", Json::Str(std::move(ddl)));
  } else if (request.cmd == "export_eer") {
    DBRE_ASSIGN_OR_RETURN(std::string dot, session->ExportEerDot());
    result.Set("dot", Json::Str(std::move(dot)));
  } else {
    DBRE_ASSIGN_OR_RETURN(std::string dot, session->ExportNavigationDot());
    result.Set("dot", Json::Str(std::move(dot)));
  }
  return result;
}

Result<Json> Server::HandleClose(const Request& request) {
  std::string id = request.params.GetString("session");
  if (id.empty()) {
    return InvalidArgumentError("close needs a \"session\" field");
  }
  DBRE_RETURN_IF_ERROR(manager_.CloseSession(id));
  DropHub(id);  // wakes remaining waiters, then forgets the rendezvous
  Json result = Json::MakeObject();
  result.Set("closed", Json::Str(id));
  return result;
}

Result<Json> Server::HandleStats() {
  ExtensionRegistry::Stats registry = manager_.registry()->stats();
  Json cache = Json::MakeObject();
  cache.Set("lookups", Json::Int(static_cast<int64_t>(registry.lookups)));
  cache.Set("hits", Json::Int(static_cast<int64_t>(registry.hits)));
  cache.Set("entries", Json::Int(static_cast<int64_t>(registry.entries)));
  cache.Set("evictions",
            Json::Int(static_cast<int64_t>(registry.evictions)));
  cache.Set("releases", Json::Int(static_cast<int64_t>(registry.releases)));
  cache.Set("resident_bytes",
            Json::Int(static_cast<int64_t>(registry.resident_bytes)));
  Json result = Json::MakeObject();
  result.Set("sessions",
             Json::Int(static_cast<int64_t>(manager_.session_count())));
  result.Set("inflight_runs",
             Json::Int(static_cast<int64_t>(manager_.inflight_runs())));
  result.Set("queued_runs",
             Json::Int(static_cast<int64_t>(manager_.queued_runs())));
  result.Set("memory_used_bytes",
             Json::Int(static_cast<int64_t>(manager_.budget()->used())));
  result.Set("extension_cache", std::move(cache));
  if (manager_.buffer_pool() != nullptr) {
    pagestore::BufferPool::Stats pool = manager_.buffer_pool()->stats();
    Json pagestore = Json::MakeObject();
    pagestore.Set("budget_bytes",
                  Json::Int(static_cast<int64_t>(pool.budget_bytes)));
    pagestore.Set("resident_bytes",
                  Json::Int(static_cast<int64_t>(pool.resident_bytes)));
    pagestore.Set("frames", Json::Int(static_cast<int64_t>(pool.frames)));
    pagestore.Set("attached_files",
                  Json::Int(static_cast<int64_t>(pool.attached_files)));
    pagestore.Set("hits", Json::Int(static_cast<int64_t>(pool.hits)));
    pagestore.Set("misses", Json::Int(static_cast<int64_t>(pool.misses)));
    pagestore.Set("evictions",
                  Json::Int(static_cast<int64_t>(pool.evictions)));
    pagestore.Set("pins", Json::Int(static_cast<int64_t>(pool.pins)));
    pagestore.Set("pinned_pages",
                  Json::Int(static_cast<int64_t>(pool.pinned_pages)));
    result.Set("pagestore", std::move(pagestore));
  }
  const obs::SlowOpLog* slow = obs::Registry::Default().slow_ops();
  Json obs_block = Json::MakeObject();
  obs_block.Set("slow_op_threshold_ms",
                Json::Int(slow->threshold_us() > 0
                              ? slow->threshold_us() / 1000
                              : 0));
  obs_block.Set("slow_ops_total",
                Json::Int(static_cast<int64_t>(slow->total())));
  Json slow_list = Json::MakeArray();
  for (const obs::SlowOp& op : slow->Snapshot()) {
    Json entry = Json::MakeObject();
    entry.Set("op", Json::Str(op.op));
    if (!op.detail.empty()) entry.Set("detail", Json::Str(op.detail));
    entry.Set("duration_us", Json::Int(op.duration_us));
    entry.Set("at_unix_us", Json::Int(op.at_unix_us));
    slow_list.Append(std::move(entry));
  }
  obs_block.Set("slow_ops", std::move(slow_list));
  result.Set("obs", std::move(obs_block));
  if (manager_.store() != nullptr) {
    Json store = Json::MakeObject();
    store.Set("data_dir", Json::Str(manager_.store()->root()));
    store.Set("sessions_recovered",
              Json::Int(static_cast<int64_t>(recovery_.sessions_recovered)));
    store.Set("runs_resumed",
              Json::Int(static_cast<int64_t>(recovery_.runs_resumed)));
    store.Set("records_dropped",
              Json::Int(static_cast<int64_t>(recovery_.records_dropped)));
    store.Set("segments_quarantined",
              Json::Int(static_cast<int64_t>(recovery_.segments_quarantined)));
    int64_t degraded = 0;
    for (const auto& session : manager_.Sessions()) {
      SessionPersistence* persist = session->persistence();
      if (persist != nullptr && persist->degraded()) ++degraded;
    }
    store.Set("degraded_sessions", Json::Int(degraded));
    result.Set("store", std::move(store));
  }
  return result;
}

Result<Json> Server::HandleMetrics() {
  Json result = Json::MakeObject();
  result.Set("metrics",
             Json::Str(obs::Registry::Default().RenderPrometheus()));
  return result;
}

Result<Json> Server::HandleTrace(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  const obs::TraceRing& ring = session->trace();
  Json spans = Json::MakeArray();
  for (const obs::SpanRecord& span : ring.Snapshot()) {
    Json entry = Json::MakeObject();
    entry.Set("name", Json::Str(span.name));
    if (!span.detail.empty()) entry.Set("detail", Json::Str(span.detail));
    entry.Set("start_unix_us", Json::Int(span.start_unix_us));
    entry.Set("duration_us", Json::Int(span.duration_us));
    spans.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result.Set("session", Json::Str(session->id()));
  result.Set("spans", std::move(spans));
  result.Set("dropped", Json::Int(static_cast<int64_t>(ring.dropped())));
  return result;
}

Result<Json> Server::HandlePersist(const Request& request) {
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        SessionParam(request));
  SessionPersistence* persist = session->persistence();
  if (persist == nullptr) {
    return FailedPreconditionError(
        "server has no data dir; nothing is persisted");
  }
  Status synced = Status::Ok();
  if (!persist->degraded()) {
    synced = persist->Sync();
    if (synced.ok()) synced = persist->last_error();
  }
  store::JournalStats stats = persist->stats();
  Json result = Json::MakeObject();
  result.Set("records", Json::Int(static_cast<int64_t>(stats.records)));
  result.Set("bytes", Json::Int(static_cast<int64_t>(stats.bytes)));
  result.Set("segments", Json::Int(static_cast<int64_t>(stats.segments)));
  result.Set("syncs", Json::Int(static_cast<int64_t>(stats.syncs)));
  result.Set("retries", Json::Int(static_cast<int64_t>(stats.retries)));
  result.Set("fsync_failures",
             Json::Int(static_cast<int64_t>(stats.fsync_failures)));
  if (persist->degraded()) {
    // Degraded is a reportable state, not a protocol error: the session
    // is healthy, only its durability is gone.
    result.Set("degraded", Json::Bool(true));
    result.Set("error", Json::Str(persist->last_error().ToString()));
  } else if (!synced.ok()) {
    return synced;
  }
  return result;
}

Result<Json> Server::HandleFailpoint(const Request& request) {
  if (!options_.enable_failpoints) {
    return FailedPreconditionError(
        "fault injection is disabled on this server; start it with "
        "--enable-failpoints (or with DBRE_FAILPOINTS set) to use the "
        "failpoint command");
  }
  Failpoints& fps = Failpoints::Instance();
  const Json* seed = request.params.Find("seed");
  if (seed != nullptr) {
    if (!seed->IsInt()) {
      return InvalidArgumentError("failpoint \"seed\" must be an integer");
    }
    fps.SetSeed(static_cast<uint64_t>(seed->AsInt()));
  }
  std::string clear = request.params.GetString("clear");
  if (!clear.empty()) {
    if (clear == "*") {
      fps.DisarmAll();
    } else if (!fps.Disarm(clear)) {
      return NotFoundError("no armed failpoint '" + clear + "'");
    }
  }
  std::string set = request.params.GetString("set");
  if (!set.empty()) {
    DBRE_RETURN_IF_ERROR(fps.ArmSpecs(set));
  }
  Json list = Json::MakeArray();
  for (const Failpoints::PointState& point : fps.List()) {
    Json entry = Json::MakeObject();
    entry.Set("point", Json::Str(point.point));
    entry.Set("spec", Json::Str(point.spec));
    entry.Set("hits", Json::Int(static_cast<int64_t>(point.hits)));
    entry.Set("triggers", Json::Int(static_cast<int64_t>(point.triggers)));
    list.Append(std::move(entry));
  }
  Json result = Json::MakeObject();
  result.Set("failpoints", std::move(list));
  return result;
}

Result<Json> Server::HandleRestore(const Request& request) {
  std::string id = request.params.GetString("session");
  if (id.empty()) {
    return InvalidArgumentError("restore needs a \"session\" field");
  }
  DBRE_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                        manager_.RecoverSession(id));
  session->SetListener([hub = HubFor(id)] { hub->Notify(); });
  Json result = Json::MakeObject();
  result.Set("session", Json::Str(id));
  result.Set("state", Json::Str(Session::StateName(session->state())));
  return result;
}

Result<Json> Server::HandleDetach(const Request& request) {
  std::string id = request.params.GetString("session");
  if (id.empty()) {
    return InvalidArgumentError("detach needs a \"session\" field");
  }
  DBRE_ASSIGN_OR_RETURN(store::JournalStats stats,
                        manager_.DetachSession(id));
  DropHub(id);
  Json result = Json::MakeObject();
  result.Set("detached", Json::Str(id));
  result.Set("journal_records",
             Json::Int(static_cast<int64_t>(stats.records)));
  result.Set("journal_bytes", Json::Int(static_cast<int64_t>(stats.bytes)));
  return result;
}

}  // namespace dbre::service
