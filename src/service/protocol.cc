#include "service/protocol.h"

#include <utility>

namespace dbre::service {
namespace {

Json StringArray(const std::vector<std::string>& values) {
  Json array = Json::MakeArray();
  for (const std::string& value : values) array.Append(Json::Str(value));
  return array;
}

Json AttributeSetToJson(const AttributeSet& set) {
  return StringArray(set.names());
}

Json FdToJson(const FunctionalDependency& fd) {
  Json object = Json::MakeObject();
  object.Set("relation", Json::Str(fd.relation));
  object.Set("lhs", AttributeSetToJson(fd.lhs));
  object.Set("rhs", AttributeSetToJson(fd.rhs));
  return object;
}

Json QualifiedToJson(const QualifiedAttributes& qa) {
  Json object = Json::MakeObject();
  object.Set("relation", Json::Str(qa.relation));
  object.Set("attributes", AttributeSetToJson(qa.attributes));
  return object;
}

Result<std::vector<std::string>> ParseStringArray(const Json* value,
                                                  const char* what) {
  if (value == nullptr || !value->IsArray()) {
    return InvalidArgumentError(std::string(what) +
                                " must be an array of strings");
  }
  std::vector<std::string> out;
  out.reserve(value->array().size());
  for (const Json& element : value->array()) {
    if (!element.IsString()) {
      return InvalidArgumentError(std::string(what) +
                                  " must be an array of strings");
    }
    out.push_back(element.AsString());
  }
  return out;
}

}  // namespace

Result<Request> ParseRequest(const std::string& line,
                             const ProtocolLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    return InvalidArgumentError(
        "request line of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(limits.max_line_bytes) +
        "-byte limit");
  }
  DBRE_ASSIGN_OR_RETURN(Json parsed,
                        Json::Parse(line, limits.max_json_depth));
  if (!parsed.IsObject()) {
    return InvalidArgumentError("request must be a JSON object");
  }
  Request request;
  const Json* id = parsed.Find("id");
  if (id != nullptr && id->IsNumber()) request.id = id->AsInt(-1);
  const Json* cmd = parsed.Find("cmd");
  if (cmd == nullptr || !cmd->IsString() || cmd->AsString().empty()) {
    return InvalidArgumentError("request is missing the \"cmd\" field");
  }
  request.cmd = cmd->AsString();
  request.params = std::move(parsed);
  return request;
}

std::string OkResponse(int64_t id, Json result) {
  Json response = Json::MakeObject();
  response.Set("id", id >= 0 ? Json::Int(id) : Json::Null());
  response.Set("ok", Json::Bool(true));
  response.Set("result", std::move(result));
  return response.Dump();
}

std::string ErrorResponse(int64_t id, const Status& status) {
  Json error = Json::MakeObject();
  error.Set("code", Json::Str(StatusCodeName(status.code())));
  error.Set("message", Json::Str(status.message()));
  Json response = Json::MakeObject();
  response.Set("id", id >= 0 ? Json::Int(id) : Json::Null());
  response.Set("ok", Json::Bool(false));
  response.Set("error", std::move(error));
  return response.Dump();
}

Json QuestionToJson(const std::string& session_id,
                    const PendingQuestion& question) {
  Json object = Json::MakeObject();
  object.Set("session", Json::Str(session_id));
  object.Set("qid", Json::Int(static_cast<int64_t>(question.id)));
  object.Set("kind", Json::Str(PendingQuestionKindName(question.kind)));
  object.Set("subject", Json::Str(question.subject));
  switch (question.kind) {
    case PendingQuestion::Kind::kNei: {
      object.Set("join", JoinToJson(question.join));
      Json counts = Json::MakeObject();
      counts.Set("left",
                 Json::Int(static_cast<int64_t>(question.counts.n_left)));
      counts.Set("right",
                 Json::Int(static_cast<int64_t>(question.counts.n_right)));
      counts.Set("join",
                 Json::Int(static_cast<int64_t>(question.counts.n_join)));
      object.Set("counts", std::move(counts));
      break;
    }
    case PendingQuestion::Kind::kEnforceFd:
      object.Set("fd", FdToJson(question.fd));
      if (question.g3_error >= 0.0) {
        object.Set("g3_error", Json::Number(question.g3_error));
      }
      break;
    case PendingQuestion::Kind::kValidateFd:
    case PendingQuestion::Kind::kNameFd:
      object.Set("fd", FdToJson(question.fd));
      break;
    case PendingQuestion::Kind::kHiddenObject:
    case PendingQuestion::Kind::kNameHidden:
      object.Set("candidate", QualifiedToJson(question.candidate));
      break;
  }
  return object;
}

Result<OracleAnswer> ParseAnswer(PendingQuestion::Kind kind,
                                 const Json& params) {
  OracleAnswer answer;
  switch (kind) {
    case PendingQuestion::Kind::kNei: {
      std::string action = params.GetString("action");
      if (action == "conceptualize") {
        answer.nei.action = NeiAction::kConceptualize;
        answer.nei.relation_name = params.GetString("name");
      } else if (action == "force_left") {
        answer.nei.action = NeiAction::kForceLeftInRight;
      } else if (action == "force_right") {
        answer.nei.action = NeiAction::kForceRightInLeft;
      } else if (action == "ignore") {
        answer.nei.action = NeiAction::kIgnore;
      } else {
        return InvalidArgumentError(
            "nei answer needs \"action\": conceptualize, force_left, "
            "force_right or ignore (got '" + action + "')");
      }
      return answer;
    }
    case PendingQuestion::Kind::kEnforceFd:
    case PendingQuestion::Kind::kValidateFd:
    case PendingQuestion::Kind::kHiddenObject: {
      const Json* value = params.Find("value");
      if (value == nullptr || !value->IsBool()) {
        return InvalidArgumentError(
            "yes/no answer needs a boolean \"value\" field");
      }
      answer.yes = value->AsBool();
      return answer;
    }
    case PendingQuestion::Kind::kNameFd:
    case PendingQuestion::Kind::kNameHidden: {
      const Json* name = params.Find("name");
      if (name == nullptr || !name->IsString()) {
        return InvalidArgumentError(
            "naming answer needs a string \"name\" field (may be empty to "
            "derive automatically)");
      }
      answer.name = name->AsString();
      return answer;
    }
  }
  return InternalError("unhandled question kind");
}

Result<EquiJoin> ParseJoin(const Json& value) {
  if (!value.IsObject()) {
    return InvalidArgumentError("join must be a JSON object");
  }
  EquiJoin join;
  join.left_relation = value.GetString("left");
  join.right_relation = value.GetString("right");
  DBRE_ASSIGN_OR_RETURN(join.left_attributes,
                        ParseStringArray(value.Find("left_attrs"),
                                         "join.left_attrs"));
  DBRE_ASSIGN_OR_RETURN(join.right_attributes,
                        ParseStringArray(value.Find("right_attrs"),
                                         "join.right_attrs"));
  DBRE_RETURN_IF_ERROR(join.Validate());
  return join;
}

Json JoinToJson(const EquiJoin& join) {
  Json object = Json::MakeObject();
  object.Set("left", Json::Str(join.left_relation));
  object.Set("left_attrs", StringArray(join.left_attributes));
  object.Set("right", Json::Str(join.right_relation));
  object.Set("right_attrs", StringArray(join.right_attributes));
  return object;
}

void PrimeReplayAnswer(ReplayOracle* oracle, const Json& record) {
  std::string kind = record.GetString("kind");
  std::string subject = record.GetString("subject");
  if (kind == "nei") {
    NeiDecision decision;
    std::string action = record.GetString("action", "ignore");
    if (action == "conceptualize") {
      decision.action = NeiAction::kConceptualize;
    } else if (action == "force_left") {
      decision.action = NeiAction::kForceLeftInRight;
    } else if (action == "force_right") {
      decision.action = NeiAction::kForceRightInLeft;
    } else {
      decision.action = NeiAction::kIgnore;
    }
    decision.relation_name = record.GetString("name");
    oracle->RecordNei(subject, std::move(decision));
  } else if (kind == "enforce_fd") {
    oracle->RecordEnforceFd(subject, record.GetBool("value"));
  } else if (kind == "validate_fd") {
    oracle->RecordValidateFd(subject, record.GetBool("value"));
  } else if (kind == "hidden_object") {
    oracle->RecordHiddenObject(subject, record.GetBool("value"));
  } else if (kind == "name_fd") {
    oracle->RecordFdRelationName(subject, record.GetString("name"));
  } else if (kind == "name_hidden") {
    oracle->RecordHiddenRelationName(subject, record.GetString("name"));
  }
}

}  // namespace dbre::service
