// The asynchronous expert-oracle bridge between a running pipeline and
// remote clients.
//
// The paper's method is interactive: every `ExpertOracle` call is a point
// where "an expert user has to validate the presumptions on the elicited
// dependencies". In the dbred service the pipeline runs on a worker thread;
// an AsyncOracle turns each decision point into a *pending question*
// record (id, kind, subject, full context — the join and its three
// valuations, the failed FD and its g3 error, ...) and suspends that
// worker until:
//
//   * any client answers the question (`Answer`), or
//   * the configured timeout elapses, or
//   * the session is cancelled (`CancelAll`),
//
// in the latter two cases answering with the configured fallback oracle
// (`DefaultOracle` unless overridden), exactly as an unattended run would.
// Questions live in the oracle, not in any connection: a client can
// disconnect mid-question and a different client (or the same one,
// reconnected) can answer later, and any number of observers can list the
// pending set.
#ifndef DBRE_SERVICE_ASYNC_ORACLE_H_
#define DBRE_SERVICE_ASYNC_ORACLE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/oracle.h"

namespace dbre::service {

// One suspended decision point. `kind` selects which context fields are
// meaningful; `subject` is always the textual form used by ScriptedOracle
// keys, so a client can drive a scripted session over the wire.
struct PendingQuestion {
  enum class Kind {
    kNei,           // DecideNonEmptyIntersection
    kEnforceFd,     // EnforceFailedFd (g3_error < 0 for the blind overload)
    kValidateFd,    // ValidateFd
    kHiddenObject,  // ConceptualizeHiddenObject
    kNameFd,        // NameRelationForFd
    kNameHidden,    // NameHiddenObjectRelation
  };

  uint64_t id = 0;
  Kind kind = Kind::kNei;
  std::string subject;

  EquiJoin join;                // kNei
  JoinCounts counts;            // kNei
  FunctionalDependency fd;      // kEnforceFd / kValidateFd / kNameFd
  double g3_error = -1.0;       // kEnforceFd; negative = not quantified
  QualifiedAttributes candidate;  // kHiddenObject / kNameHidden
};

const char* PendingQuestionKindName(PendingQuestion::Kind kind);

// A client's answer; which field is read depends on the question's kind.
struct OracleAnswer {
  NeiDecision nei;           // kNei
  bool yes = false;          // kEnforceFd / kValidateFd / kHiddenObject
  std::string name;          // kNameFd / kNameHidden
};

class AsyncOracle : public ExpertOracle {
 public:
  struct Options {
    // How long a question may stay unanswered before the fallback oracle
    // answers it; negative = wait forever.
    int64_t timeout_ms = -1;
    // Answers timed-out / cancelled questions; not owned; DefaultOracle
    // semantics when null.
    ExpertOracle* fallback = nullptr;
  };

  // How each asked question eventually resolved.
  struct Counters {
    uint64_t asked = 0;
    uint64_t answered = 0;    // resolved by a client
    uint64_t timed_out = 0;   // resolved by the fallback after the timeout
    uint64_t cancelled = 0;   // resolved by the fallback via CancelAll
  };

  AsyncOracle();
  explicit AsyncOracle(Options options);
  ~AsyncOracle() override;

  // Snapshot of the questions currently awaiting an answer, in ask order.
  std::vector<PendingQuestion> Pending() const;

  Counters counters() const;

  // Resolves question `id` with `answer` and wakes its suspended worker.
  // kNotFound if the id was never asked; kFailedPrecondition if it was
  // already resolved.
  Status Answer(uint64_t id, OracleAnswer answer);

  // Race-free variant for protocol handlers: `make` is invoked under the
  // oracle lock with the still-pending question (so the answer can be
  // parsed against its kind) and its result resolves the question; its
  // error leaves the question pending. Same id errors as Answer.
  Status AnswerWith(
      uint64_t id,
      const std::function<Result<OracleAnswer>(const PendingQuestion&)>&
          make);

  // Resolves every pending question with the fallback answer and makes all
  // *future* questions resolve the same way immediately. Used on session
  // close so a suspended pipeline cannot outlive its session.
  void CancelAll();

  // Blocks until at least one question is pending (returns true) or
  // `timeout_ms` elapses (false). timeout_ms < 0 waits forever. Lets a
  // server thread long-poll instead of busy-polling `Pending`.
  bool WaitForQuestion(int64_t timeout_ms) const;

  // Fires (unlocked) whenever a question is asked or resolved; used by the
  // server to wake protocol-level waiters.
  void SetListener(std::function<void()> listener);

  // ExpertOracle — each call suspends the calling thread as described
  // above.
  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override;
  bool EnforceFailedFd(const FunctionalDependency& fd) override;
  bool EnforceFailedFd(const FunctionalDependency& fd,
                       double g3_error) override;
  bool ValidateFd(const FunctionalDependency& fd) override;
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override;
  std::string NameRelationForFd(const FunctionalDependency& fd) override;
  std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source) override;

 private:
  struct Slot {
    PendingQuestion question;
    bool resolved = false;
    bool by_client = false;
    OracleAnswer answer;
  };

  // Publishes `question`, blocks until resolution, and returns the client
  // answer (use_fallback=false) or signals the caller to consult the
  // fallback oracle (use_fallback=true).
  OracleAnswer Ask(PendingQuestion question, bool* use_fallback);

  ExpertOracle* Fallback();
  void Notify();  // invokes listener_ copy outside the lock

  Options options_;
  DefaultOracle default_fallback_;

  mutable std::mutex mutex_;
  mutable std::condition_variable changed_;  // asked / resolved / cancelled
  uint64_t next_id_ = 1;
  bool cancelled_ = false;
  std::map<uint64_t, Slot> pending_;  // ordered: ids are ask order
  std::set<uint64_t> resolved_ids_;
  Counters counters_;
  std::function<void()> listener_;
  std::mutex listener_mutex_;
};

}  // namespace dbre::service

#endif  // DBRE_SERVICE_ASYNC_ORACLE_H_
