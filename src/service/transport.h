// Line transports for the dbred protocol: stdio streams (tests, inetd-
// style deployment) and TCP sockets (the daemon proper).
//
// A `LineChannel` frames the protocol: blocking one-line reads and writes.
// `ServeChannel` pumps one client connection against a Server until EOF or
// server shutdown. `TcpServer` owns the listening socket, an accept loop
// and one thread per connection — all state still lives in the Server, so
// a dropped connection never takes a session with it.
#ifndef DBRE_SERVICE_TRANSPORT_H_
#define DBRE_SERVICE_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/server.h"

namespace dbre::service {

class LineChannel {
 public:
  virtual ~LineChannel() = default;

  // Blocks for the next newline-terminated line (returned without the
  // newline). kNotFound signals clean EOF; kIoError a broken transport.
  virtual Result<std::string> ReadLine() = 0;

  // Writes `line` plus a newline, atomically with respect to other
  // WriteLine calls on this channel.
  virtual Status WriteLine(const std::string& line) = 0;
};

// Wraps caller-owned streams; the stdio transport is
// StreamChannel(&std::cin, &std::cout).
class StreamChannel : public LineChannel {
 public:
  StreamChannel(std::istream* in, std::ostream* out) : in_(in), out_(out) {}

  Result<std::string> ReadLine() override;
  Status WriteLine(const std::string& line) override;

 private:
  std::istream* in_;
  std::ostream* out_;
  std::mutex write_mutex_;
};

// A connected socket. Takes ownership of the descriptor.
class SocketChannel : public LineChannel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override;

  Result<std::string> ReadLine() override;
  Status WriteLine(const std::string& line) override;

  // Forces any blocked ReadLine to return (used on server stop).
  void ShutdownBoth();

  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;  // bytes read past the last newline
  std::mutex write_mutex_;
};

// Connects to host:port (numeric IPv4 or a name resolvable to one).
Result<std::unique_ptr<SocketChannel>> TcpConnect(const std::string& host,
                                                  uint16_t port);

// TcpConnect with capped-backoff retries (10→250 ms) until `deadline_ms`
// elapses: a refused or unreachable port usually means the server is still
// starting (or restarting), so callers that race a daemon's bind — CLI
// clients, the router reconnecting to a respawned worker — wait it out
// instead of dying on the first ECONNREFUSED. Unresolvable hostnames fail
// immediately. `recv_timeout_ms` > 0 arms SO_RCVTIMEO on the socket so a
// hung peer surfaces as a read error instead of a forever-blocked caller.
Result<std::unique_ptr<SocketChannel>> TcpConnectWithRetry(
    const std::string& host, uint16_t port, int64_t deadline_ms,
    int64_t recv_timeout_ms = 0);

// Pumps `channel` against `server`: one response line per request line,
// until EOF, a write failure, or server shutdown. Returns the number of
// requests handled.
size_t ServeChannel(Server* server, LineChannel* channel);

// The accept loop: one thread per connection, each running ServeChannel.
class TcpServer {
 public:
  explicit TcpServer(Server* server) : server_(server) {}
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral; see port() for the result) and
  // starts accepting.
  Status Start(uint16_t port);

  uint16_t port() const { return port_; }

  // Closes the listener and every live connection, then joins all threads.
  // Idempotent; also called by the destructor. Do not call from a
  // connection thread — use WaitUntilShutdown in the owner instead.
  void Stop();

  // Blocks the owning thread until some client issues `shutdown` (a
  // connection thread signals it); the owner then calls Stop.
  void WaitUntilShutdown();

 private:
  void AcceptLoop();

  Server* server_;
  // Atomic: Stop() invalidates it from another thread while AcceptLoop()
  // is between accept() calls.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool stopping_ = false;
  std::vector<std::shared_ptr<SocketChannel>> connections_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace dbre::service

#endif  // DBRE_SERVICE_TRANSPORT_H_
