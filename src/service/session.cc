#include "service/session.h"

#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "core/navigation_graph.h"
#include "core/report_json.h"
#include "eer/dot_export.h"
#include "relational/csv.h"
#include "sql/ddl.h"
#include "sql/ddl_writer.h"

namespace dbre::service {

Session::Session(std::string id, AsyncOracle::Options oracle_options,
                 SessionLimits limits, ExtensionRegistry* registry,
                 std::shared_ptr<MemoryBudget> budget)
    : id_(std::move(id)),
      limits_(limits),
      registry_(registry),
      budget_(std::move(budget)),
      oracle_(oracle_options) {}

Session::~Session() { Close(); }

Session::State Session::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

const char* Session::StateName(State state) {
  switch (state) {
    case State::kIdle: return "idle";
    case State::kRunning: return "running";
    case State::kDone: return "done";
    case State::kFailed: return "failed";
    case State::kClosed: return "closed";
  }
  return "unknown";
}

std::string Session::phase() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phase_;
}

Status Session::ReserveDelta(size_t old_bytes, size_t new_bytes) {
  if (Failpoints::Check("session.reserve").action !=
      FailpointHit::Action::kNone) {
    return FailedPreconditionError(
        "session " + id_ +
        ": simulated allocation failure (failpoint session.reserve)");
  }
  if (new_bytes <= old_bytes) {
    if (budget_) budget_->Release(old_bytes - new_bytes);
    bytes_ = new_bytes;
    return Status::Ok();
  }
  size_t delta = new_bytes - old_bytes;
  if (new_bytes > limits_.max_bytes) {
    return FailedPreconditionError(
        "session " + id_ + " memory limit exceeded: " +
        std::to_string(new_bytes) + " > " +
        std::to_string(limits_.max_bytes) + " bytes");
  }
  if (budget_ && !budget_->Reserve(delta)) {
    return FailedPreconditionError(
        "server memory budget exhausted (" +
        std::to_string(budget_->used()) + " of " +
        std::to_string(budget_->max_total()) + " bytes in use)");
  }
  bytes_ = new_bytes;
  return Status::Ok();
}

Status Session::LoadDdl(const std::string& sql, size_t* relations_out,
                        size_t* rows_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  DBRE_ASSIGN_OR_RETURN(sql::DdlStats stats,
                        sql::ExecuteDdlScript(sql, &database_));
  size_t new_bytes = 0;
  for (const std::string& relation : database_.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table,
                          database_.GetTable(relation));
    new_bytes += table->ApproximateBytes();
  }
  DBRE_RETURN_IF_ERROR(ReserveDelta(bytes_, new_bytes));
  if (persist_) persist_->LogDdl(sql);
  if (relations_out != nullptr) *relations_out = stats.tables_created;
  if (rows_out != nullptr) *rows_out = stats.rows_inserted;
  return Status::Ok();
}

void Session::SetPagedOpener(PagedOpener opener) {
  std::lock_guard<std::mutex> lock(mutex_);
  paged_opener_ = std::move(opener);
}

void Session::TryAdoptPaged(Table* table) {
  if (!paged_opener_ || persist_ == nullptr) return;
  // Snapshot first (content-addressed and deduplicated) so the paged
  // source has a verified file to open, then swap the materialized rows
  // for the page-backed source. Every step degrades gracefully: on any
  // failure the extension simply stays in memory.
  Result<store::SnapshotInfo> info = persist_->store()->PutSnapshot(*table);
  if (!info.ok()) return;
  Result<std::shared_ptr<pagestore::PagedSnapshot>> source =
      paged_opener_(info->fingerprint);
  if (!source.ok()) return;
  (void)table->AdoptPagedExtension(*source);
}

Status Session::LoadCsv(const std::string& relation,
                        const std::string& csv_text, size_t* rows_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  DBRE_ASSIGN_OR_RETURN(Table * table, database_.GetMutableTable(relation));
  size_t old_table_bytes = table->ApproximateBytes();
  DBRE_ASSIGN_OR_RETURN(size_t rows, LoadCsvText(csv_text, table));
  TryAdoptPaged(table);
  // Intern before accounting: an extension already pooled by another
  // session costs this one (approximately) nothing new.
  bool shared = registry_ != nullptr && registry_->Intern(table);
  size_t new_table_bytes = shared ? 0 : table->ApproximateBytes();
  DBRE_RETURN_IF_ERROR(
      ReserveDelta(bytes_, bytes_ - old_table_bytes + new_table_bytes));
  if (persist_) persist_->LogExtension(*table, relation, rows);
  if (rows_out != nullptr) *rows_out = rows;
  return Status::Ok();
}

Status Session::RestoreExtension(const std::string& relation,
                                 uint64_t fingerprint, size_t* rows_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  if (!persist_) {
    return FailedPreconditionError("session " + id_ +
                                   " has no data dir to restore from");
  }
  DBRE_ASSIGN_OR_RETURN(Table * table, database_.GetMutableTable(relation));
  if (paged_opener_) {
    // Open the snapshot page-backed instead of materializing it. Failures
    // fall through to the whole-file loader — recovery must not depend on
    // the pool being large enough or the paged open succeeding.
    Result<std::shared_ptr<pagestore::PagedSnapshot>> source =
        paged_opener_(fingerprint);
    if (source.ok()) {
      const auto& ours = table->schema().attributes();
      const auto& theirs = (*source)->schema().attributes();
      bool layout_matches = ours.size() == theirs.size();
      for (size_t i = 0; layout_matches && i < ours.size(); ++i) {
        layout_matches = ours[i].name == theirs[i].name &&
                         ours[i].type == theirs[i].type;
      }
      if (!layout_matches) {
        return FailedPreconditionError(
            "snapshot " + FingerprintToHex(fingerprint) +
            " does not match the catalog schema of " + relation);
      }
      size_t old_table_bytes = table->ApproximateBytes();
      size_t rows = (*source)->num_rows();
      DBRE_RETURN_IF_ERROR(table->AdoptPagedExtension(*source));
      bool shared = registry_ != nullptr &&
                    registry_->InternPrecomputed(table, fingerprint);
      size_t new_table_bytes = shared ? 0 : table->ApproximateBytes();
      DBRE_RETURN_IF_ERROR(
          ReserveDelta(bytes_, bytes_ - old_table_bytes + new_table_bytes));
      if (rows_out != nullptr) *rows_out = rows;
      return Status::Ok();
    }
  }
  DBRE_ASSIGN_OR_RETURN(store::LoadedSnapshot snapshot,
                        persist_->store()->LoadSnapshot(fingerprint));
  // The catalog's DDL (already replayed) is authoritative for constraints;
  // the snapshot only has to agree on the column layout.
  const auto& ours = table->schema().attributes();
  const auto& theirs = snapshot.schema.attributes();
  bool layout_matches = ours.size() == theirs.size();
  for (size_t i = 0; layout_matches && i < ours.size(); ++i) {
    layout_matches =
        ours[i].name == theirs[i].name && ours[i].type == theirs[i].type;
  }
  if (!layout_matches) {
    return FailedPreconditionError(
        "snapshot " + FingerprintToHex(fingerprint) +
        " does not match the catalog schema of " + relation);
  }
  size_t old_table_bytes = table->ApproximateBytes();
  size_t rows = snapshot.rows->size();
  DBRE_RETURN_IF_ERROR(table->AdoptExtension(std::move(snapshot.rows)));
  // The footer fingerprint was written by ComputeFingerprint over these
  // same rows, so interning can reuse it instead of re-hashing; sharing
  // still requires byte equality (AdoptSharedExtension).
  bool shared = registry_ != nullptr &&
                registry_->InternPrecomputed(table, snapshot.fingerprint);
  size_t new_table_bytes = shared ? 0 : table->ApproximateBytes();
  DBRE_RETURN_IF_ERROR(
      ReserveDelta(bytes_, bytes_ - old_table_bytes + new_table_bytes));
  if (rows_out != nullptr) *rows_out = rows;
  return Status::Ok();
}

Status Session::AddJoins(const std::vector<EquiJoin>& joins) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  for (const EquiJoin& join : joins) {
    DBRE_RETURN_IF_ERROR(join.Validate());
    if (!database_.HasRelation(join.left_relation)) {
      return NotFoundError("join references unknown relation " +
                           join.left_relation);
    }
    if (!database_.HasRelation(join.right_relation)) {
      return NotFoundError("join references unknown relation " +
                           join.right_relation);
    }
  }
  joins_.insert(joins_.end(), joins.begin(), joins.end());
  if (persist_ && !joins.empty()) persist_->LogJoins(joins);
  return Status::Ok();
}

size_t Session::join_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return joins_.size();
}

size_t Session::relation_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return database_.NumRelations();
}

size_t Session::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

Status Session::BeginRun(const RunOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  if (database_.NumRelations() == 0) {
    return FailedPreconditionError("session " + id_ +
                                   " has no catalog: load_ddl first");
  }
  if (options.oracle != "async" && options.oracle != "default" &&
      options.oracle != "threshold") {
    return InvalidArgumentError("unknown oracle policy '" + options.oracle +
                                "' (want async, default or threshold)");
  }
  state_ = State::kRunning;
  phase_.clear();
  report_.reset();
  error_ = Status::Ok();
  abort_reason_ = Status::Ok();
  cancel_.store(false, std::memory_order_relaxed);
  // A recovery re-run (options.replay set) is already journaled; logging
  // it again would double the record on the next replay.
  if (persist_ && !options.replay) {
    persist_->LogRunStart(options.infer_keys, options.close_inds,
                          options.merge_isa_cycles, options.oracle);
  }
  return Status::Ok();
}

void Session::ExecuteRun(const RunOptions& options) {
  // The deadline clock starts here, when the run actually executes — not
  // in BeginRun at admission. An admitted run may wait in the queue behind
  // max_inflight; the watchdog must not abort a run that never got a
  // worker as "exceeding its deadline".
  run_started_us_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_release);
  // The catalog is frozen while kRunning (loads are rejected), so reading
  // database_/joins_ without the session lock is safe here.
  if (registry_ != nullptr) registry_->InternDatabase(&database_);

  PipelineOptions pipeline_options;
  pipeline_options.infer_missing_keys = options.infer_keys;
  pipeline_options.close_inds = options.close_inds;
  pipeline_options.translate.merge_isa_cycles = options.merge_isa_cycles;
  pipeline_options.cancel = &cancel_;
  pipeline_options.trace = &trace_;
  pipeline_options.on_phase = [this](const char* phase) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      phase_ = phase;
    }
    if (persist_) persist_->LogPhase(phase);
  };

  DefaultOracle default_oracle;
  ThresholdOracle::Options threshold_options;
  threshold_options.nei_conceptualize_ratio = 2.0;
  threshold_options.nei_force_ratio = 0.5;
  threshold_options.accept_hidden_objects = true;
  threshold_options.enforce_fd_max_error = 0.01;
  ThresholdOracle threshold_oracle(threshold_options);
  ExpertOracle* oracle = &oracle_;
  if (options.oracle == "default") oracle = &default_oracle;
  if (options.oracle == "threshold") oracle = &threshold_oracle;

  // Oracle chain: ReplayOracle(recorded answers) → JournalingOracle →
  // the live policy. Replayed answers never hit the journaling layer, so
  // only decisions made *now* (client answers, timeouts) are appended.
  std::optional<JournalingOracle> journaling;
  if (persist_ != nullptr) {
    journaling.emplace(oracle, persist_.get());
    oracle = &*journaling;
  }
  if (options.replay != nullptr) {
    options.replay->SetFallback(oracle);
    oracle = options.replay.get();
  }

  auto result = RunPipeline(database_, joins_, oracle, pipeline_options);

  std::function<void()> listener;
  bool finished_ok = false;
  bool log_finished = false;
  std::string finished_error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    phase_.clear();
    run_started_us_.store(0, std::memory_order_release);
    if (state_ == State::kClosed) {
      // Closed while running: drop the result, stay closed.
    } else if (result.ok()) {
      report_ = std::move(result).value();
      state_ = State::kDone;
      log_finished = true;
      finished_ok = true;
    } else {
      // A watchdog abort surfaces its reason (e.g. the exceeded
      // deadline), not the pipeline's generic cancellation status.
      error_ = abort_reason_.ok() ? result.status() : abort_reason_;
      state_ = State::kFailed;
      log_finished = true;
      finished_error = error_.ToString();
    }
    finished_.notify_all();
    listener = listener_;
  }
  if (persist_ && log_finished) {
    persist_->LogFinished(finished_ok, finished_error);
  }
  if (listener) listener();
}

void Session::AttachPersistence(
    std::shared_ptr<SessionPersistence> persist) {
  std::lock_guard<std::mutex> lock(mutex_);
  persist_ = std::move(persist);
}

void Session::DisarmPersistence() {
  if (persist_) persist_->set_replaying(true);
}

void Session::SetListener(std::function<void()> listener) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listener_ = listener;
  }
  oracle_.SetListener(std::move(listener));
}

bool Session::WaitFinished(int64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto terminal = [this] {
    return state_ == State::kDone || state_ == State::kFailed ||
           state_ == State::kClosed;
  };
  if (timeout_ms < 0) {
    finished_.wait(lock, terminal);
    return true;
  }
  return finished_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            terminal);
}

Status Session::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

Result<std::string> Session::ReportJson(bool include_timings) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  JsonOptions options;
  options.include_timings = include_timings;
  return ReportToJson(*report_, options);
}

Result<std::string> Session::ExportDdl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return sql::WriteDdl(report_->restruct.database);
}

Result<std::string> Session::ExportEerDot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return eer::ToDot(report_->eer);
}

Result<std::string> Session::ExportNavigationDot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return NavigationGraphToDot(report_->working_database, report_->ind);
}

Result<std::string> Session::SummaryText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return report_->Summary();
}

void Session::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    // A running pipeline keeps its worker until the next phase boundary;
    // ExecuteRun observes kClosed when it finishes and drops its result.
    state_ = State::kClosed;
    if (budget_) budget_->Release(bytes_);
    bytes_ = 0;
    finished_.notify_all();
  }
  cancel_.store(true, std::memory_order_relaxed);
  oracle_.CancelAll();
}

bool Session::AbortRun(const Status& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kRunning || !abort_reason_.ok()) return false;
    abort_reason_ = reason;
  }
  cancel_.store(true, std::memory_order_relaxed);
  oracle_.CancelAll();
  return true;
}

}  // namespace dbre::service
