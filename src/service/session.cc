#include "service/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "core/navigation_graph.h"
#include "core/report_json.h"
#include "eer/dot_export.h"
#include "relational/csv.h"
#include "service/protocol.h"
#include "sql/ddl.h"
#include "sql/ddl_writer.h"

namespace dbre::service {
namespace {

constexpr size_t kMaxEvents = 256;

const char* NeiActionName(NeiAction action) {
  switch (action) {
    case NeiAction::kConceptualize: return "conceptualize";
    case NeiAction::kForceLeftInRight: return "force_left";
    case NeiAction::kForceRightInLeft: return "force_right";
    case NeiAction::kIgnore: return "ignore";
  }
  return "ignore";
}

Json AnswerRecord(const char* kind, const std::string& subject) {
  Json record = Json::MakeObject();
  record.Set("kind", Json::Str(kind));
  record.Set("subject", Json::Str(subject));
  return record;
}

// ExpertOracle decorator that appends every freshly-resolved answer to the
// session's in-memory answer log (the same record shape the journal
// uses), so the next rerun can replay it. Sits *inside* the replay layer:
// answers replayed from the log never re-record.
class RecordingOracle : public ExpertOracle {
 public:
  RecordingOracle(ExpertOracle* wrapped, Session* session)
      : wrapped_(wrapped), session_(session) {}

  NeiDecision DecideNonEmptyIntersection(const EquiJoin& join,
                                         const JoinCounts& counts) override {
    NeiDecision decision = wrapped_->DecideNonEmptyIntersection(join, counts);
    Json record = AnswerRecord("nei", join.ToString());
    record.Set("action", Json::Str(NeiActionName(decision.action)));
    if (!decision.relation_name.empty()) {
      record.Set("name", Json::Str(decision.relation_name));
    }
    session_->RecordAnswer(std::move(record));
    return decision;
  }
  bool EnforceFailedFd(const FunctionalDependency& fd) override {
    bool enforce = wrapped_->EnforceFailedFd(fd);
    RecordBool("enforce_fd", fd.ToString(), enforce);
    return enforce;
  }
  bool EnforceFailedFd(const FunctionalDependency& fd,
                       double g3_error) override {
    bool enforce = wrapped_->EnforceFailedFd(fd, g3_error);
    RecordBool("enforce_fd", fd.ToString(), enforce);
    return enforce;
  }
  bool ValidateFd(const FunctionalDependency& fd) override {
    bool valid = wrapped_->ValidateFd(fd);
    RecordBool("validate_fd", fd.ToString(), valid);
    return valid;
  }
  bool ConceptualizeHiddenObject(
      const QualifiedAttributes& candidate) override {
    bool accept = wrapped_->ConceptualizeHiddenObject(candidate);
    RecordBool("hidden_object", candidate.ToString(), accept);
    return accept;
  }
  std::string NameRelationForFd(const FunctionalDependency& fd) override {
    std::string name = wrapped_->NameRelationForFd(fd);
    RecordName("name_fd", fd.ToString(), name);
    return name;
  }
  std::string NameHiddenObjectRelation(
      const QualifiedAttributes& source) override {
    std::string name = wrapped_->NameHiddenObjectRelation(source);
    RecordName("name_hidden", source.ToString(), name);
    return name;
  }

 private:
  void RecordBool(const char* kind, const std::string& subject, bool value) {
    Json record = AnswerRecord(kind, subject);
    record.Set("value", Json::Bool(value));
    session_->RecordAnswer(std::move(record));
  }
  void RecordName(const char* kind, const std::string& subject,
                  const std::string& name) {
    Json record = AnswerRecord(kind, subject);
    record.Set("name", Json::Str(name));
    session_->RecordAnswer(std::move(record));
  }

  ExpertOracle* const wrapped_;  // not owned
  Session* const session_;       // not owned
};

Json StringList(const std::vector<std::string>& values) {
  Json list = Json::MakeArray();
  for (const std::string& value : values) list.Append(Json::Str(value));
  return list;
}

}  // namespace

Session::Session(std::string id, AsyncOracle::Options oracle_options,
                 SessionLimits limits, ExtensionRegistry* registry,
                 std::shared_ptr<MemoryBudget> budget)
    : id_(std::move(id)),
      limits_(limits),
      registry_(registry),
      budget_(std::move(budget)),
      oracle_(oracle_options) {}

Session::~Session() { Close(); }

Session::State Session::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

const char* Session::StateName(State state) {
  switch (state) {
    case State::kIdle: return "idle";
    case State::kRunning: return "running";
    case State::kDone: return "done";
    case State::kFailed: return "failed";
    case State::kClosed: return "closed";
  }
  return "unknown";
}

std::string Session::phase() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phase_;
}

Status Session::ReserveDelta(size_t old_bytes, size_t new_bytes) {
  if (Failpoints::Check("session.reserve").action !=
      FailpointHit::Action::kNone) {
    return FailedPreconditionError(
        "session " + id_ +
        ": simulated allocation failure (failpoint session.reserve)");
  }
  if (new_bytes <= old_bytes) {
    if (budget_) budget_->Release(old_bytes - new_bytes);
    bytes_ = new_bytes;
    return Status::Ok();
  }
  size_t delta = new_bytes - old_bytes;
  if (new_bytes > limits_.max_bytes) {
    return FailedPreconditionError(
        "session " + id_ + " memory limit exceeded: " +
        std::to_string(new_bytes) + " > " +
        std::to_string(limits_.max_bytes) + " bytes");
  }
  if (budget_ && !budget_->Reserve(delta)) {
    return FailedPreconditionError(
        "server memory budget exhausted (" +
        std::to_string(budget_->used()) + " of " +
        std::to_string(budget_->max_total()) + " bytes in use)");
  }
  bytes_ = new_bytes;
  return Status::Ok();
}

Status Session::LoadDdl(const std::string& sql, size_t* relations_out,
                        size_t* rows_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  DBRE_ASSIGN_OR_RETURN(sql::DdlStats stats,
                        sql::ExecuteDdlScript(sql, &database_));
  size_t new_bytes = 0;
  for (const std::string& relation : database_.RelationNames()) {
    DBRE_ASSIGN_OR_RETURN(const Table* table,
                          database_.GetTable(relation));
    new_bytes += table->ApproximateBytes();
  }
  DBRE_RETURN_IF_ERROR(ReserveDelta(bytes_, new_bytes));
  if (persist_) persist_->LogDdl(sql);
  if (relations_out != nullptr) *relations_out = stats.tables_created;
  if (rows_out != nullptr) *rows_out = stats.rows_inserted;
  return Status::Ok();
}

void Session::SetPagedOpener(PagedOpener opener) {
  std::lock_guard<std::mutex> lock(mutex_);
  paged_opener_ = std::move(opener);
}

void Session::TryAdoptPaged(Table* table) {
  if (!paged_opener_ || persist_ == nullptr) return;
  // Snapshot first (content-addressed and deduplicated) so the paged
  // source has a verified file to open, then swap the materialized rows
  // for the page-backed source. Every step degrades gracefully: on any
  // failure the extension simply stays in memory.
  Result<store::SnapshotInfo> info = persist_->store()->PutSnapshot(*table);
  if (!info.ok()) return;
  Result<std::shared_ptr<pagestore::PagedSnapshot>> source =
      paged_opener_(info->fingerprint);
  if (!source.ok()) return;
  (void)table->AdoptPagedExtension(*source);
}

Status Session::LoadCsv(const std::string& relation,
                        const std::string& csv_text, size_t* rows_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  DBRE_ASSIGN_OR_RETURN(Table * table, database_.GetMutableTable(relation));
  size_t old_table_bytes = table->ApproximateBytes();
  DBRE_ASSIGN_OR_RETURN(size_t rows, LoadCsvText(csv_text, table));
  TryAdoptPaged(table);
  // Intern before accounting: an extension already pooled by another
  // session costs this one (approximately) nothing new.
  bool shared = registry_ != nullptr && registry_->Intern(table);
  size_t new_table_bytes = shared ? 0 : table->ApproximateBytes();
  DBRE_RETURN_IF_ERROR(
      ReserveDelta(bytes_, bytes_ - old_table_bytes + new_table_bytes));
  if (persist_) persist_->LogExtension(*table, relation, rows);
  if (rows_out != nullptr) *rows_out = rows;
  return Status::Ok();
}

Status Session::RestoreExtension(const std::string& relation,
                                 uint64_t fingerprint, size_t* rows_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  if (!persist_) {
    return FailedPreconditionError("session " + id_ +
                                   " has no data dir to restore from");
  }
  DBRE_ASSIGN_OR_RETURN(Table * table, database_.GetMutableTable(relation));
  if (paged_opener_) {
    // Open the snapshot page-backed instead of materializing it. Failures
    // fall through to the whole-file loader — recovery must not depend on
    // the pool being large enough or the paged open succeeding.
    Result<std::shared_ptr<pagestore::PagedSnapshot>> source =
        paged_opener_(fingerprint);
    if (source.ok()) {
      const auto& ours = table->schema().attributes();
      const auto& theirs = (*source)->schema().attributes();
      bool layout_matches = ours.size() == theirs.size();
      for (size_t i = 0; layout_matches && i < ours.size(); ++i) {
        layout_matches = ours[i].name == theirs[i].name &&
                         ours[i].type == theirs[i].type;
      }
      if (!layout_matches) {
        return FailedPreconditionError(
            "snapshot " + FingerprintToHex(fingerprint) +
            " does not match the catalog schema of " + relation);
      }
      size_t old_table_bytes = table->ApproximateBytes();
      size_t rows = (*source)->num_rows();
      DBRE_RETURN_IF_ERROR(table->AdoptPagedExtension(*source));
      bool shared = registry_ != nullptr &&
                    registry_->InternPrecomputed(table, fingerprint);
      size_t new_table_bytes = shared ? 0 : table->ApproximateBytes();
      DBRE_RETURN_IF_ERROR(
          ReserveDelta(bytes_, bytes_ - old_table_bytes + new_table_bytes));
      if (rows_out != nullptr) *rows_out = rows;
      return Status::Ok();
    }
  }
  DBRE_ASSIGN_OR_RETURN(store::LoadedSnapshot snapshot,
                        persist_->store()->LoadSnapshot(fingerprint));
  // The catalog's DDL (already replayed) is authoritative for constraints;
  // the snapshot only has to agree on the column layout.
  const auto& ours = table->schema().attributes();
  const auto& theirs = snapshot.schema.attributes();
  bool layout_matches = ours.size() == theirs.size();
  for (size_t i = 0; layout_matches && i < ours.size(); ++i) {
    layout_matches =
        ours[i].name == theirs[i].name && ours[i].type == theirs[i].type;
  }
  if (!layout_matches) {
    return FailedPreconditionError(
        "snapshot " + FingerprintToHex(fingerprint) +
        " does not match the catalog schema of " + relation);
  }
  size_t old_table_bytes = table->ApproximateBytes();
  size_t rows = snapshot.rows->size();
  DBRE_RETURN_IF_ERROR(table->AdoptExtension(std::move(snapshot.rows)));
  // The footer fingerprint was written by ComputeFingerprint over these
  // same rows, so interning can reuse it instead of re-hashing; sharing
  // still requires byte equality (AdoptSharedExtension).
  bool shared = registry_ != nullptr &&
                registry_->InternPrecomputed(table, snapshot.fingerprint);
  size_t new_table_bytes = shared ? 0 : table->ApproximateBytes();
  DBRE_RETURN_IF_ERROR(
      ReserveDelta(bytes_, bytes_ - old_table_bytes + new_table_bytes));
  if (rows_out != nullptr) *rows_out = rows;
  return Status::Ok();
}

Status Session::AddJoins(const std::vector<EquiJoin>& joins) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle) {
    return FailedPreconditionError("session " + id_ + " is not idle (" +
                                   StateName(state_) + ")");
  }
  for (const EquiJoin& join : joins) {
    DBRE_RETURN_IF_ERROR(join.Validate());
    if (!database_.HasRelation(join.left_relation)) {
      return NotFoundError("join references unknown relation " +
                           join.left_relation);
    }
    if (!database_.HasRelation(join.right_relation)) {
      return NotFoundError("join references unknown relation " +
                           join.right_relation);
    }
  }
  joins_.insert(joins_.end(), joins.begin(), joins.end());
  if (persist_ && !joins.empty()) persist_->LogJoins(joins);
  return Status::Ok();
}

size_t Session::join_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return joins_.size();
}

size_t Session::relation_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return database_.NumRelations();
}

size_t Session::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::function<void()> Session::EmitEventLocked(const char* type,
                                               Json payload) {
  Json event = Json::MakeObject();
  event.Set("seq", Json::Int(static_cast<int64_t>(++event_seq_)));
  event.Set("type", Json::Str(type));
  for (auto& [key, value] : payload.object()) {
    event.Set(key, std::move(value));
  }
  events_.push_back(std::move(event));
  while (events_.size() > kMaxEvents) events_.pop_front();
  return listener_;
}

std::vector<Json> Session::EventsSince(uint64_t after_seq) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Json> out;
  for (const Json& event : events_) {
    if (static_cast<uint64_t>(event.GetInt("seq")) > after_seq) {
      out.push_back(event);
    }
  }
  return out;
}

uint64_t Session::event_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return event_seq_;
}

void Session::SeedAnswer(Json record) {
  std::lock_guard<std::mutex> lock(mutex_);
  answers_.push_back(std::move(record));
}

void Session::RecordAnswer(Json record) {
  std::lock_guard<std::mutex> lock(mutex_);
  answers_.push_back(std::move(record));
}

Status Session::ApplyMutation(const std::string& sql,
                              sql::DmlStats* stats_out) {
  std::function<void()> listener;
  Status reserved = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kIdle && state_ != State::kDone &&
        state_ != State::kFailed) {
      return FailedPreconditionError("session " + id_ +
                                     " cannot mutate while " +
                                     StateName(state_));
    }
    if (database_.NumRelations() == 0) {
      return FailedPreconditionError("session " + id_ +
                                     " has no catalog: load_ddl first");
    }
    // Byte accounting snapshot before the script runs: the script names
    // its target tables only after parsing, and a mutated table that was
    // interned detaches copy-on-write (its bytes become this session's).
    std::vector<std::pair<std::string, size_t>> before;
    for (const std::string& relation : database_.RelationNames()) {
      Result<const Table*> table = database_.GetTable(relation);
      if (table.ok()) {
        before.emplace_back(relation, (*table)->ApproximateBytes());
      }
    }
    DBRE_ASSIGN_OR_RETURN(sql::DmlStats stats,
                          sql::ExecuteDmlScript(sql, &database_));
    size_t old_sum = 0;
    size_t new_sum = 0;
    for (const auto& [relation, old_bytes] : before) {
      Result<const Table*> table = database_.GetTable(relation);
      if (table.ok()) {
        old_sum += old_bytes;
        new_sum += (*table)->ApproximateBytes();
      }
    }
    size_t new_bytes = bytes_ + new_sum - std::min(old_sum, bytes_ + new_sum);
    // The rows are already mutated, so a budget failure here cannot undo
    // them; journal first regardless — the journal must reflect what the
    // catalog absorbed — then surface the budget error.
    if (persist_) persist_->LogMutation(sql);
    reserved = ReserveDelta(bytes_, new_bytes);
    Json payload = Json::MakeObject();
    payload.Set("statements",
                Json::Int(static_cast<int64_t>(stats.statements)));
    payload.Set("inserted",
                Json::Int(static_cast<int64_t>(stats.rows_inserted)));
    payload.Set("updated",
                Json::Int(static_cast<int64_t>(stats.rows_updated)));
    payload.Set("deleted",
                Json::Int(static_cast<int64_t>(stats.rows_deleted)));
    Json tables = Json::MakeArray();
    for (const sql::TableMutation& mutation : stats.tables) {
      Json entry = Json::MakeObject();
      entry.Set("table", Json::Str(mutation.table));
      entry.Set("inserted",
                Json::Int(static_cast<int64_t>(mutation.inserted)));
      entry.Set("updated", Json::Int(static_cast<int64_t>(mutation.updated)));
      entry.Set("deleted", Json::Int(static_cast<int64_t>(mutation.deleted)));
      entry.Set("structural", Json::Bool(mutation.structural));
      tables.Append(std::move(entry));
    }
    payload.Set("tables", std::move(tables));
    listener = EmitEventLocked("mutate", std::move(payload));
    if (stats_out != nullptr) *stats_out = std::move(stats);
  }
  if (listener) listener();
  return reserved;
}

Status Session::BeginRun(const RunOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kIdle && state_ != State::kDone &&
      state_ != State::kFailed) {
    return FailedPreconditionError("session " + id_ +
                                   " cannot start a run while " +
                                   StateName(state_));
  }
  if (database_.NumRelations() == 0) {
    return FailedPreconditionError("session " + id_ +
                                   " has no catalog: load_ddl first");
  }
  if (options.oracle != "async" && options.oracle != "default" &&
      options.oracle != "threshold") {
    return InvalidArgumentError("unknown oracle policy '" + options.oracle +
                                "' (want async, default or threshold)");
  }
  state_ = State::kRunning;
  phase_.clear();
  report_.reset();
  error_ = Status::Ok();
  abort_reason_ = Status::Ok();
  cancel_.store(false, std::memory_order_relaxed);
  // A recovery re-run (options.replay set) is already journaled; logging
  // it again would double the record on the next replay.
  if (persist_ && !options.replay) {
    persist_->LogRunStart(options.infer_keys, options.close_inds,
                          options.merge_isa_cycles, options.oracle);
  }
  return Status::Ok();
}

void Session::ExecuteRun(const RunOptions& options) {
  // The deadline clock starts here, when the run actually executes — not
  // in BeginRun at admission. An admitted run may wait in the queue behind
  // max_inflight; the watchdog must not abort a run that never got a
  // worker as "exceeding its deadline".
  run_started_us_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_release);
  // The catalog is frozen while kRunning (loads are rejected), so reading
  // database_/joins_ without the session lock is safe here.
  if (registry_ != nullptr) registry_->InternDatabase(&database_);

  PipelineOptions pipeline_options;
  pipeline_options.infer_missing_keys = options.infer_keys;
  pipeline_options.close_inds = options.close_inds;
  pipeline_options.translate.merge_isa_cycles = options.merge_isa_cycles;
  pipeline_options.cancel = &cancel_;
  pipeline_options.trace = &trace_;
  pipeline_options.on_phase = [this](const char* phase) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      phase_ = phase;
    }
    if (persist_) persist_->LogPhase(phase);
  };

  DefaultOracle default_oracle;
  ThresholdOracle::Options threshold_options;
  threshold_options.nei_conceptualize_ratio = 2.0;
  threshold_options.nei_force_ratio = 0.5;
  threshold_options.accept_hidden_objects = true;
  threshold_options.enforce_fd_max_error = 0.01;
  ThresholdOracle threshold_oracle(threshold_options);
  ExpertOracle* oracle = &oracle_;
  if (options.oracle == "default") oracle = &default_oracle;
  if (options.oracle == "threshold") oracle = &threshold_oracle;

  // Oracle chain: ReplayOracle(recorded answers) → JournalingOracle →
  // RecordingOracle → the live policy. Replayed answers never hit the
  // journaling/recording layers, so only decisions made *now* (client
  // answers, timeouts) are appended — to the journal and to the session's
  // in-memory answer log alike.
  RecordingOracle recording(oracle, this);
  oracle = &recording;
  std::optional<JournalingOracle> journaling;
  if (persist_ != nullptr) {
    journaling.emplace(oracle, persist_.get());
    oracle = &*journaling;
  }
  std::shared_ptr<ReplayOracle> replay = options.replay;
  if (replay == nullptr) {
    // Incremental rerun: replay this session's own answer log so the
    // re-validation only re-asks what the expert never answered. On a
    // first run the log is empty and this stays null.
    std::lock_guard<std::mutex> lock(mutex_);
    if (!answers_.empty()) {
      replay = std::make_shared<ReplayOracle>();
      for (const Json& record : answers_) {
        PrimeReplayAnswer(replay.get(), record);
      }
    }
  }
  if (replay != nullptr) {
    replay->SetFallback(oracle);
    oracle = replay.get();
  }

  auto result = RunPipeline(database_, joins_, oracle, pipeline_options);

  std::function<void()> listener;
  bool finished_ok = false;
  bool log_finished = false;
  std::string finished_error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    phase_.clear();
    run_started_us_.store(0, std::memory_order_release);
    if (state_ == State::kClosed) {
      // Closed while running: drop the result, stay closed.
    } else if (result.ok()) {
      report_ = std::move(result).value();
      state_ = State::kDone;
      log_finished = true;
      finished_ok = true;
      // Watchers get the presumption *delta* against the previous report,
      // not the whole report — that is the point of the watch stream.
      PresumptionSet presumptions = ExtractPresumptions(*report_);
      PresumptionDiff diff =
          DiffPresumptions(last_presumptions_, presumptions);
      Json payload = Json::MakeObject();
      payload.Set("initial", Json::Bool(!has_presumptions_));
      payload.Set("changed",
                  Json::Bool(has_presumptions_ && !diff.empty()));
      payload.Set("inds", Json::Int(static_cast<int64_t>(
                              presumptions.inds.size())));
      payload.Set("fds", Json::Int(static_cast<int64_t>(
                             presumptions.fds.size())));
      payload.Set("inds_added", StringList(diff.inds.added));
      payload.Set("inds_removed", StringList(diff.inds.removed));
      payload.Set("fds_added", StringList(diff.fds.added));
      payload.Set("fds_removed", StringList(diff.fds.removed));
      payload.Set("lhs_added", StringList(diff.lhs.added));
      payload.Set("lhs_removed", StringList(diff.lhs.removed));
      last_presumptions_ = std::move(presumptions);
      has_presumptions_ = true;
      EmitEventLocked("report", std::move(payload));
    } else {
      // A watchdog abort surfaces its reason (e.g. the exceeded
      // deadline), not the pipeline's generic cancellation status.
      error_ = abort_reason_.ok() ? result.status() : abort_reason_;
      state_ = State::kFailed;
      log_finished = true;
      finished_error = error_.ToString();
      Json payload = Json::MakeObject();
      payload.Set("error", Json::Str(finished_error));
      EmitEventLocked("run_failed", std::move(payload));
    }
    finished_.notify_all();
    listener = listener_;
  }
  if (persist_ && log_finished) {
    persist_->LogFinished(finished_ok, finished_error);
  }
  if (listener) listener();
}

void Session::AttachPersistence(
    std::shared_ptr<SessionPersistence> persist) {
  std::lock_guard<std::mutex> lock(mutex_);
  persist_ = std::move(persist);
}

void Session::DisarmPersistence() {
  if (persist_) persist_->set_replaying(true);
}

void Session::SetListener(std::function<void()> listener) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listener_ = listener;
  }
  oracle_.SetListener(std::move(listener));
}

bool Session::WaitFinished(int64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto terminal = [this] {
    return state_ == State::kDone || state_ == State::kFailed ||
           state_ == State::kClosed;
  };
  if (timeout_ms < 0) {
    finished_.wait(lock, terminal);
    return true;
  }
  return finished_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            terminal);
}

Status Session::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_;
}

Result<std::string> Session::ReportJson(bool include_timings) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  JsonOptions options;
  options.include_timings = include_timings;
  return ReportToJson(*report_, options);
}

Result<std::string> Session::ExportDdl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return sql::WriteDdl(report_->restruct.database);
}

Result<std::string> Session::ExportEerDot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return eer::ToDot(report_->eer);
}

Result<std::string> Session::ExportNavigationDot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return NavigationGraphToDot(report_->working_database, report_->ind);
}

Result<std::string> Session::SummaryText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kDone) {
    return FailedPreconditionError("session " + id_ + " has no report (" +
                                   StateName(state_) + ")");
  }
  return report_->Summary();
}

void Session::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    // A running pipeline keeps its worker until the next phase boundary;
    // ExecuteRun observes kClosed when it finishes and drops its result.
    state_ = State::kClosed;
    if (budget_) budget_->Release(bytes_);
    bytes_ = 0;
    finished_.notify_all();
  }
  cancel_.store(true, std::memory_order_relaxed);
  oracle_.CancelAll();
}

bool Session::AbortRun(const Status& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kRunning || !abort_reason_.ok()) return false;
    abort_reason_ = reason;
  }
  cancel_.store(true, std::memory_order_relaxed);
  oracle_.CancelAll();
  return true;
}

}  // namespace dbre::service
