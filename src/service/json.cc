#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dbre::service {
namespace {

// Longest accepted number literal; see ParseNumber.
constexpr size_t kMaxNumberChars = 256;

// Recursive-descent parser over a bounded string_view.
class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Json> ParseDocument() {
    SkipWhitespace();
    Json value;
    DBRE_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return ParseError("trailing characters after JSON value at offset " +
                        std::to_string(pos_));
    }
    return value;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return ParseError(std::string("expected '") + c + "' at offset " +
                        std::to_string(pos_));
    }
    ++pos_;
    return Status::Ok();
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(Json* out, size_t depth) {
    if (depth > max_depth_) {
      return ParseError("nesting deeper than " + std::to_string(max_depth_));
    }
    SkipWhitespace();
    if (AtEnd()) return ParseError("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        DBRE_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::Str(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json::Bool(true);
          return Status::Ok();
        }
        break;
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json::Bool(false);
          return Status::Ok();
        }
        break;
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json::Null();
          return Status::Ok();
        }
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        break;
    }
    return ParseError(std::string("unexpected character '") + c +
                      "' at offset " + std::to_string(pos_));
  }

  Status ParseObject(Json* out, size_t depth) {
    DBRE_RETURN_IF_ERROR(Expect('{'));
    *out = Json::MakeObject();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      DBRE_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      DBRE_RETURN_IF_ERROR(Expect(':'));
      Json value;
      DBRE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return ParseError("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status ParseArray(Json* out, size_t depth) {
    DBRE_RETURN_IF_ERROR(Expect('['));
    *out = Json::MakeArray();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      Json value;
      DBRE_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return ParseError("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  Status ParseString(std::string* out) {
    DBRE_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (AtEnd()) return ParseError("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return ParseError("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return ParseError("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          DBRE_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pair → one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) {
              return ParseError("unpaired high surrogate");
            }
            unsigned low = 0;
            DBRE_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return ParseError("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return ParseError("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return ParseError("invalid escape character");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return ParseError("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return ParseError("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // Strict JSON grammar: the integer part is `0` or a nonzero digit
    // followed by digits — `01` is two tokens, hence an error.
    size_t int_start = pos_;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    size_t int_digits = pos_ - int_start;
    if (int_digits == 0 ||
        (int_digits > 1 && text_[int_start] == '0')) {
      return ParseError("malformed number at offset " +
                        std::to_string(start));
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      size_t frac_start = pos_;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
      if (pos_ == frac_start) {  // `1.` — a fraction needs digits
        return ParseError("malformed number at offset " +
                          std::to_string(start));
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      size_t exp_start = pos_;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
      if (pos_ == exp_start) {  // `1e` — an exponent needs digits
        return ParseError("malformed number at offset " +
                          std::to_string(start));
      }
    }
    // A syntactically valid literal can still be hostile: thousands of
    // digits cost strtod time and silently collapse to ±inf. Nothing the
    // protocol carries needs more than a double's 17 significant digits
    // plus a 3-digit exponent, so a generous fixed cap is safe.
    if (pos_ - start > kMaxNumberChars) {
      return ParseError("number literal longer than " +
                        std::to_string(kMaxNumberChars) +
                        " characters at offset " + std::to_string(start));
    }
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = Json::Int(v);
        return Status::Ok();
      }
      // Out-of-range integer: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return ParseError("malformed number '" + token + "'");
    }
    // Overflow to ±inf (e.g. `1e999`) is rejected rather than accepted as
    // a non-finite value Dump() would re-serialize as null. Underflow to
    // zero stays accepted — it is a rounding, not a lie.
    if (!std::isfinite(d)) {
      return ParseError("number '" + token + "' overflows a double");
    }
    *out = Json::Number(d);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t max_depth_;
};

void DumpTo(const Json& value, std::string* out) {
  switch (value.type()) {
    case Json::Type::kNull:
      out->append("null");
      return;
    case Json::Type::kBool:
      out->append(value.AsBool() ? "true" : "false");
      return;
    case Json::Type::kNumber: {
      if (value.IsInt()) {
        out->append(std::to_string(value.AsInt()));
        return;
      }
      double d = value.AsNumber();
      if (!std::isfinite(d)) {
        out->append("null");
        return;
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", d);
      out->append(buffer);
      return;
    }
    case Json::Type::kString:
      out->append(JsonEscape(value.AsString()));
      return;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& element : value.array()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(element, out);
      }
      out->push_back(']');
      return;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, element] : value.object()) {
        if (!first) out->push_back(',');
        first = false;
        out->append(JsonEscape(key));
        out->push_back(':');
        DumpTo(element, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

const Json* Json::Find(std::string_view key) const {
  if (!IsObject()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* value = Find(key);
  if (value == nullptr || !value->IsString()) return fallback;
  return value->AsString();
}

int64_t Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* value = Find(key);
  if (value == nullptr || !value->IsNumber()) return fallback;
  return value->AsInt(fallback);
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* value = Find(key);
  if (value == nullptr || !value->IsBool()) return fallback;
  return value->AsBool(fallback);
}

double Json::GetNumber(std::string_view key, double fallback) const {
  const Json* value = Find(key);
  if (value == nullptr || !value->IsNumber()) return fallback;
  return value->AsNumber(fallback);
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Json> Json::Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).ParseDocument();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace dbre::service
