// The dbred wire protocol: newline-delimited JSON requests and responses.
//
// Requests:   {"id": <int>, "cmd": "<command>", ...parameters}
// Responses:  {"id": <int>, "ok": true, "result": {...}}
//          |  {"id": <int|null>, "ok": false,
//              "error": {"code": "<status-code-name>", "message": "..."}}
//
// One request per line, one response line per request, in order. Error
// codes are the stable StatusCode names from common/status.h, so clients
// can branch on "not_found" vs "failed_precondition" without parsing
// messages. Malformed JSON, oversized lines and unknown commands all
// produce error *responses* — a protocol slip must never take the daemon
// down. See docs/SERVICE.md for the full command reference.
#ifndef DBRE_SERVICE_PROTOCOL_H_
#define DBRE_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/replay_oracle.h"
#include "relational/equi_join.h"
#include "service/async_oracle.h"
#include "service/json.h"

namespace dbre::service {

// Bumped when the wire surface changes incompatibly. 2 added the `hello`
// handshake (protocol/session fields), `detach`, and the router commands.
// A client may send its version in `hello`; a mismatch is rejected with a
// structured failed_precondition before any session state is touched.
inline constexpr int64_t kProtocolVersion = 2;

// Advisory minor revision within the major version: additions that old
// clients can ignore. 2.1 added the `mutate` and `watch` commands (live
// DML + presumption-change streaming). Never checked for compatibility —
// `hello` reports it so clients can discover the additions.
inline constexpr int64_t kProtocolMinorVersion = 1;

struct ProtocolLimits {
  size_t max_line_bytes = 8u << 20;  // big enough for a CSV extension chunk
  size_t max_json_depth = 32;
};

struct Request {
  int64_t id = -1;  // echoed in the response; -1 if the client sent none
  std::string cmd;
  Json params;  // the whole request object (cmd/id included)
};

// Parses one request line. Errors: kInvalidArgument (oversized, not an
// object, missing cmd), kParseError (malformed JSON).
Result<Request> ParseRequest(const std::string& line,
                             const ProtocolLimits& limits = {});

// {"id":…,"ok":true,"result":…} on one line (no trailing newline).
std::string OkResponse(int64_t id, Json result);

// {"id":…,"ok":false,"error":{"code":…,"message":…}}.
std::string ErrorResponse(int64_t id, const Status& status);

// A pending expert question as wire JSON: id, kind, subject, plus the
// kind-specific context (the join and its three valuations, the FD and its
// g3 error, the hidden-object candidate) in both human-readable and
// structured form, so observers can render it and scripted clients can
// reconstruct the exact oracle call.
Json QuestionToJson(const std::string& session_id,
                    const PendingQuestion& question);

// Parses the answer fields of an `answer` request for `kind`:
//   nei:            {"action": "conceptualize"|"force_left"|"force_right"
//                    |"ignore", "name": "..."?}
//   enforce_fd / validate_fd / hidden_object: {"value": true|false}
//   name_fd / name_hidden:                    {"name": "..."}
Result<OracleAnswer> ParseAnswer(PendingQuestion::Kind kind,
                                 const Json& params);

// Parses a join object {"left": "R", "left_attrs": ["a"...],
// "right": "S", "right_attrs": ["b"...]} (validated for shape).
Result<EquiJoin> ParseJoin(const Json& value);

Json JoinToJson(const EquiJoin& join);

// Primes `oracle` with one journaled answer record ({"kind":k,"subject":s}
// plus the kind-specific action/value/name fields — the flattened form
// SessionPersistence::LogAnswer writes). Unknown kinds are skipped so an
// old daemon can replay a journal a newer one wrote. Used by crash
// recovery and by the incremental rerun path, which replays a session's
// own answers so a post-mutation re-validation only re-asks questions the
// expert never saw.
void PrimeReplayAnswer(ReplayOracle* oracle, const Json& record);

}  // namespace dbre::service

#endif  // DBRE_SERVICE_PROTOCOL_H_
