#include "service/async_oracle.h"

#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbre::service {
namespace {

// Final disposition of every question: answered by a client, timed out to
// the fallback, or cancelled (session closed / oracle shut down).
obs::Counter* QuestionCounter(const char* outcome) {
  return obs::Registry::Default().GetCounter(
      "dbre_oracle_questions_total", {{"outcome", outcome}},
      "Expert-oracle questions by final outcome");
}

obs::Histogram* WaitHistogram() {
  static obs::Histogram* histogram = obs::Registry::Default().GetHistogram(
      "dbre_oracle_wait_us", {},
      "Time a pipeline worker spent suspended awaiting an expert answer");
  return histogram;
}

}  // namespace

const char* PendingQuestionKindName(PendingQuestion::Kind kind) {
  switch (kind) {
    case PendingQuestion::Kind::kNei: return "nei";
    case PendingQuestion::Kind::kEnforceFd: return "enforce_fd";
    case PendingQuestion::Kind::kValidateFd: return "validate_fd";
    case PendingQuestion::Kind::kHiddenObject: return "hidden_object";
    case PendingQuestion::Kind::kNameFd: return "name_fd";
    case PendingQuestion::Kind::kNameHidden: return "name_hidden";
  }
  return "unknown";
}

AsyncOracle::AsyncOracle() : AsyncOracle(Options{}) {}

AsyncOracle::AsyncOracle(Options options) : options_(options) {}

AsyncOracle::~AsyncOracle() { CancelAll(); }

ExpertOracle* AsyncOracle::Fallback() {
  return options_.fallback != nullptr ? options_.fallback
                                      : &default_fallback_;
}

void AsyncOracle::Notify() {
  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lock(listener_mutex_);
    listener = listener_;
  }
  if (listener) listener();
}

void AsyncOracle::SetListener(std::function<void()> listener) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  listener_ = std::move(listener);
}

std::vector<PendingQuestion> AsyncOracle::Pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PendingQuestion> questions;
  questions.reserve(pending_.size());
  for (const auto& [id, slot] : pending_) {
    // A resolved slot is no longer awaiting an answer — it only lingers
    // until its suspended worker wakes up and consumes it.
    if (!slot.resolved) questions.push_back(slot.question);
  }
  return questions;
}

AsyncOracle::Counters AsyncOracle::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

Status AsyncOracle::Answer(uint64_t id, OracleAnswer answer) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      if (resolved_ids_.count(id) > 0) {
        return FailedPreconditionError("question " + std::to_string(id) +
                                       " was already resolved");
      }
      return NotFoundError("no pending question with id " +
                           std::to_string(id));
    }
    if (it->second.resolved) {
      return FailedPreconditionError("question " + std::to_string(id) +
                                     " was already resolved");
    }
    it->second.resolved = true;
    it->second.by_client = true;
    it->second.answer = std::move(answer);
    changed_.notify_all();
  }
  Notify();
  return Status::Ok();
}

Status AsyncOracle::AnswerWith(
    uint64_t id,
    const std::function<Result<OracleAnswer>(const PendingQuestion&)>&
        make) {
  // Injected delivery failure: the question stays pending, exactly as if
  // the answer had been lost before reaching the oracle — the client can
  // (must) resend it.
  DBRE_RETURN_IF_ERROR(FailpointError("oracle.answer"));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      if (resolved_ids_.count(id) > 0) {
        return FailedPreconditionError("question " + std::to_string(id) +
                                       " was already resolved");
      }
      return NotFoundError("no pending question with id " +
                           std::to_string(id));
    }
    if (it->second.resolved) {
      return FailedPreconditionError("question " + std::to_string(id) +
                                     " was already resolved");
    }
    Result<OracleAnswer> answer = make(it->second.question);
    if (!answer.ok()) return answer.status();
    it->second.resolved = true;
    it->second.by_client = true;
    it->second.answer = std::move(answer).value();
    changed_.notify_all();
  }
  Notify();
  return Status::Ok();
}

void AsyncOracle::CancelAll() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
    changed_.notify_all();
  }
  Notify();
}

bool AsyncOracle::WaitForQuestion(int64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto has_pending = [this] {
    if (cancelled_) return true;  // don't strand waiters on a dead oracle
    for (const auto& [id, slot] : pending_) {
      if (!slot.resolved) return true;
    }
    return false;
  };
  if (timeout_ms < 0) {
    changed_.wait(lock, has_pending);
    return true;
  }
  return changed_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           has_pending);
}

OracleAnswer AsyncOracle::Ask(PendingQuestion question, bool* use_fallback) {
  static obs::Counter* answered_count = QuestionCounter("answered");
  static obs::Counter* timed_out_count = QuestionCounter("timed_out");
  static obs::Counter* cancelled_count = QuestionCounter("cancelled");
  uint64_t id = 0;
  std::string subject = question.subject;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (cancelled_) {
      ++counters_.asked;
      ++counters_.cancelled;
      cancelled_count->Add(1);
      *use_fallback = true;
      return OracleAnswer{};
    }
    id = next_id_++;
    question.id = id;
    Slot slot;
    slot.question = std::move(question);
    pending_.emplace(id, std::move(slot));
    ++counters_.asked;
    changed_.notify_all();
  }
  Notify();

  // The span covers the suspended wait only, not question publication; a
  // long wait lands in the slow-op log with the question subject attached.
  obs::TraceSpan wait_span("oracle:wait", nullptr, WaitHistogram(),
                           obs::Registry::Default().slow_ops());
  wait_span.set_detail(std::move(subject));

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.timeout_ms);
  OracleAnswer answer;
  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto resolved = [this, id] {
      return cancelled_ || pending_.at(id).resolved;
    };
    if (options_.timeout_ms < 0) {
      changed_.wait(lock, resolved);
    } else if (!changed_.wait_until(lock, deadline, resolved)) {
      timed_out = true;
    }
    Slot slot = std::move(pending_.at(id));
    pending_.erase(id);
    resolved_ids_.insert(id);
    if (slot.resolved && slot.by_client) {
      ++counters_.answered;
      answered_count->Add(1);
      *use_fallback = false;
      answer = std::move(slot.answer);
    } else {
      if (timed_out) {
        ++counters_.timed_out;
        timed_out_count->Add(1);
      } else {
        ++counters_.cancelled;
        cancelled_count->Add(1);
      }
      *use_fallback = true;
    }
    changed_.notify_all();
  }
  wait_span.Finish();
  Notify();
  return answer;
}

NeiDecision AsyncOracle::DecideNonEmptyIntersection(const EquiJoin& join,
                                                    const JoinCounts& counts) {
  PendingQuestion question;
  question.kind = PendingQuestion::Kind::kNei;
  question.subject = join.ToString();
  question.join = join;
  question.counts = counts;
  bool use_fallback = false;
  OracleAnswer answer = Ask(std::move(question), &use_fallback);
  if (use_fallback) return Fallback()->DecideNonEmptyIntersection(join, counts);
  return answer.nei;
}

bool AsyncOracle::EnforceFailedFd(const FunctionalDependency& fd) {
  PendingQuestion question;
  question.kind = PendingQuestion::Kind::kEnforceFd;
  question.subject = fd.ToString();
  question.fd = fd;
  bool use_fallback = false;
  OracleAnswer answer = Ask(std::move(question), &use_fallback);
  if (use_fallback) return Fallback()->EnforceFailedFd(fd);
  return answer.yes;
}

bool AsyncOracle::EnforceFailedFd(const FunctionalDependency& fd,
                                  double g3_error) {
  PendingQuestion question;
  question.kind = PendingQuestion::Kind::kEnforceFd;
  question.subject = fd.ToString();
  question.fd = fd;
  question.g3_error = g3_error;
  bool use_fallback = false;
  OracleAnswer answer = Ask(std::move(question), &use_fallback);
  if (use_fallback) return Fallback()->EnforceFailedFd(fd, g3_error);
  return answer.yes;
}

bool AsyncOracle::ValidateFd(const FunctionalDependency& fd) {
  PendingQuestion question;
  question.kind = PendingQuestion::Kind::kValidateFd;
  question.subject = fd.ToString();
  question.fd = fd;
  bool use_fallback = false;
  OracleAnswer answer = Ask(std::move(question), &use_fallback);
  if (use_fallback) return Fallback()->ValidateFd(fd);
  return answer.yes;
}

bool AsyncOracle::ConceptualizeHiddenObject(
    const QualifiedAttributes& candidate) {
  PendingQuestion question;
  question.kind = PendingQuestion::Kind::kHiddenObject;
  question.subject = candidate.ToString();
  question.candidate = candidate;
  bool use_fallback = false;
  OracleAnswer answer = Ask(std::move(question), &use_fallback);
  if (use_fallback) return Fallback()->ConceptualizeHiddenObject(candidate);
  return answer.yes;
}

std::string AsyncOracle::NameRelationForFd(const FunctionalDependency& fd) {
  PendingQuestion question;
  question.kind = PendingQuestion::Kind::kNameFd;
  question.subject = fd.ToString();
  question.fd = fd;
  bool use_fallback = false;
  OracleAnswer answer = Ask(std::move(question), &use_fallback);
  if (use_fallback) return Fallback()->NameRelationForFd(fd);
  return answer.name;
}

std::string AsyncOracle::NameHiddenObjectRelation(
    const QualifiedAttributes& source) {
  PendingQuestion question;
  question.kind = PendingQuestion::Kind::kNameHidden;
  question.subject = source.ToString();
  question.candidate = source;
  bool use_fallback = false;
  OracleAnswer answer = Ask(std::move(question), &use_fallback);
  if (use_fallback) return Fallback()->NameHiddenObjectRelation(source);
  return answer.name;
}

}  // namespace dbre::service
