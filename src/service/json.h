// A minimal JSON value, parser and writer for the dbred wire protocol.
//
// The protocol is newline-delimited JSON (one object per line), so the
// parser is strict, non-recursing beyond a configurable depth, and bounded
// in input size by the caller (see protocol.h limits). Numbers keep an
// exact int64 representation when the text is integral so question ids and
// row counts round-trip without floating-point surprises. Object keys keep
// insertion order — responses serialize deterministically, which the
// byte-identical report checks in tests rely on.
#ifndef DBRE_SERVICE_JSON_H_
#define DBRE_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dbre::service {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // Vector, not map: preserves insertion order for deterministic output.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool value) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = value;
    return j;
  }
  static Json Int(int64_t value) {
    Json j;
    j.type_ = Type::kNumber;
    j.int_ = value;
    j.number_ = static_cast<double>(value);
    j.is_int_ = true;
    return j;
  }
  static Json Number(double value) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = value;
    return j;
  }
  static Json Str(std::string value) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(value);
    return j;
  }
  static Json MakeArray() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json MakeObject() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsInt() const { return type_ == Type::kNumber && is_int_; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return IsBool() ? bool_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    if (!IsNumber()) return fallback;
    return is_int_ ? int_ : static_cast<int64_t>(number_);
  }
  double AsNumber(double fallback = 0.0) const {
    return IsNumber() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  Array& array() { return array_; }
  const Array& array() const { return array_; }
  Object& object() { return object_; }
  const Object& object() const { return object_; }

  // Object field access; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  // Typed field helpers with fallbacks (object use only).
  std::string GetString(std::string_view key,
                        std::string fallback = "") const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;

  // Appends / sets (no duplicate-key check; protocol code sets each key
  // once).
  void Append(Json value) { array_.push_back(std::move(value)); }
  void Set(std::string key, Json value) {
    object_.emplace_back(std::move(key), std::move(value));
  }

  // Compact single-line serialization (no spaces, keys in insertion order,
  // strings escaped per RFC 8259; non-finite numbers emit null).
  std::string Dump() const;

  // Strict parse of exactly one JSON value (trailing garbage is an error).
  // `max_depth` bounds array/object nesting.
  static Result<Json> Parse(std::string_view text, size_t max_depth = 64);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  int64_t int_ = 0;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Escapes `text` as a JSON string literal, quotes included.
std::string JsonEscape(std::string_view text);

}  // namespace dbre::service

#endif  // DBRE_SERVICE_JSON_H_
