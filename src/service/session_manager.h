// Owns every live session of a dbred server, plus the shared resources
// they multiplex: the pipeline worker pool, the extension registry and the
// global memory budget.
//
// Admission is bounded on three axes:
//   * max_sessions     — live session objects;
//   * max_inflight_runs — pipelines executing on workers (the pool has
//     exactly this many threads, so a pipeline suspended on an expert
//     question parks a whole worker, as designed);
//   * max_queued_runs  — accepted `run` commands waiting for a worker.
// A `run` beyond inflight+queued capacity is rejected immediately with a
// structured error instead of growing an unbounded queue — clients retry.
#ifndef DBRE_SERVICE_SESSION_MANAGER_H_
#define DBRE_SERVICE_SESSION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "pagestore/buffer_pool.h"
#include "pagestore/paged_snapshot.h"
#include "relational/extension_registry.h"
#include "service/session.h"
#include "store/store.h"

namespace dbre::service {

struct SessionManagerOptions {
  size_t max_sessions = 64;
  size_t max_inflight_runs = 4;
  size_t max_queued_runs = 16;
  size_t max_session_bytes = 256u << 20;
  size_t max_total_bytes = 1024u << 20;
  // Expert-question timeout before the fallback oracle answers; negative =
  // wait forever.
  int64_t question_timeout_ms = -1;
  // Wall-clock budget for one pipeline run. A run past it is aborted by
  // the scheduler watchdog (the session fails with a deadline error; the
  // worker frees at the next cancellation point). 0 = no deadline.
  int64_t run_deadline_ms = 0;
  // Durability root (see store/store.h). Empty = fully in-memory: no
  // snapshots, no journals, no recovery.
  std::string data_dir;
  store::JournalOptions journal;
  // Identity of this worker process when several share one data dir
  // behind dbre_router (`dbre_serve --worker-id`). Non-empty: sessions
  // this worker creates or recovers are stamped with an OWNER file, and
  // startup recovery skips sessions owned by a *different* worker — they
  // are live in that process, not orphans to adopt. Empty (the default,
  // single-worker deployment): no ownership is written or honored.
  std::string worker_id;
  // Byte budget of the shared page buffer pool (`--buffer-pool-mb`).
  // Non-zero turns on paged extensions: CSV loads are snapshotted, then
  // adopted page-backed instead of staying materialized, so sessions work
  // on databases larger than memory. Requires a data dir (the pages live
  // in its snapshots); the budget is reserved from max_total_bytes up
  // front so admission accounts for the pool. 0 = off.
  size_t buffer_pool_bytes = 0;
};

class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Creates a session and returns its id ("s1", "s2", ...; `name_hint`
  // becomes the id if unique and non-empty).
  Result<std::string> CreateSession(const std::string& name_hint = "");

  Result<std::shared_ptr<Session>> Get(const std::string& id) const;

  std::vector<std::shared_ptr<Session>> Sessions() const;

  size_t session_count() const;

  // Validates, transitions the session to running and schedules its
  // pipeline on the pool, subject to admission bounds.
  Status SubmitRun(const std::shared_ptr<Session>& session,
                   const Session::RunOptions& options);

  // Cancels (if needed) and removes the session. With a data dir, also
  // writes a close tombstone and deletes the session's journal — a closed
  // session is gone for good; snapshots stay (shared across sessions).
  // kNotFound if unknown.
  Status CloseSession(const std::string& id);

  // Closes every session and waits for in-flight runs to drain. Journals
  // are disarmed first, NOT closed out: a graceful daemon shutdown leaves
  // every session resumable from disk, and the fallback answers the dying
  // runs resolve with are never journaled as if an expert gave them.
  void Shutdown();

  // What happened during recovery (RecoverAll).
  struct RecoveryReport {
    size_t sessions_recovered = 0;
    size_t runs_resumed = 0;        // pipelines re-submitted with replay
    size_t sessions_closed = 0;     // clean close tombstone → journal GCed
    size_t records_dropped = 0;     // torn/corrupt journal lines skipped
    size_t segments_quarantined = 0;  // corrupt journal pieces set aside
    std::vector<std::string> errors;  // per-session failures, not fatal
  };

  // Replays every journal under the data dir: re-creates each session,
  // reloads its catalog from snapshots, and re-submits its run with the
  // journaled expert answers replaying ahead of the live oracle. A
  // session whose journal is damaged is reported in `errors` and skipped —
  // recovery never takes the daemon down. No-op without a data dir.
  RecoveryReport RecoverAll();

  // Recovers one session by id (the `restore` protocol command). kNotFound
  // without a journal on disk; kAlreadyExists if the id is live. With a
  // worker_id this also *claims* the session — restore is the takeover
  // half of a migration, so ownership transfers even from another worker.
  Result<std::shared_ptr<Session>> RecoverSession(const std::string& id);

  // The handoff half of a migration (the `detach` protocol command):
  // seals the session's journal (final fsync), releases this worker's
  // ownership, and drops the live object WITHOUT a close tombstone — the
  // journal stays on disk, fully replayable, so RecoverSession on another
  // worker resumes the session byte-identically. Refuses degraded
  // sessions (their journal is missing records; a restore would silently
  // diverge). Returns the sealed journal's stats.
  Result<store::JournalStats> DetachSession(const std::string& id);

  ExtensionRegistry* registry() { return &registry_; }
  MemoryBudget* budget() { return budget_.get(); }
  const SessionManagerOptions& options() const { return options_; }

  // The durable store, or null when running in-memory. `store_status`
  // reports why a requested data dir could not be opened.
  store::Store* store() { return store_.get(); }
  Status store_status() const { return store_status_; }

  // The shared page buffer pool, or null when paged mode is off.
  pagestore::BufferPool* buffer_pool() const { return buffer_pool_.get(); }

  // The paged source for the snapshot with this fingerprint, deduplicated
  // process-wide: sessions loading the same extension share one source
  // (and through it the pool's pages and any built key indexes). A
  // snapshot that fails page verification is quarantined exactly as
  // LoadSnapshot would. kFailedPrecondition when paged mode is off.
  Result<std::shared_ptr<pagestore::PagedSnapshot>> PagedSourceFor(
      uint64_t fingerprint);

  size_t inflight_runs() const;
  size_t queued_runs() const;

 private:
  // Builds the session object plus (with a data dir) its journal and
  // persistence; `replaying` starts persistence suppressed for recovery.
  Result<std::shared_ptr<Session>> MakeSession(const std::string& id,
                                               bool replaying);

  // Applies one journal's records to a fresh session and, if the journal
  // holds a run record, re-submits the pipeline with the journaled
  // answers (sets *resumed_run).
  Result<std::shared_ptr<Session>> RecoverFromReplay(
      const std::string& id, const store::JournalReplay& replay,
      bool* resumed_run);

  // Enforces options_.run_deadline_ms against every running session.
  void WatchdogLoop();
  void StopWatchdog();

  SessionManagerOptions options_;
  ExtensionRegistry registry_;
  std::shared_ptr<MemoryBudget> budget_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<store::Store> store_;
  Status store_status_;
  std::shared_ptr<pagestore::BufferPool> buffer_pool_;

  // fingerprint → live paged source. Weak: the sources are owned by the
  // tables referencing them (via the registry while interned), so a swept
  // extension's source detaches from the pool on its own.
  std::mutex paged_mutex_;
  std::map<uint64_t, std::weak_ptr<pagestore::PagedSnapshot>>
      paged_sources_;

  mutable std::mutex mutex_;
  uint64_t next_session_ = 1;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  size_t inflight_ = 0;
  size_t queued_ = 0;

  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;  // running only when run_deadline_ms > 0
};

}  // namespace dbre::service

#endif  // DBRE_SERVICE_SESSION_MANAGER_H_
