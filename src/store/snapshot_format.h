// The DBSNAP01 on-disk vocabulary, shared by the whole-file snapshot
// reader/writer (store/snapshot.cc) and the page-at-a-time reader
// (src/pagestore/), which must agree byte-for-byte:
//
//   [magic "DBSNAP01"]
//   [u64 schema_size][u32 schema CRC32C][schema blob]
//   per column, in schema order:
//     [u64 payload_size][u32 payload CRC32C][payload]
//       payload = u32 dict_size, u8 has_null,
//                 dict_size tagged values (AppendValue),
//                 rows x 4-byte little-endian codes
//   [u64 fingerprint][u32 CRC32C of the 8 fingerprint bytes]
//   [magic "DBSNAPFT"]
//
// Everything here is header-only and allocation-conscious; the heavy
// machinery (mmap, atomic writes, materialization) stays in snapshot.cc.
#ifndef DBRE_STORE_SNAPSHOT_FORMAT_H_
#define DBRE_STORE_SNAPSHOT_FORMAT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace dbre::store {

inline constexpr char kSnapshotMagic[8] = {'D', 'B', 'S', 'N',
                                           'A', 'P', '0', '1'};
inline constexpr char kSnapshotFooterMagic[8] = {'D', 'B', 'S', 'N',
                                                 'A', 'P', 'F', 'T'};
inline constexpr size_t kSnapshotFooterSize = 8 + 4 + 8;  // fp, crc, magic

// Dictionary value tags; NULL never appears in a dictionary, so tag 0 is
// reserved (it matches the fingerprint encoding's NULL tag for symmetry).
inline constexpr uint8_t kTagInt = 1;
inline constexpr uint8_t kTagReal = 2;
inline constexpr uint8_t kTagBool = 3;
inline constexpr uint8_t kTagString = 4;

// int64/double dictionary entries are fixed-width: tag + 8 payload bytes.
inline constexpr size_t kFixedEntryBytes = 9;

// Unaligned little-endian loads for the code arrays (the hot loop of the
// loaders; bounds are validated once per page, not per cell).
inline uint32_t LoadU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

inline uint64_t LoadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

// ---- little-endian buffer building -------------------------------------

struct Writer {
  std::string out;

  void U8(uint8_t v) { out.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out.append(s);
  }
};

// Bounds-checked little-endian reads over a byte range. Every primitive
// fails (sticky `ok = false`) instead of reading past the end, so a
// truncated or lying length field surfaces as a parse error.
struct Reader {
  const unsigned char* p;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  bool Need(size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return p[pos++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[pos++]) << (i * 8);
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[pos++]) << (i * 8);
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Need(n)) return "";
    std::string s(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return s;
  }
};

inline void AppendValue(Writer* w, const Value& value) {
  if (value.is_int()) {
    w->U8(kTagInt);
    w->U64(static_cast<uint64_t>(value.as_int()));
  } else if (value.is_real()) {
    w->U8(kTagReal);
    w->U64(std::bit_cast<uint64_t>(value.as_real()));
  } else if (value.is_bool()) {
    w->U8(kTagBool);
    w->U8(value.as_bool() ? 1 : 0);
  } else {
    w->U8(kTagString);
    w->Str(value.as_text());
  }
}

inline Result<Value> ParseValue(Reader* r) {
  uint8_t tag = r->U8();
  switch (tag) {
    case kTagInt:
      return Value::Int(static_cast<int64_t>(r->U64()));
    case kTagReal:
      return Value::Real(std::bit_cast<double>(r->U64()));
    case kTagBool:
      return Value::Boolean(r->U8() != 0);
    case kTagString:
      return Value::Text(r->Str());
    default:
      return ParseError("snapshot: unknown value tag " + std::to_string(tag));
  }
}

// ---- schema blob --------------------------------------------------------

inline std::string BuildSchemaBlob(const RelationSchema& schema,
                                   uint64_t rows) {
  Writer w;
  w.Str(schema.name());
  w.U32(static_cast<uint32_t>(schema.arity()));
  for (const Attribute& attribute : schema.attributes()) {
    w.Str(attribute.name);
    w.U8(static_cast<uint8_t>(attribute.type));
    w.U8(attribute.not_null ? 1 : 0);
  }
  w.U32(static_cast<uint32_t>(schema.unique_constraints().size()));
  for (const AttributeSet& unique : schema.unique_constraints()) {
    w.U32(static_cast<uint32_t>(unique.size()));
    for (const std::string& name : unique) w.Str(name);
  }
  w.U64(rows);
  w.U32(static_cast<uint32_t>(schema.arity()));
  return std::move(w.out);
}

struct ParsedSchema {
  RelationSchema schema;
  uint64_t rows = 0;
  uint32_t columns = 0;
};

inline Result<ParsedSchema> ParseSchemaBlob(const unsigned char* data,
                                            size_t size) {
  Reader r{data, size};
  ParsedSchema out;
  out.schema.set_name(r.Str());
  uint32_t arity = r.U32();
  for (uint32_t i = 0; i < arity && r.ok; ++i) {
    std::string name = r.Str();
    uint8_t type = r.U8();
    bool not_null = r.U8() != 0;
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return ParseError("snapshot: unknown attribute type tag " +
                        std::to_string(type));
    }
    DBRE_RETURN_IF_ERROR(out.schema.AddAttribute(
        std::move(name), static_cast<DataType>(type), not_null));
  }
  uint32_t uniques = r.U32();
  for (uint32_t i = 0; i < uniques && r.ok; ++i) {
    uint32_t n = r.U32();
    std::vector<std::string> names;
    names.reserve(n);
    for (uint32_t j = 0; j < n && r.ok; ++j) names.push_back(r.Str());
    if (!r.ok) break;
    DBRE_RETURN_IF_ERROR(
        out.schema.DeclareUnique(AttributeSet(std::move(names))));
  }
  out.rows = r.U64();
  out.columns = r.U32();
  if (!r.ok || r.pos != size) {
    return ParseError("snapshot: malformed schema blob");
  }
  if (out.columns != out.schema.arity()) {
    return ParseError("snapshot: schema column count mismatch");
  }
  return out;
}

}  // namespace dbre::store

#endif  // DBRE_STORE_SNAPSHOT_FORMAT_H_
