// Binary columnar snapshot format for extensions (format tag "DBSNAP01").
//
// A snapshot is the durable image of one loaded extension: the relation
// schema, every column dictionary-encoded exactly as `EncodedTable` encodes
// it in memory, and a footer carrying the extension's content fingerprint
// (see ExtensionRegistry::ComputeFingerprint). Loading a snapshot therefore
// skips both CSV parsing and row re-hashing — the service re-interns a
// restored extension by the fingerprint read from the footer.
//
// File layout (all integers little-endian, strings length-prefixed):
//
//   [8]  magic "DBSNAP01"
//   [8]  schema blob size          [4] CRC32C of schema blob
//   [..] schema blob: relation name, attributes (name, type, not_null),
//        unique constraints, row count, column count
//   per column, in schema order:
//   [8]  page payload size         [4] CRC32C of page payload
//   [..] payload: dictionary size, has_null flag, dictionary values
//        (tag byte + payload), then row-count u32 codes
//        (0xFFFFFFFF = NULL cell, matching EncodedTable::kNullCode)
//   [8]  content fingerprint       [4] CRC32C of the fingerprint bytes
//   [8]  footer magic "DBSNAPFT"
//
// Every section is independently checksummed, so corruption is localized
// and reported as a structured error instead of garbage rows. Writes go
// through a temp file + fsync + rename, so a crashed writer never leaves a
// half-visible snapshot. The loader mmaps the file when it can (falling
// back to a buffered read) and decodes straight into row storage.
#ifndef DBRE_STORE_SNAPSHOT_H_
#define DBRE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace dbre::store {

// What WriteSnapshot persisted (and what the footer of an existing file
// claims, for ReadSnapshotInfo).
struct SnapshotInfo {
  uint64_t fingerprint = 0;
  uint64_t rows = 0;
  uint32_t columns = 0;
  std::string relation;
  uint64_t file_bytes = 0;
};

// A decoded snapshot: the schema and free-standing row storage, ready for
// Table::AdoptExtension. `fingerprint` comes from the verified footer, so
// the caller can intern without re-hashing (ExtensionRegistry::
// InternPrecomputed).
struct LoadedSnapshot {
  RelationSchema schema;
  std::shared_ptr<std::vector<ValueVector>> rows;
  uint64_t fingerprint = 0;
};

// Serializes `table`'s schema and extension to `path`, atomically (temp
// file + fsync + rename). The fingerprint stored in the footer is
// ExtensionRegistry::ComputeFingerprint(table).
Result<SnapshotInfo> WriteSnapshot(const Table& table, const std::string& path);

// Verifies the footer only (magic + checksum) and returns its metadata
// without decoding any pages. Cheap existence/identity probe.
Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

// Decodes `path` fully, verifying every checksum. A mismatch anywhere —
// header, schema, any column page, footer — fails with a structured error
// naming the corrupt section; it never returns partial rows.
Result<LoadedSnapshot> LoadSnapshot(const std::string& path);

}  // namespace dbre::store

#endif  // DBRE_STORE_SNAPSHOT_H_
