#include "store/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "relational/extension_registry.h"

namespace dbre::store {
namespace {

namespace fs = std::filesystem;

struct StoreMetrics {
  obs::Counter* quarantined_snapshots;
  obs::Counter* quarantined_segments;
};

const StoreMetrics& Metrics() {
  static const StoreMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return StoreMetrics{
        registry.GetCounter("dbre_quarantined_snapshots_total", {},
                            "Corrupt snapshot files moved to quarantine"),
        registry.GetCounter("dbre_quarantined_segments_total", {},
                            "Corrupt journal pieces moved to quarantine"),
    };
  }();
  return metrics;
}

bool IsPlainChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string EscapeSessionId(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    if (IsPlainChar(c)) {
      out.push_back(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  // An empty id would name the sessions/ directory itself.
  if (out.empty()) out = "%00";
  return out;
}

std::string UnescapeSessionId(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%' && i + 2 < escaped.size()) {
      int hi = HexDigit(escaped[i + 1]);
      int lo = HexDigit(escaped[i + 2]);
      if (hi >= 0 && lo >= 0) {
        char c = static_cast<char>(hi * 16 + lo);
        if (c != '\0') out.push_back(c);
        i += 2;
        continue;
      }
    }
    out.push_back(escaped[i]);
  }
  return out;
}

Result<std::unique_ptr<Store>> Store::Open(const std::string& root,
                                           StoreOptions options) {
  std::error_code ec;
  fs::create_directories(root + "/snapshots", ec);
  if (!ec) fs::create_directories(root + "/sessions", ec);
  if (ec) return IoError("mkdir " + root + ": " + ec.message());
  return std::unique_ptr<Store>(new Store(root, options));
}

std::string Store::SnapshotPath(uint64_t fingerprint) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.snap",
                static_cast<unsigned long long>(fingerprint));
  return root_ + "/snapshots/" + name;
}

Result<SnapshotInfo> Store::PutSnapshot(const Table& table) {
  uint64_t fingerprint = ExtensionRegistry::ComputeFingerprint(table);
  std::string path = SnapshotPath(fingerprint);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    // Content-addressed: an existing file with this fingerprint already
    // holds this extension. Trust but verify the footer.
    Result<SnapshotInfo> info = ReadSnapshotInfo(path);
    if (info.ok() && info->fingerprint == fingerprint) return info;
    // Corrupt or mismatched leftover — rewrite it.
  }
  return WriteSnapshot(table, path);
}

bool Store::HasSnapshot(uint64_t fingerprint) const {
  std::error_code ec;
  return fs::exists(SnapshotPath(fingerprint), ec);
}

Result<LoadedSnapshot> Store::LoadSnapshot(uint64_t fingerprint) const {
  std::string path = SnapshotPath(fingerprint);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return NotFoundError("no snapshot for fingerprint in " + path);
  }
  Result<LoadedSnapshot> snapshot = dbre::store::LoadSnapshot(path);
  Status bad;
  if (!snapshot.ok()) {
    if (snapshot.status().code() != StatusCode::kParseError) {
      return snapshot.status();  // e.g. transient open/read error
    }
    bad = snapshot.status();
  } else if (snapshot->fingerprint != fingerprint) {
    bad = FailedPreconditionError("snapshot " + path +
                                  " holds a different fingerprint");
  } else {
    return snapshot;
  }
  Result<std::string> moved = QuarantineSnapshot(fingerprint);
  if (moved.ok()) {
    return Status(bad.code(), bad.message() + " (quarantined to " + *moved +
                                  ")");
  }
  return bad;
}

std::string Store::SessionDir(const std::string& session_id) const {
  return root_ + "/sessions/" + EscapeSessionId(session_id);
}

Result<std::unique_ptr<Journal>> Store::OpenSessionJournal(
    const std::string& session_id) {
  return Journal::Open(SessionDir(session_id), options_.journal);
}

Result<JournalReplay> Store::ReadSessionJournal(
    const std::string& session_id) const {
  return ReadJournal(SessionDir(session_id));
}

bool Store::HasSessionJournal(const std::string& session_id) const {
  std::error_code ec;
  return fs::exists(SessionDir(session_id), ec);
}

std::vector<std::string> Store::ListSessionIds() const {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(root_ + "/sessions", ec)) {
    if (!entry.is_directory()) continue;
    ids.push_back(UnescapeSessionId(entry.path().filename().string()));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status Store::RemoveSession(const std::string& session_id) {
  std::error_code ec;
  fs::remove_all(SessionDir(session_id), ec);
  if (ec) {
    return IoError("remove session dir for " + session_id + ": " +
                   ec.message());
  }
  return Status::Ok();
}

Result<std::string> Store::SessionOwner(const std::string& session_id) const {
  std::ifstream in(SessionDir(session_id) + "/OWNER", std::ios::binary);
  if (!in) return std::string();
  std::string owner((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  while (!owner.empty() && (owner.back() == '\n' || owner.back() == '\r')) {
    owner.pop_back();
  }
  return owner;
}

Status Store::ClaimSession(const std::string& session_id,
                           const std::string& worker_id) {
  std::string dir = SessionDir(session_id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return IoError("mkdir " + dir + ": " + ec.message());
  // Temp + rename so a concurrent reader never sees a half-written owner.
  std::string tmp = dir + "/OWNER.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << worker_id << '\n';
    out.close();
    if (!out) return IoError("write " + tmp);
  }
  fs::rename(tmp, dir + "/OWNER", ec);
  if (ec) return IoError("rename " + tmp + ": " + ec.message());
  return Status::Ok();
}

Status Store::ReleaseSession(const std::string& session_id) {
  std::error_code ec;
  fs::remove(SessionDir(session_id) + "/OWNER", ec);
  if (ec) {
    return IoError("release session " + session_id + ": " + ec.message());
  }
  return Status::Ok();
}

Result<std::string> Store::QuarantineSnapshot(uint64_t fingerprint) const {
  std::string src = SnapshotPath(fingerprint);
  std::error_code ec;
  if (!fs::exists(src, ec)) {
    return NotFoundError("no snapshot file to quarantine at " + src);
  }
  std::string dir = root_ + "/quarantine/snapshots";
  fs::create_directories(dir, ec);
  if (ec) return IoError("mkdir " + dir + ": " + ec.message());
  std::string dest = dir + src.substr(src.find_last_of('/'));
  fs::rename(src, dest, ec);
  if (ec) {
    return IoError("quarantine " + src + ": " + ec.message());
  }
  Metrics().quarantined_snapshots->Add(1);
  return dest;
}

Status Store::QuarantineJournalCorruption(const std::string& session_id,
                                          uint64_t corrupt_segment,
                                          size_t corrupt_valid_end,
                                          size_t* segments_moved) const {
  size_t moved = 0;
  if (segments_moved != nullptr) *segments_moved = 0;
  std::string sdir = SessionDir(session_id);
  std::string qdir =
      root_ + "/quarantine/sessions/" + EscapeSessionId(session_id);
  std::error_code ec;
  fs::create_directories(qdir, ec);
  if (ec) return IoError("mkdir " + qdir + ": " + ec.message());

  // Copy the corrupt suffix of the first bad segment aside, then cut the
  // live file back to its valid prefix so replay and appends resume from
  // a clean tail.
  std::string name = JournalSegmentName(corrupt_segment);
  std::string seg_path = sdir + "/" + name;
  std::ifstream in(seg_path, std::ios::binary);
  if (!in) {
    return IoError("open " + seg_path + " for quarantine");
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  if (corrupt_valid_end < content.size()) {
    std::string suffix_path = qdir + "/" + name + ".corrupt";
    std::ofstream out(suffix_path, std::ios::binary | std::ios::trunc);
    out.write(content.data() + corrupt_valid_end,
              static_cast<std::streamsize>(content.size() - corrupt_valid_end));
    out.close();
    if (!out) {
      return IoError("write " + suffix_path);
    }
    fs::resize_file(seg_path, corrupt_valid_end, ec);
    if (ec) {
      return IoError("truncate " + seg_path + ": " + ec.message());
    }
    ++moved;
  }

  // Later segments can hold nothing replayable (validation stopped at the
  // corruption), so they move wholesale.
  for (uint64_t index : ListJournalSegments(sdir)) {
    if (index <= corrupt_segment) continue;
    std::string later = JournalSegmentName(index);
    fs::rename(sdir + "/" + later, qdir + "/" + later, ec);
    if (ec) {
      return IoError("quarantine " + later + " for " + session_id + ": " +
                     ec.message());
    }
    ++moved;
  }
  Metrics().quarantined_segments->Add(moved);
  if (segments_moved != nullptr) *segments_moved = moved;
  return Status::Ok();
}

}  // namespace dbre::store
