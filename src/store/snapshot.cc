#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/encoded_table.h"
#include "relational/extension_registry.h"
#include "store/crc32c.h"
#include "store/snapshot_format.h"

namespace dbre::store {
namespace {

struct SnapshotMetrics {
  obs::Counter* bytes_written;
  obs::Counter* bytes_read;
  obs::Counter* retries;
  obs::Histogram* write_us;
  obs::Histogram* load_us;
};

const SnapshotMetrics& Metrics() {
  static const SnapshotMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return SnapshotMetrics{
        registry.GetCounter("dbre_snapshot_bytes_written_total", {},
                            "Bytes written to snapshot files"),
        registry.GetCounter("dbre_snapshot_bytes_read_total", {},
                            "Bytes read (mapped) from snapshot files"),
        registry.GetCounter("dbre_snapshot_retries_total", {},
                            "Snapshot write attempts retried after an error"),
        registry.GetHistogram("dbre_snapshot_write_us", {},
                              "Snapshot encode+write+fsync latency"),
        registry.GetHistogram("dbre_snapshot_load_us", {},
                              "Snapshot verify+materialize latency"),
    };
  }();
  return metrics;
}

// Format constants, Writer/Reader and the value/schema codecs now live in
// store/snapshot_format.h, shared with the page-at-a-time reader in
// src/pagestore/. Local aliases keep this file reading as before.
constexpr auto& kMagic = kSnapshotMagic;
constexpr auto& kFooterMagic = kSnapshotFooterMagic;
constexpr size_t kFooterSize = kSnapshotFooterSize;

// ---- mmap'd read-only file -------------------------------------------

class MappedFile {
 public:
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static Result<MappedFile> Open(const std::string& path) {
    DBRE_RETURN_IF_ERROR(FailpointError("snapshot.open"));
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return IoError("open " + path + ": " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return IoError("fstat " + path + ": " + std::strerror(err));
    }
    MappedFile file;
    file.size_ = static_cast<size_t>(st.st_size);
    if (file.size_ > 0) {
      // Modest files are read in one syscall: the loader touches every
      // byte anyway (checksums), and per-page fault handling — even
      // MAP_POPULATE's eager kind — costs more than a single page-cache
      // copy at this size. mmap only pays off once the file is large
      // enough that the copy itself dominates.
      constexpr size_t kReadThreshold = 8u << 20;
      void* map = MAP_FAILED;
      if (file.size_ > kReadThreshold) {
        int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
        flags |= MAP_POPULATE;
#endif
        map = ::mmap(nullptr, file.size_, PROT_READ, flags, fd, 0);
      }
      if (map != MAP_FAILED) {
        file.map_ = map;
      } else {
        // Small file, or mmap failed (exotic filesystems): read it.
        file.buffer_.resize(file.size_);
        size_t off = 0;
        while (off < file.size_) {
          ssize_t n = ::pread(fd, file.buffer_.data() + off,
                              file.size_ - off, static_cast<off_t>(off));
          if (n <= 0) {
            ::close(fd);
            return IoError("read " + path + ": " + std::strerror(errno));
          }
          off += static_cast<size_t>(n);
        }
      }
    }
    ::close(fd);
    return file;
  }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    std::swap(map_, other.map_);
    std::swap(size_, other.size_);
    std::swap(buffer_, other.buffer_);
    return *this;
  }

  ~MappedFile() {
    if (map_ != nullptr) ::munmap(map_, size_);
  }

  const unsigned char* data() const {
    if (map_ != nullptr) return static_cast<const unsigned char*>(map_);
    return reinterpret_cast<const unsigned char*>(buffer_.data());
  }
  size_t size() const { return size_; }

 private:
  MappedFile() = default;

  void* map_ = nullptr;
  size_t size_ = 0;
  std::string buffer_;
};

// One write-tmp/fsync/rename attempt. The tmp file is recreated from
// scratch (O_TRUNC), so a failed attempt leaves nothing a retry has to
// clean up — WriteFileAtomic retries the whole attempt on IO errors.
Status WriteFileAtomicOnce(const std::string& path, const std::string& bytes) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return IoError("open " + tmp + ": " + std::strerror(errno));
  }
  size_t limit = bytes.size();
  bool injected = false;
  FailpointHit hit = Failpoints::Check("snapshot.write");
  if (hit.action == FailpointHit::Action::kError) {
    limit = 0;
    injected = true;
  } else if (hit.action == FailpointHit::Action::kTorn) {
    limit = std::min(limit, hit.torn_bytes);
    injected = true;
  }
  size_t off = 0;
  while (off < limit) {
    ssize_t n = ::write(fd, bytes.data() + off, limit - off);
    if (n < 0) {
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return IoError("write " + tmp + ": " + std::strerror(err));
    }
    off += static_cast<size_t>(n);
  }
  if (injected) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoError("write " + tmp +
                   ": injected failure (failpoint snapshot.write)");
  }
  Status fsync_status = FailpointError("snapshot.fsync");
  if (fsync_status.ok() && ::fsync(fd) != 0) {
    fsync_status = IoError("fsync " + tmp + ": " + std::strerror(errno));
  }
  if (!fsync_status.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fsync_status;
  }
  ::close(fd);
  Status rename_status = FailpointError("snapshot.rename");
  if (rename_status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    rename_status = IoError("rename " + tmp + ": " + std::strerror(errno));
  }
  if (!rename_status.ok()) {
    ::unlink(tmp.c_str());
    return rename_status;
  }
  // Make the rename itself durable.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  RetryPolicy policy;
  policy.on_retry = [](int, const Status&) { Metrics().retries->Add(1); };
  return RetryWithBackoff(
      policy, [&] { return WriteFileAtomicOnce(path, bytes); });
}

}  // namespace

Result<SnapshotInfo> WriteSnapshot(const Table& table,
                                   const std::string& path) {
  obs::TraceSpan span("snapshot:write", nullptr, Metrics().write_us,
                      obs::Registry::Default().slow_ops());
  span.set_detail(path);
  if (table.is_paged()) {
    // A paged extension already lives in a snapshot; re-serializing it
    // would silently write an empty extension (Build reads the
    // materialized rows, which a paged table does not have).
    return FailedPreconditionError("relation " + table.schema().name() +
                                   " is paged; its snapshot already exists");
  }
  DBRE_ASSIGN_OR_RETURN(EncodedTable encoded, EncodedTable::Build(table));
  uint64_t fingerprint = ExtensionRegistry::ComputeFingerprint(table);

  Writer file;
  file.out.append(kMagic, sizeof(kMagic));

  std::string schema_blob = BuildSchemaBlob(table.schema(), table.num_rows());
  file.U64(schema_blob.size());
  file.U32(Crc32c(schema_blob));
  file.out.append(schema_blob);

  for (size_t c = 0; c < encoded.num_columns(); ++c) {
    Writer page;
    page.U32(static_cast<uint32_t>(encoded.dict_size(c)));
    page.U8(encoded.has_null(c) ? 1 : 0);
    for (uint32_t code = 0; code < encoded.dict_size(c); ++code) {
      AppendValue(&page, encoded.Decode(c, code));
    }
    for (uint32_t code : encoded.codes(c)) page.U32(code);
    file.U64(page.out.size());
    file.U32(Crc32c(page.out));
    file.out.append(page.out);
  }

  file.U64(fingerprint);
  unsigned char fp_bytes[8];
  for (int i = 0; i < 8; ++i) {
    fp_bytes[i] = static_cast<unsigned char>(fingerprint >> (i * 8));
  }
  file.U32(Crc32c(0, fp_bytes, sizeof(fp_bytes)));
  file.out.append(kFooterMagic, sizeof(kFooterMagic));

  DBRE_RETURN_IF_ERROR(WriteFileAtomic(path, file.out));
  Metrics().bytes_written->Add(file.out.size());

  SnapshotInfo info;
  info.fingerprint = fingerprint;
  info.rows = table.num_rows();
  info.columns = static_cast<uint32_t>(table.schema().arity());
  info.relation = table.schema().name();
  info.file_bytes = file.out.size();
  return info;
}

namespace {

// Shared front half of ReadSnapshotInfo and LoadSnapshot: magic, schema
// section (size + CRC verified), footer (CRC + magic verified).
struct SnapshotLayout {
  ParsedSchema schema;
  size_t pages_begin = 0;  // file offset of the first column page
  size_t pages_end = 0;    // file offset of the footer
  uint64_t fingerprint = 0;
};

Result<SnapshotLayout> ParseLayout(const MappedFile& file,
                                   const std::string& path) {
  const unsigned char* data = file.data();
  size_t size = file.size();
  if (Failpoints::Check("snapshot.crc").action != FailpointHit::Action::kNone) {
    return ParseError("snapshot " + path +
                      ": injected checksum mismatch (failpoint snapshot.crc)");
  }
  if (size < sizeof(kMagic) + 12 + kFooterSize ||
      std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return ParseError("snapshot " + path + ": bad magic or truncated header");
  }

  Reader header{data, size, sizeof(kMagic)};
  uint64_t schema_size = header.U64();
  uint32_t schema_crc = header.U32();
  if (schema_size > size - header.pos - kFooterSize) {
    return ParseError("snapshot " + path + ": schema blob exceeds file");
  }
  if (Crc32c(0, data + header.pos, schema_size) != schema_crc) {
    return ParseError("snapshot " + path + ": schema checksum mismatch");
  }

  SnapshotLayout layout;
  DBRE_ASSIGN_OR_RETURN(layout.schema,
                        ParseSchemaBlob(data + header.pos, schema_size));
  layout.pages_begin = header.pos + schema_size;
  layout.pages_end = size - kFooterSize;

  Reader footer{data, size, layout.pages_end};
  layout.fingerprint = footer.U64();
  uint32_t footer_crc = footer.U32();
  if (Crc32c(0, data + layout.pages_end, 8) != footer_crc ||
      std::memcmp(data + size - sizeof(kFooterMagic), kFooterMagic,
                  sizeof(kFooterMagic)) != 0) {
    return ParseError("snapshot " + path + ": footer checksum mismatch");
  }
  return layout;
}

}  // namespace

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  DBRE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  DBRE_ASSIGN_OR_RETURN(SnapshotLayout layout, ParseLayout(file, path));
  SnapshotInfo info;
  info.fingerprint = layout.fingerprint;
  info.rows = layout.schema.rows;
  info.columns = layout.schema.columns;
  info.relation = layout.schema.schema.name();
  info.file_bytes = file.size();
  return info;
}

Result<LoadedSnapshot> LoadSnapshot(const std::string& path) {
  obs::TraceSpan span("snapshot:load", nullptr, Metrics().load_us,
                      obs::Registry::Default().slow_ops());
  span.set_detail(path);
  DBRE_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  Metrics().bytes_read->Add(file.size());
  DBRE_ASSIGN_OR_RETURN(SnapshotLayout layout, ParseLayout(file, path));
  const unsigned char* data = file.data();
  const uint64_t rows = layout.schema.rows;
  const uint32_t columns = layout.schema.columns;
  if (rows >= EncodedTable::kNullCode) {
    return ParseError("snapshot " + path + ": row count overflows encoding");
  }

  LoadedSnapshot out;
  out.schema = std::move(layout.schema.schema);
  out.fingerprint = layout.fingerprint;
  out.rows = std::make_shared<std::vector<ValueVector>>();

  // Pass 1: verify and parse each column page. Int64 and double
  // dictionaries have fixed-width entries (tag + 8-byte payload), so they
  // are validated in place and decoded straight from the mapped bytes
  // during materialization — no dictionary of Values is ever built for
  // them (for a unique-key column that dictionary would be as large as
  // the extension itself). Strings and bools materialize their (small)
  // dictionaries as before.
  constexpr size_t kFixedEntry = 9;  // tag byte + 8-byte payload
  struct ColumnPage {
    std::vector<Value> dictionary;          // string/bool columns
    const unsigned char* fixed = nullptr;   // int64/double columns
    uint8_t fixed_tag = 0;
    const unsigned char* codes = nullptr;
    uint32_t dict_size = 0;
  };
  std::vector<ColumnPage> pages(columns);
  size_t pos = layout.pages_begin;
  for (uint32_t c = 0; c < columns; ++c) {
    Reader page_header{data, layout.pages_end, pos};
    uint64_t payload_size = page_header.U64();
    uint32_t payload_crc = page_header.U32();
    if (!page_header.ok ||
        payload_size > layout.pages_end - page_header.pos) {
      return ParseError("snapshot " + path + ": column page " +
                        std::to_string(c) + " truncated");
    }
    if (Crc32c(0, data + page_header.pos, payload_size) != payload_crc) {
      return ParseError("snapshot " + path + ": column page " +
                        std::to_string(c) + " checksum mismatch");
    }

    Reader payload{data + page_header.pos, payload_size};
    uint32_t dict_size = payload.U32();
    payload.U8();  // has_null — recomputed by the in-memory encoder
    ColumnPage& page = pages[c];
    page.dict_size = dict_size;
    DataType type = out.schema.attributes()[c].type;
    if (type == DataType::kInt64 || type == DataType::kDouble) {
      uint8_t expected = type == DataType::kInt64 ? kTagInt : kTagReal;
      if (payload_size - payload.pos < dict_size * kFixedEntry) {
        return ParseError("snapshot " + path + ": column page " +
                          std::to_string(c) + " is malformed");
      }
      page.fixed = data + page_header.pos + payload.pos;
      page.fixed_tag = expected;
      for (uint32_t i = 0; i < dict_size; ++i) {
        if (page.fixed[i * kFixedEntry] != expected) {
          return ParseError("snapshot " + path + ": column page " +
                            std::to_string(c) + " has a mistyped entry");
        }
      }
      payload.pos += dict_size * kFixedEntry;
    } else {
      page.dictionary.reserve(dict_size);
      for (uint32_t i = 0; i < dict_size && payload.ok; ++i) {
        DBRE_ASSIGN_OR_RETURN(Value value, ParseValue(&payload));
        page.dictionary.push_back(std::move(value));
      }
    }
    if (!payload.ok || payload_size - payload.pos != rows * 4) {
      return ParseError("snapshot " + path + ": column page " +
                        std::to_string(c) + " is malformed");
    }
    page.codes = data + page_header.pos + payload.pos;
    pos = page_header.pos + payload_size;
  }
  if (pos != layout.pages_end) {
    return ParseError("snapshot " + path + ": trailing bytes after pages");
  }

  // Pass 2: materialize row-major, constructing each cell exactly once.
  // The per-column code pointers stream sequentially, so this is the
  // cache-friendly direction; codes are range-checked here, right where
  // they are consumed.
  out.rows->reserve(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    ValueVector row;
    row.reserve(columns);
    for (uint32_t c = 0; c < columns; ++c) {
      const ColumnPage& page = pages[c];
      uint32_t code = LoadU32(page.codes + r * 4);
      if (code == EncodedTable::kNullCode) {
        row.push_back(Value::Null());
        continue;
      }
      if (code >= page.dict_size) {
        return ParseError("snapshot " + path + ": column page " +
                          std::to_string(c) + " has out-of-range code");
      }
      if (page.fixed != nullptr) {
        uint64_t bits = LoadU64(page.fixed + code * kFixedEntry + 1);
        row.push_back(page.fixed_tag == kTagInt
                          ? Value::Int(static_cast<int64_t>(bits))
                          : Value::Real(std::bit_cast<double>(bits)));
      } else {
        row.push_back(page.dictionary[code]);
      }
    }
    out.rows->push_back(std::move(row));
  }
  return out;
}

}  // namespace dbre::store
