#include "store/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/crc32c.h"

namespace dbre::store {
namespace {

struct JournalMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* torn_tails;
  obs::Counter* replay_dropped;
  obs::Counter* retries;
  obs::Counter* fsync_failures;
  obs::Histogram* fsync_us;
};

const JournalMetrics& Metrics() {
  static const JournalMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return JournalMetrics{
        registry.GetCounter("dbre_journal_appends_total", {},
                            "Journal records appended"),
        registry.GetCounter("dbre_journal_bytes_total", {},
                            "Bytes written to journal segments"),
        registry.GetCounter(
            "dbre_journal_torn_tails_total", {},
            "Torn segment tails truncated when reopening a journal"),
        registry.GetCounter(
            "dbre_journal_replay_dropped_total", {},
            "Invalid or torn records dropped during journal replay"),
        registry.GetCounter(
            "dbre_journal_retries_total", {},
            "Journal write/fsync attempts retried after transient errors"),
        registry.GetCounter("dbre_journal_fsync_failures_total", {},
                            "Journal fsync attempts that failed"),
        registry.GetHistogram("dbre_journal_fsync_us", {},
                              "Journal fsync latency (batched appends and "
                              "explicit syncs)"),
    };
  }();
  return metrics;
}

// Fsyncs `fd`, timing the call into the fsync histogram and — when it
// crosses the threshold — the slow-op log with the journal dir attached.
int TimedFsync(int fd, const std::string& dir) {
  obs::TraceSpan span("journal:fsync", nullptr, Metrics().fsync_us,
                      obs::Registry::Default().slow_ops());
  span.set_detail(dir);
  return ::fsync(fd);
}

namespace fs = std::filesystem;
using service::Json;

// Validates one journal line; the decoded payload goes to `*record` on
// success. A line fails if it is not JSON, lacks the envelope fields, or
// the checksum of the re-serialized payload disagrees — which catches both
// bit corruption and a torn (partially written) line.
bool DecodeLine(std::string_view line, Json* record) {
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) return false;
  const Json* crc = parsed->Find("c");
  const Json* payload = parsed->Find("r");
  if (crc == nullptr || !crc->IsString() || payload == nullptr) return false;
  char expect[16];
  std::snprintf(expect, sizeof(expect), "%08x", Crc32c(payload->Dump()));
  if (crc->AsString() != expect) return false;
  *record = *payload;
  return true;
}

// Scans segment content line by line. Replay consumes only the prefix of
// valid records (order matters; validation never resumes after a bad
// line), but the scan keeps decoding past the first failure to classify
// it: a decodable record *after* a bad line means mid-segment corruption,
// not a torn tail from a crashed writer.
struct SegmentScan {
  size_t valid_end = 0;   // byte offset just past the last prefix record
  size_t dropped = 0;     // lines from the first failure on
  bool valid_after_bad = false;
};

SegmentScan ScanSegment(const std::string& content,
                        std::vector<Json>* records) {
  SegmentScan scan;
  size_t pos = 0;
  bool failed = false;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    bool complete = eol != std::string::npos;
    std::string_view line(content.data() + pos,
                          (complete ? eol : content.size()) - pos);
    Json record;
    if (!failed && complete && DecodeLine(line, &record)) {
      if (records != nullptr) records->push_back(std::move(record));
      scan.valid_end = eol + 1;
    } else if (!line.empty() || !complete) {
      if (failed && complete && DecodeLine(line, &record)) {
        scan.valid_after_bad = true;
      }
      failed = true;
      ++scan.dropped;
    }
    if (!complete) break;
    pos = eol + 1;
  }
  return scan;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("open " + path + ": " + std::strerror(errno));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace

std::string EncodeJournalLine(const Json& record) {
  std::string payload = record.Dump();
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32c(payload));
  std::string line = "{\"c\":\"";
  line += crc;
  line += "\",\"r\":";
  line += payload;
  line += "}\n";
  return line;
}

std::string JournalSegmentName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.ndjson",
                static_cast<unsigned long long>(index));
  return buf;
}

// Sorted segment indexes present in `dir` (lexicographic == numeric for
// the zero-padded names; parse the number to be safe).
std::vector<uint64_t> ListJournalSegments(const std::string& dir) {
  std::vector<uint64_t> indexes;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    unsigned long long index = 0;
    if (std::sscanf(name.c_str(), "wal-%6llu.ndjson", &index) == 1) {
      indexes.push_back(index);
    }
  }
  std::sort(indexes.begin(), indexes.end());
  return indexes;
}

Journal::Journal(std::string dir, JournalOptions options)
    : dir_(std::move(dir)), options_(options), retry_(options_.retry) {
  // Count retries once here instead of at every call site. Runs under
  // mutex_ (every retried op holds it).
  auto wrapped = retry_.on_retry;
  retry_.on_retry = [this, wrapped](int attempt, const Status& status) {
    ++stats_.retries;
    Metrics().retries->Add(1);
    if (wrapped) wrapped(attempt, status);
  };
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& dir,
                                               JournalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return IoError("mkdir " + dir + ": " + ec.message());

  std::unique_ptr<Journal> journal(new Journal(dir, options));
  std::vector<uint64_t> segments = ListJournalSegments(dir);
  journal->stats_.segments = segments.size();

  if (segments.empty()) {
    journal->segment_index_ = 0;  // RotateLocked opens segment 1
    DBRE_RETURN_IF_ERROR(journal->RotateLocked());
    return journal;
  }

  // Validate the tail of the last segment and truncate any torn suffix so
  // appends after a crash produce a clean record stream.
  uint64_t last = segments.back();
  std::string path = dir + "/" + JournalSegmentName(last);
  DBRE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  size_t valid_end = ScanSegment(content, nullptr).valid_end;

  DBRE_RETURN_IF_ERROR(FailpointError("journal.open"));
  // O_APPEND, matching RotateLocked: every journal fd must place writes at
  // the real end of file regardless of the offset, or Append's
  // truncate-and-retry repair would write at a stale offset after its
  // ftruncate and pad the gap with NUL bytes.
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return IoError("open " + path + ": " + std::strerror(errno));
  if (valid_end != content.size()) {
    Metrics().torn_tails->Add(1);
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      int err = errno;
      ::close(fd);
      return IoError("truncate " + path + ": " + std::strerror(err));
    }
  }
  journal->fd_ = fd;
  journal->segment_index_ = last;
  journal->segment_bytes_ = valid_end;
  return journal;
}

Journal::~Journal() { Close(); }

Status Journal::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return Status::Ok();
  Status synced = FsyncLocked();
  ::close(fd_);
  fd_ = -1;
  return synced;
}

// Retried fsync of the open segment; every failed attempt counts toward
// fsync_failures so even a transient-then-recovered disk shows up.
Status Journal::FsyncLocked() {
  Status synced = RetryWithBackoff(retry_, [this]() -> Status {
    Status failure = FailpointError("journal.fsync");
    if (failure.ok() && TimedFsync(fd_, dir_) != 0) {
      failure = IoError("journal fsync in " + dir_ + ": " +
                        std::strerror(errno));
    }
    if (!failure.ok()) {
      ++stats_.fsync_failures;
      Metrics().fsync_failures->Add(1);
    }
    return failure;
  });
  if (synced.ok()) {
    unsynced_ = 0;
    ++stats_.syncs;
  }
  return synced;
}

Status Journal::RotateLocked() {
  DBRE_RETURN_IF_ERROR(FailpointError("journal.rotate"));
  if (fd_ >= 0) {
    // The records of the outgoing segment must be durable before it is
    // abandoned; a failed fsync keeps the segment open and fails the
    // rotation (and with it the append that forced it).
    DBRE_RETURN_IF_ERROR(FsyncLocked());
    ::close(fd_);
    fd_ = -1;
  }
  ++segment_index_;
  std::string path = dir_ + "/" + JournalSegmentName(segment_index_);
  DBRE_RETURN_IF_ERROR(FailpointError("journal.open"));
  int fd = ::open(path.c_str(),
                  O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open " + path + ": " + std::strerror(errno));
  fd_ = fd;
  segment_bytes_ = 0;
  unsynced_ = 0;
  ++stats_.segments;
  return Status::Ok();
}

// One write attempt of a full line, honoring the journal.append.write
// failpoint (kError = fail before writing, kTorn = write only a prefix
// then fail — exactly what a crashed or out-of-space writer leaves).
Status Journal::WriteLineLocked(const std::string& line) {
  size_t limit = line.size();
  bool inject = false;
  FailpointHit hit = Failpoints::Check("journal.append.write");
  if (hit.action == FailpointHit::Action::kError) {
    limit = 0;
    inject = true;
  } else if (hit.action == FailpointHit::Action::kTorn) {
    limit = std::min(limit, hit.torn_bytes);
    inject = true;
  }
  size_t off = 0;
  while (off < limit) {
    ssize_t n = ::write(fd_, line.data() + off, limit - off);
    if (n < 0) {
      return IoError("journal append in " + dir_ + ": " +
                     std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (inject) {
    return IoError("journal append in " + dir_ +
                   ": injected failure (failpoint journal.append.write)");
  }
  return Status::Ok();
}

Status Journal::Append(const Json& record) {
  std::string line = EncodeJournalLine(record);
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return FailedPreconditionError("journal is not open");
  if (segment_bytes_ >= options_.max_segment_bytes) {
    DBRE_RETURN_IF_ERROR(RotateLocked());
  }
  // Between attempts the segment is truncated back to its pre-append
  // length: a partial write must never be left in front of the retry, or
  // the segment would hold garbage mid-stream. The fd is O_APPEND, so the
  // retried write lands at the truncated end, not at the offset the torn
  // write advanced to. A crash between the torn write and the repair
  // leaves exactly the torn tail Open() already knows how to truncate
  // away.
  const off_t base = static_cast<off_t>(segment_bytes_);
  bool dirty = false;
  Status written = RetryWithBackoff(retry_, [&]() -> Status {
    if (dirty) {
      DBRE_RETURN_IF_ERROR(FailpointError("journal.append.repair"));
      if (::ftruncate(fd_, base) != 0) {
        // Cannot restore the invariant; make the failure non-retryable so
        // the next attempt does not append after garbage.
        return FailedPreconditionError(
            "journal repair truncate in " + dir_ + " failed: " +
            std::strerror(errno));
      }
    }
    dirty = true;
    return WriteLineLocked(line);
  });
  if (!written.ok()) {
    // Best-effort cleanup so a later append (e.g. after the fault clears)
    // starts from a clean tail; if this fails too, Open() repairs on the
    // next life.
    if (::ftruncate(fd_, base) != 0) {
      return FailedPreconditionError(
          "journal in " + dir_ + " has an unrepaired torn tail after: " +
          written.ToString());
    }
    return written;
  }
  segment_bytes_ += line.size();
  ++stats_.records;
  stats_.bytes += line.size();
  Metrics().appends->Add(1);
  Metrics().bytes->Add(line.size());
  if (options_.fsync_batch > 0 && ++unsynced_ >= options_.fsync_batch) {
    DBRE_RETURN_IF_ERROR(FsyncLocked());
  }
  return Status::Ok();
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return FailedPreconditionError("journal is not open");
  return FsyncLocked();
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Result<JournalReplay> ReadJournal(const std::string& dir) {
  JournalReplay replay;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return replay;
  std::vector<uint64_t> segments = ListJournalSegments(dir);
  bool stop_replay = false;
  for (size_t i = 0; i < segments.size(); ++i) {
    uint64_t index = segments[i];
    std::string path = dir + "/" + JournalSegmentName(index);
    DBRE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    ++replay.segments;
    if (stop_replay) {
      // Records after a corrupt one must not replay out of order; every
      // line of a later segment counts as dropped.
      size_t lines = 0;
      for (char ch : content) lines += ch == '\n';
      if (!content.empty() && content.back() != '\n') ++lines;
      replay.dropped += lines;
      continue;
    }
    SegmentScan scan = ScanSegment(content, &replay.records);
    replay.dropped += scan.dropped;
    if (scan.dropped > 0) {
      stop_replay = true;
      // A torn tail of the *final* segment is the expected wreckage of a
      // crashed writer and repairs silently on reopen. Anything else —
      // valid records after the bad line, or a bad line in a non-final
      // segment — is real corruption; recovery quarantines from here on.
      if (i + 1 < segments.size() || scan.valid_after_bad) {
        replay.corrupt = true;
        replay.corrupt_segment = index;
        replay.corrupt_valid_end = scan.valid_end;
      }
    }
  }
  if (replay.dropped > 0) Metrics().replay_dropped->Add(replay.dropped);
  return replay;
}

}  // namespace dbre::store
