#include "store/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/crc32c.h"

namespace dbre::store {
namespace {

struct JournalMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* torn_tails;
  obs::Counter* replay_dropped;
  obs::Histogram* fsync_us;
};

const JournalMetrics& Metrics() {
  static const JournalMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Default();
    return JournalMetrics{
        registry.GetCounter("dbre_journal_appends_total", {},
                            "Journal records appended"),
        registry.GetCounter("dbre_journal_bytes_total", {},
                            "Bytes written to journal segments"),
        registry.GetCounter(
            "dbre_journal_torn_tails_total", {},
            "Torn segment tails truncated when reopening a journal"),
        registry.GetCounter(
            "dbre_journal_replay_dropped_total", {},
            "Invalid or torn records dropped during journal replay"),
        registry.GetHistogram("dbre_journal_fsync_us", {},
                              "Journal fsync latency (batched appends and "
                              "explicit syncs)"),
    };
  }();
  return metrics;
}

// Fsyncs `fd`, timing the call into the fsync histogram and — when it
// crosses the threshold — the slow-op log with the journal dir attached.
int TimedFsync(int fd, const std::string& dir) {
  obs::TraceSpan span("journal:fsync", nullptr, Metrics().fsync_us,
                      obs::Registry::Default().slow_ops());
  span.set_detail(dir);
  return ::fsync(fd);
}

namespace fs = std::filesystem;
using service::Json;

std::string SegmentName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.ndjson",
                static_cast<unsigned long long>(index));
  return buf;
}

// Sorted segment indexes present in `dir` (lexicographic == numeric for
// the zero-padded names; parse the number to be safe).
std::vector<uint64_t> ListSegments(const std::string& dir) {
  std::vector<uint64_t> indexes;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    unsigned long long index = 0;
    if (std::sscanf(name.c_str(), "wal-%6llu.ndjson", &index) == 1) {
      indexes.push_back(index);
    }
  }
  std::sort(indexes.begin(), indexes.end());
  return indexes;
}

// Validates one journal line; the decoded payload goes to `*record` on
// success. A line fails if it is not JSON, lacks the envelope fields, or
// the checksum of the re-serialized payload disagrees — which catches both
// bit corruption and a torn (partially written) line.
bool DecodeLine(std::string_view line, Json* record) {
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) return false;
  const Json* crc = parsed->Find("c");
  const Json* payload = parsed->Find("r");
  if (crc == nullptr || !crc->IsString() || payload == nullptr) return false;
  char expect[16];
  std::snprintf(expect, sizeof(expect), "%08x", Crc32c(payload->Dump()));
  if (crc->AsString() != expect) return false;
  *record = *payload;
  return true;
}

// Scans segment content line by line; returns the byte offset just past
// the last valid record and appends decoded records to `*records` (if
// non-null). `*dropped` counts invalid/torn lines from the first failure
// on (validation does not resume after a bad line — order matters for
// replay).
size_t ScanSegment(const std::string& content, std::vector<Json>* records,
                   size_t* dropped) {
  size_t valid_end = 0;
  size_t pos = 0;
  bool failed = false;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    bool complete = eol != std::string::npos;
    std::string_view line(content.data() + pos,
                          (complete ? eol : content.size()) - pos);
    Json record;
    if (!failed && complete && DecodeLine(line, &record)) {
      if (records != nullptr) records->push_back(std::move(record));
      valid_end = eol + 1;
    } else if (!line.empty() || !complete) {
      failed = true;
      if (dropped != nullptr) ++*dropped;
    }
    if (!complete) break;
    pos = eol + 1;
  }
  return valid_end;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("open " + path + ": " + std::strerror(errno));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace

std::string EncodeJournalLine(const Json& record) {
  std::string payload = record.Dump();
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32c(payload));
  std::string line = "{\"c\":\"";
  line += crc;
  line += "\",\"r\":";
  line += payload;
  line += "}\n";
  return line;
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& dir,
                                               JournalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return IoError("mkdir " + dir + ": " + ec.message());

  std::unique_ptr<Journal> journal(new Journal(dir, options));
  std::vector<uint64_t> segments = ListSegments(dir);
  journal->stats_.segments = segments.size();

  if (segments.empty()) {
    journal->segment_index_ = 0;  // RotateLocked opens segment 1
    DBRE_RETURN_IF_ERROR(journal->RotateLocked());
    return journal;
  }

  // Validate the tail of the last segment and truncate any torn suffix so
  // appends after a crash produce a clean record stream.
  uint64_t last = segments.back();
  std::string path = dir + "/" + SegmentName(last);
  DBRE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  size_t valid_end = ScanSegment(content, nullptr, nullptr);

  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return IoError("open " + path + ": " + std::strerror(errno));
  if (valid_end != content.size()) {
    Metrics().torn_tails->Add(1);
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      int err = errno;
      ::close(fd);
      return IoError("truncate " + path + ": " + std::strerror(err));
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    int err = errno;
    ::close(fd);
    return IoError("seek " + path + ": " + std::strerror(err));
  }
  journal->fd_ = fd;
  journal->segment_index_ = last;
  journal->segment_bytes_ = valid_end;
  return journal;
}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status Journal::RotateLocked() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  ++segment_index_;
  std::string path = dir_ + "/" + SegmentName(segment_index_);
  int fd = ::open(path.c_str(),
                  O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open " + path + ": " + std::strerror(errno));
  fd_ = fd;
  segment_bytes_ = 0;
  unsynced_ = 0;
  ++stats_.segments;
  return Status::Ok();
}

Status Journal::Append(const Json& record) {
  std::string line = EncodeJournalLine(record);
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return FailedPreconditionError("journal is not open");
  if (segment_bytes_ >= options_.max_segment_bytes) {
    DBRE_RETURN_IF_ERROR(RotateLocked());
  }
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      return IoError("journal append in " + dir_ + ": " +
                     std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  segment_bytes_ += line.size();
  ++stats_.records;
  stats_.bytes += line.size();
  Metrics().appends->Add(1);
  Metrics().bytes->Add(line.size());
  if (options_.fsync_batch > 0 && ++unsynced_ >= options_.fsync_batch) {
    if (TimedFsync(fd_, dir_) != 0) {
      return IoError("journal fsync in " + dir_ + ": " +
                     std::strerror(errno));
    }
    unsynced_ = 0;
    ++stats_.syncs;
  }
  return Status::Ok();
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return FailedPreconditionError("journal is not open");
  if (TimedFsync(fd_, dir_) != 0) {
    return IoError("journal fsync in " + dir_ + ": " + std::strerror(errno));
  }
  unsynced_ = 0;
  ++stats_.syncs;
  return Status::Ok();
}

JournalStats Journal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Result<JournalReplay> ReadJournal(const std::string& dir) {
  JournalReplay replay;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return replay;
  std::vector<uint64_t> segments = ListSegments(dir);
  bool corrupt = false;
  for (uint64_t index : segments) {
    std::string path = dir + "/" + SegmentName(index);
    DBRE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    ++replay.segments;
    if (corrupt) {
      // Records after a corrupt one must not replay out of order; every
      // line of a later segment counts as dropped.
      size_t lines = 0;
      for (char ch : content) lines += ch == '\n';
      if (!content.empty() && content.back() != '\n') ++lines;
      replay.dropped += lines;
      continue;
    }
    size_t before = replay.dropped;
    ScanSegment(content, &replay.records, &replay.dropped);
    if (replay.dropped != before) corrupt = true;
  }
  if (replay.dropped > 0) Metrics().replay_dropped->Add(replay.dropped);
  return replay;
}

}  // namespace dbre::store
