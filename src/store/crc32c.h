// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the checksum
// guarding snapshot column pages and journal records.
//
// Chosen over plain CRC32 for its better error-detection properties on
// storage workloads (it is what iSCSI, ext4 and leveldb use). Software
// slice-by-4 implementation; fast enough that journal appends stay
// write()-bound.
#ifndef DBRE_STORE_CRC32C_H_
#define DBRE_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dbre::store {

// Extends `crc` (the running checksum of the bytes seen so far; 0 for a
// fresh stream) over `size` bytes at `data`.
uint32_t Crc32c(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(0, data.data(), data.size());
}

}  // namespace dbre::store

#endif  // DBRE_STORE_CRC32C_H_
