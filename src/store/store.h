// The on-disk data directory of a dbred daemon (`dbre_serve --data-dir`).
//
// Layout:
//
//   <root>/snapshots/<%016x fingerprint>.snap   one per distinct extension
//   <root>/sessions/<escaped session id>/       one journal dir per session
//       wal-000001.ndjson ...
//   <root>/quarantine/                          corrupt files, set aside
//       snapshots/<%016x>.snap                  failed CRC / wrong footer
//       sessions/<escaped id>/wal-...ndjson[.corrupt]
//
// Snapshots are content-addressed by extension fingerprint, so two
// sessions loading the same CSV share one snapshot file the same way they
// share in-memory storage through the ExtensionRegistry. Session ids come
// from clients (name hints), so they are percent-escaped before becoming
// path components — a hostile id cannot traverse outside the data dir.
//
// The Store itself only manages files; what the journal records *mean* is
// the service layer's business (src/service/persist.h).
#ifndef DBRE_STORE_STORE_H_
#define DBRE_STORE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"
#include "store/journal.h"
#include "store/snapshot.h"

namespace dbre::store {

struct StoreOptions {
  JournalOptions journal;
};

class Store {
 public:
  // Opens (creating if needed) a data directory.
  static Result<std::unique_ptr<Store>> Open(const std::string& root,
                                             StoreOptions options = {});

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  const std::string& root() const { return root_; }

  // --- snapshots ------------------------------------------------------

  // Persists `table`'s extension, content-addressed by fingerprint. If a
  // snapshot with the same fingerprint already exists the write is skipped
  // (the extension is already durable) and its footer metadata returned.
  Result<SnapshotInfo> PutSnapshot(const Table& table);

  bool HasSnapshot(uint64_t fingerprint) const;

  // Loads and verifies a snapshot. A snapshot that fails verification
  // (CRC mismatch, torn file, wrong fingerprint) is moved to quarantine
  // before the error returns, so the next PutSnapshot of the same
  // extension rewrites it cleanly instead of tripping over the corpse.
  Result<LoadedSnapshot> LoadSnapshot(uint64_t fingerprint) const;
  std::string SnapshotPath(uint64_t fingerprint) const;

  // --- session journals -----------------------------------------------

  // Opens (creating or recovering) the journal for `session_id`.
  Result<std::unique_ptr<Journal>> OpenSessionJournal(
      const std::string& session_id);

  Result<JournalReplay> ReadSessionJournal(const std::string& session_id) const;

  // True if a journal directory exists for `session_id`.
  bool HasSessionJournal(const std::string& session_id) const;

  // Session ids with a journal on disk, sorted.
  std::vector<std::string> ListSessionIds() const;

  // Deletes a session's journal directory (after a clean close; snapshots
  // stay — other sessions may share them).
  Status RemoveSession(const std::string& session_id);

  // --- worker ownership -------------------------------------------------

  // When several workers share one data dir (dbre_router sharding), each
  // session dir carries an OWNER file naming the worker serving it, so a
  // restarting worker recovers only its own sessions instead of everyone
  // racing to replay every journal. Claim writes atomically (temp +
  // rename); Release removes the marker (a detached session is up for
  // grabs); SessionOwner returns "" for an unowned or unknown session.
  // Daemons started without --worker-id never claim, preserving the
  // single-worker behavior.
  Result<std::string> SessionOwner(const std::string& session_id) const;
  Status ClaimSession(const std::string& session_id,
                      const std::string& worker_id);
  Status ReleaseSession(const std::string& session_id);

  // --- quarantine -------------------------------------------------------

  // Moves a corrupt snapshot file into <root>/quarantine/snapshots/.
  // Returns the quarantined path (NotFound if the file is already gone).
  Result<std::string> QuarantineSnapshot(uint64_t fingerprint) const;

  // Sets aside the corrupt part of a session journal as reported by
  // ReadJournal: copies the corrupt suffix of segment `corrupt_segment`
  // (everything past `corrupt_valid_end` bytes) into
  // <root>/quarantine/sessions/<id>/ as `<segment>.corrupt`, truncates the
  // live segment back to its valid prefix, and moves every later segment
  // wholesale. Replay of the valid prefix stays usable and appending
  // resumes after it. `*segments_moved` (optional) counts quarantined
  // pieces.
  Status QuarantineJournalCorruption(const std::string& session_id,
                                     uint64_t corrupt_segment,
                                     size_t corrupt_valid_end,
                                     size_t* segments_moved = nullptr) const;

 private:
  explicit Store(std::string root, StoreOptions options)
      : root_(std::move(root)), options_(options) {}

  std::string SessionDir(const std::string& session_id) const;

  const std::string root_;
  const StoreOptions options_;
};

// Escapes a client-supplied session id into a safe single path component
// (percent-escapes everything outside [A-Za-z0-9_-]); UnescapeSessionId
// inverts it. Exposed for tests.
std::string EscapeSessionId(const std::string& id);
std::string UnescapeSessionId(const std::string& escaped);

}  // namespace dbre::store

#endif  // DBRE_STORE_STORE_H_
