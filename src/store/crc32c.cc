#include "store/crc32c.h"

#include <array>
#include <cstring>

namespace dbre::store {
namespace {

constexpr uint32_t kPolynomial = 0x82F63B78u;  // 0x1EDC6F41 reflected

struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
      }
      t[0][i] = crc;
    }
    for (size_t k = 1; k < t.size(); ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& LookupTables() {
  static const Tables tables;
  return tables;
}

uint32_t Crc32cSoftware(uint32_t crc, const unsigned char* p, size_t size) {
  const Tables& tables = LookupTables();
  // Slicing-by-8: two independent 4-byte table lookups per iteration keep
  // the dependency chain short enough to saturate the load ports.
  while (size >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[7][crc & 0xFF] ^ tables.t[6][(crc >> 8) & 0xFF] ^
          tables.t[5][(crc >> 16) & 0xFF] ^ tables.t[4][crc >> 24] ^
          tables.t[3][p[4]] ^ tables.t[2][p[5]] ^ tables.t[1][p[6]] ^
          tables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFF];
  }
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define DBRE_CRC32C_HW 1

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    uint32_t crc, const unsigned char* p, size_t size) {
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}

bool HaveHardwareCrc() { return __builtin_cpu_supports("sse4.2"); }
#endif

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
#ifdef DBRE_CRC32C_HW
  static const bool hardware = HaveHardwareCrc();
  if (hardware) return ~Crc32cHardware(crc, p, size);
#endif
  return ~Crc32cSoftware(crc, p, size);
}

}  // namespace dbre::store
