// Per-session write-ahead journal: checksummed NDJSON with segment
// rotation and batched fsync.
//
// Each record is one line, `{"c":"<crc32c hex>","r":{...}}`, where the
// checksum covers the compact serialization of the payload object `r`.
// Records append to numbered segment files (`wal-000001.ndjson`, ...)
// inside the journal directory; a segment rotates once it exceeds
// `max_segment_bytes`, keeping any single replay read bounded.
//
// Durability: every Append issues its write(2) immediately (a record
// survives SIGKILL of the process as soon as Append returns), and fsync
// runs every `fsync_batch` appends — 1 trades throughput for
// power-loss-safety of every record, 0 leaves flushing to the kernel.
// Sync() forces one out-of-band.
//
// Recovery: Open scans the last segment, validates each line's checksum,
// and truncates anything after the last valid record — a torn tail from a
// crashed writer is dropped, never parsed and never fatal. ReadJournal
// replays all segments in order with the same validation, reporting how
// many trailing lines it had to drop.
#ifndef DBRE_STORE_JOURNAL_H_
#define DBRE_STORE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "service/json.h"

namespace dbre::store {

struct JournalOptions {
  // Rotate to a fresh segment once the current one exceeds this.
  size_t max_segment_bytes = 4 << 20;
  // fsync every N appends; 1 = every append, 0 = never (kernel decides).
  size_t fsync_batch = 8;
  // Transient write/fsync failures are retried under this policy before an
  // Append or Sync surfaces an error. A partially written line is
  // truncated away between attempts, so a retried append never leaves
  // garbage mid-segment.
  RetryPolicy retry;
};

struct JournalStats {
  uint64_t records = 0;         // appended through this handle
  uint64_t bytes = 0;           // bytes written through this handle
  uint64_t segments = 0;        // total segments on disk
  uint64_t syncs = 0;           // fsyncs issued
  uint64_t retries = 0;         // write/fsync attempts that were retried
  uint64_t fsync_failures = 0;  // fsync attempts that failed
};

class Journal {
 public:
  // Opens (creating if needed) the journal in `dir`. If segments already
  // exist, the tail of the last one is validated and any torn suffix is
  // truncated away before appending resumes.
  static Result<std::unique_ptr<Journal>> Open(const std::string& dir,
                                               JournalOptions options = {});

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  // Appends one record (the payload `r`; the checksum envelope is added
  // here). Thread-safe. The record is in the kernel when this returns.
  Status Append(const service::Json& record);

  // Forces an fsync of the current segment regardless of batching.
  Status Sync();

  // Fsyncs and closes the open segment, propagating the fsync result (the
  // destructor calls this and swallows the status — close explicitly when
  // the outcome matters). Idempotent.
  Status Close();

  JournalStats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  Journal(std::string dir, JournalOptions options);

  Status RotateLocked();
  Status WriteLineLocked(const std::string& line);
  Status FsyncLocked();

  const std::string dir_;
  const JournalOptions options_;
  RetryPolicy retry_;  // options_.retry plus the stats-counting hook

  mutable std::mutex mutex_;
  int fd_ = -1;
  uint64_t segment_index_ = 0;  // of the open segment
  size_t segment_bytes_ = 0;    // size of the open segment
  size_t unsynced_ = 0;         // appends since the last fsync
  JournalStats stats_;
};

// One journal's replayable content.
struct JournalReplay {
  std::vector<service::Json> records;  // valid records, in append order
  size_t dropped = 0;    // lines discarded (bad checksum / torn tail)
  size_t segments = 0;   // segment files read

  // Mid-stream corruption, as opposed to a benign torn tail: a bad record
  // with valid records after it, or any drop in a non-final segment. The
  // recovery layer quarantines everything from `corrupt_segment` on and
  // resumes from the valid prefix (`corrupt_valid_end` bytes of it).
  bool corrupt = false;
  uint64_t corrupt_segment = 0;   // segment index of the first bad record
  size_t corrupt_valid_end = 0;   // bytes of valid prefix in that segment
};

// Reads every segment of the journal in `dir`. Validation stops at the
// first corrupt record; everything after it counts as dropped. A missing
// directory is an empty replay, not an error.
Result<JournalReplay> ReadJournal(const std::string& dir);

// The record envelope, exposed for tests: serializes `record` into a
// checksummed journal line (newline included).
std::string EncodeJournalLine(const service::Json& record);

// Segment naming, exposed for the Store's quarantine flow and for tests:
// "wal-000001.ndjson" etc., and the sorted indexes present in `dir`.
std::string JournalSegmentName(uint64_t index);
std::vector<uint64_t> ListJournalSegments(const std::string& dir);

}  // namespace dbre::store

#endif  // DBRE_STORE_JOURNAL_H_
