#include "workload/paper_example.h"

#include <string>

namespace dbre::workload {
namespace {

Status AddPaperSchemas(Database* database) {
  {
    RelationSchema person("Person");
    DBRE_RETURN_IF_ERROR(person.AddAttribute("id", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(person.AddAttribute("name", DataType::kString));
    DBRE_RETURN_IF_ERROR(person.AddAttribute("street", DataType::kString));
    DBRE_RETURN_IF_ERROR(person.AddAttribute("number", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(person.AddAttribute("zip-code", DataType::kString));
    DBRE_RETURN_IF_ERROR(person.AddAttribute("state", DataType::kString));
    DBRE_RETURN_IF_ERROR(person.DeclareUnique({"id"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(person)));
  }
  {
    RelationSchema hemployee("HEmployee");
    DBRE_RETURN_IF_ERROR(hemployee.AddAttribute("no", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(hemployee.AddAttribute("date", DataType::kString));
    DBRE_RETURN_IF_ERROR(
        hemployee.AddAttribute("salary", DataType::kDouble));
    DBRE_RETURN_IF_ERROR(hemployee.DeclareUnique({"no", "date"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(hemployee)));
  }
  {
    RelationSchema department("Department");
    DBRE_RETURN_IF_ERROR(department.AddAttribute("dep", DataType::kString));
    DBRE_RETURN_IF_ERROR(department.AddAttribute("emp", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(
        department.AddAttribute("skill", DataType::kString));
    DBRE_RETURN_IF_ERROR(department.AddAttribute("location",
                                                 DataType::kString,
                                                 /*not_null=*/true));
    DBRE_RETURN_IF_ERROR(department.AddAttribute("proj", DataType::kString));
    DBRE_RETURN_IF_ERROR(department.DeclareUnique({"dep"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(department)));
  }
  {
    RelationSchema assignment("Assignment");
    DBRE_RETURN_IF_ERROR(assignment.AddAttribute("emp", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(assignment.AddAttribute("dep", DataType::kString));
    DBRE_RETURN_IF_ERROR(assignment.AddAttribute("proj", DataType::kString));
    DBRE_RETURN_IF_ERROR(assignment.AddAttribute("date", DataType::kString));
    DBRE_RETURN_IF_ERROR(
        assignment.AddAttribute("project-name", DataType::kString));
    DBRE_RETURN_IF_ERROR(assignment.DeclareUnique({"emp", "dep", "proj"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(assignment)));
  }
  return Status::Ok();
}

Status PopulatePaperData(Database* database) {
  // Person: 2200 tuples, ids 1..2200. zip-code determines state (the FD
  // the method must NOT elicit — nobody joins on zip-code).
  {
    DBRE_ASSIGN_OR_RETURN(Table * person,
                          database->GetMutableTable("Person"));
    for (int64_t id = 1; id <= 2200; ++id) {
      int64_t zip = id % 50;
      DBRE_RETURN_IF_ERROR(person->Insert(
          {Value::Int(id), Value::Text("name_" + std::to_string(id)),
           Value::Text("street_" + std::to_string(id % 40)),
           Value::Int(id % 100), Value::Text("Z" + std::to_string(zip)),
           Value::Text("S" + std::to_string(zip % 7))}));
    }
  }
  // HEmployee: numbers 1..1550 ⊆ Person ids. Every third employee has a
  // second historized tuple with a different salary, so no ↛ salary —
  // the Employee object stays hidden behind the key {no, date}.
  {
    DBRE_ASSIGN_OR_RETURN(Table * hemployee,
                          database->GetMutableTable("HEmployee"));
    for (int64_t no = 1; no <= 1550; ++no) {
      DBRE_RETURN_IF_ERROR(hemployee->Insert(
          {Value::Int(no), Value::Text("2020-01-01"),
           Value::Real(1000.0 + static_cast<double>(no % 500))}));
      if (no % 3 == 0) {
        DBRE_RETURN_IF_ERROR(hemployee->Insert(
            {Value::Int(no), Value::Text("2021-06-15"),
             Value::Real(1100.0 + static_cast<double>(no % 500))}));
      }
    }
  }
  // Department: 35 tuples. 30 dep values shared with Assignment ("D1".."D30")
  // plus 5 private ones ("X1".."X5") → the NEI of §6.1. Managers (emp)
  // repeat across departments, are drawn from HEmployee numbers, and every
  // seventh department has no manager (NULL emp — which is why `location`
  // gets pruned from emp's candidate RHS). skill and proj are functions of
  // emp (emp → skill, proj holds); proj = P(emp mod 6) collides across
  // managers, so proj ↛ emp and proj ↛ skill.
  {
    DBRE_ASSIGN_OR_RETURN(Table * department,
                          database->GetMutableTable("Department"));
    for (int64_t i = 1; i <= 35; ++i) {
      std::string dep =
          i <= 30 ? "D" + std::to_string(i) : "X" + std::to_string(i - 30);
      Value emp = Value::Null();
      Value skill = Value::Null();
      Value proj = Value::Null();
      if (i % 7 != 0) {
        int64_t manager = 100 + (i % 12);
        emp = Value::Int(manager);
        skill = Value::Text("sk" + std::to_string(manager % 4));
        proj = Value::Text("P" + std::to_string(manager % 6));
      }
      DBRE_RETURN_IF_ERROR(department->Insert(
          {Value::Text(dep), emp, skill,
           Value::Text("loc_" + std::to_string(i % 9)), proj}));
    }
  }
  // Assignment: two tuples per employee 1..1200. 300 distinct dep values,
  // 50 distinct proj values; project-name is a function of proj (the FD to
  // elicit) while emp/dep/proj determine nothing else.
  {
    DBRE_ASSIGN_OR_RETURN(Table * assignment,
                          database->GetMutableTable("Assignment"));
    auto project_name = [](int64_t proj) {
      return "project_" + std::to_string(proj);
    };
    for (int64_t e = 1; e <= 1200; ++e) {
      int64_t proj1 = e % 50;
      DBRE_RETURN_IF_ERROR(assignment->Insert(
          {Value::Int(e), Value::Text("D" + std::to_string(1 + (e * 7) % 300)),
           Value::Text("P" + std::to_string(proj1)),
           Value::Text("d" + std::to_string(e % 9)),
           Value::Text(project_name(proj1))}));
      int64_t proj2 = (e + 17) % 50;
      DBRE_RETURN_IF_ERROR(assignment->Insert(
          {Value::Int(e),
           Value::Text("D" + std::to_string(1 + (e * 13) % 300)),
           Value::Text("P" + std::to_string(proj2)),
           Value::Text("d" + std::to_string((e + 1) % 9)),
           Value::Text(project_name(proj2))}));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Database> BuildPaperSchema() {
  Database database;
  DBRE_RETURN_IF_ERROR(AddPaperSchemas(&database));
  return database;
}

Result<Database> BuildPaperDatabase() {
  DBRE_ASSIGN_OR_RETURN(Database database, BuildPaperSchema());
  DBRE_RETURN_IF_ERROR(PopulatePaperData(&database));
  return database;
}

std::vector<std::pair<std::string, std::string>> PaperProgramSources() {
  std::vector<std::pair<std::string, std::string>> sources;
  // Embedded-SQL payroll program: the HEmployee—Person join, with aliases.
  sources.emplace_back("payroll.pc", R"(
/* Monthly payroll listing. */
int print_payroll(void) {
  EXEC SQL SELECT p.name, h.salary
           FROM HEmployee h, Person p
           WHERE h.no = p.id AND h.date = '2020-01-01';
  return 0;
}
)");
  // Staffing program: Department—HEmployee twice (flat join and nested IN).
  sources.emplace_back("staffing.pc", R"(
void list_managers(void) {
  EXEC SQL SELECT d.location
           FROM Department d, HEmployee h
           WHERE d.emp = h.no;
}
void skilled_managers(void) {
  EXEC SQL SELECT skill FROM Department
           WHERE emp IN (SELECT no FROM HEmployee
                         WHERE salary >= :minsal);
}
)");
  // Reporting script: Assignment—HEmployee, explicit JOIN syntax for
  // Assignment—Department, and the INTERSECT idiom for the proj link.
  sources.emplace_back("reports.sql", R"(
-- employees with assignments
SELECT h.salary
FROM Assignment a, HEmployee h
WHERE a.emp = h.no;

-- assigned departments
SELECT a.date
FROM Assignment a JOIN Department d ON a.dep = d.dep;

-- projects both assigned and managed
SELECT proj FROM Department
INTERSECT
SELECT proj FROM Assignment;
)");
  // Call-level-interface style: the join lives in a C string literal.
  sources.emplace_back("audit.c", R"(
static const char *kQuery =
    "SELECT d.dep FROM Department d, Assignment a "
    "WHERE d.proj = a.proj";
)");
  return sources;
}

std::vector<EquiJoin> PaperJoinSet() {
  std::vector<EquiJoin> joins;
  joins.push_back(EquiJoin::Single("HEmployee", "no", "Person", "id"));
  joins.push_back(EquiJoin::Single("Department", "emp", "HEmployee", "no"));
  joins.push_back(EquiJoin::Single("Assignment", "emp", "HEmployee", "no"));
  joins.push_back(EquiJoin::Single("Assignment", "dep", "Department", "dep"));
  joins.push_back(
      EquiJoin::Single("Department", "proj", "Assignment", "proj"));
  return CanonicalJoinSet(joins);
}

std::unique_ptr<ScriptedOracle> PaperOracle() {
  auto oracle = std::make_unique<ScriptedOracle>();
  // §6.1: conceptualize the departments assigned to both projects and
  // employees as Ass-Dept.
  oracle->ScriptNei(
      EquiJoin::Single("Assignment", "dep", "Department", "dep")
          .Canonicalize()
          .ToString(),
      NeiDecision{NeiAction::kConceptualize, "Ass-Dept"});
  // §6.2.2: HEmployee.{no} is the hidden Employee object; the expert gives
  // up Assignment.{emp} and Department.{proj}.
  oracle->ScriptHiddenObject("HEmployee.{no}", true);
  oracle->ScriptHiddenObject("Assignment.{emp}", false);
  oracle->ScriptHiddenObject("Department.{proj}", false);
  // §7: application-domain names for the materialized relations.
  oracle->ScriptHiddenRelationName("HEmployee.{no}", "Employee");
  oracle->ScriptHiddenRelationName("Assignment.{dep}", "Other-Dept");
  oracle->ScriptFdRelationName("Department: {emp} -> {proj, skill}",
                               "Manager");
  oracle->ScriptFdRelationName("Assignment: {proj} -> {project-name}",
                               "Project");
  return oracle;
}

}  // namespace dbre::workload
