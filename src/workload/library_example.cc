#include "workload/library_example.h"

#include <string>

namespace dbre::workload {
namespace {

Status AddLibrarySchemas(Database* database) {
  {
    RelationSchema members("Members");
    DBRE_RETURN_IF_ERROR(members.AddAttribute("id", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(members.AddAttribute("name", DataType::kString));
    DBRE_RETURN_IF_ERROR(members.AddAttribute("status", DataType::kString));
    DBRE_RETURN_IF_ERROR(members.DeclareUnique({"id"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(members)));
  }
  {
    RelationSchema cardholders("Cardholders");
    DBRE_RETURN_IF_ERROR(cardholders.AddAttribute("id", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(cardholders.AddAttribute("card_no",
                                                  DataType::kString,
                                                  /*not_null=*/true));
    DBRE_RETURN_IF_ERROR(cardholders.DeclareUnique({"id"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(cardholders)));
  }
  {
    RelationSchema books("Books");
    DBRE_RETURN_IF_ERROR(books.AddAttribute("isbn", DataType::kString));
    DBRE_RETURN_IF_ERROR(books.AddAttribute("title", DataType::kString));
    DBRE_RETURN_IF_ERROR(books.AddAttribute("branch", DataType::kString));
    DBRE_RETURN_IF_ERROR(
        books.AddAttribute("branch_city", DataType::kString));
    DBRE_RETURN_IF_ERROR(books.DeclareUnique({"isbn"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(books)));
  }
  {
    RelationSchema staff("Staff");
    DBRE_RETURN_IF_ERROR(staff.AddAttribute("emp", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(staff.AddAttribute("branch", DataType::kString));
    DBRE_RETURN_IF_ERROR(staff.AddAttribute("role", DataType::kString));
    DBRE_RETURN_IF_ERROR(staff.DeclareUnique({"emp"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(staff)));
  }
  {
    RelationSchema loans("Loans");
    DBRE_RETURN_IF_ERROR(loans.AddAttribute("loan", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(loans.AddAttribute("member", DataType::kInt64));
    DBRE_RETURN_IF_ERROR(loans.AddAttribute("isbn", DataType::kString));
    DBRE_RETURN_IF_ERROR(loans.AddAttribute("due", DataType::kString));
    DBRE_RETURN_IF_ERROR(loans.DeclareUnique({"loan"}));
    DBRE_RETURN_IF_ERROR(database->CreateRelation(std::move(loans)));
  }
  return Status::Ok();
}

Status PopulateLibraryData(Database* database) {
  // Members and Cardholders share the id domain 1..200 exactly — the
  // cyclic-IND case. status takes two values (the discriminator).
  {
    DBRE_ASSIGN_OR_RETURN(Table * members,
                          database->GetMutableTable("Members"));
    DBRE_ASSIGN_OR_RETURN(Table * cardholders,
                          database->GetMutableTable("Cardholders"));
    for (int64_t id = 1; id <= 200; ++id) {
      DBRE_RETURN_IF_ERROR(members->Insert(
          {Value::Int(id), Value::Text("m" + std::to_string(id)),
           Value::Text(id % 5 == 0 ? "barred" : "active")}));
      DBRE_RETURN_IF_ERROR(cardholders->Insert(
          {Value::Int(id), Value::Text("C" + std::to_string(id))}));
    }
  }
  // Books: 150 titles over branches B0..B7; branch determines branch_city
  // EXCEPT for one corrupted tuple (isbn I42) — the extension violates the
  // FD the expert will enforce.
  {
    DBRE_ASSIGN_OR_RETURN(Table * books, database->GetMutableTable("Books"));
    for (int64_t i = 1; i <= 150; ++i) {
      int64_t branch = i % 8;
      std::string city = i == 42 ? "mispunched"
                                 : "city" + std::to_string(branch % 4);
      DBRE_RETURN_IF_ERROR(books->Insert(
          {Value::Text("I" + std::to_string(i)),
           Value::Text("t" + std::to_string(i)),
           Value::Text("B" + std::to_string(branch)), Value::Text(city)}));
    }
  }
  // Staff: 30 employees over branches B0..B9 (a superset of the books'
  // branches, so Books[branch] ≪ Staff[branch] holds cleanly).
  {
    DBRE_ASSIGN_OR_RETURN(Table * staff, database->GetMutableTable("Staff"));
    for (int64_t e = 1; e <= 30; ++e) {
      DBRE_RETURN_IF_ERROR(staff->Insert(
          {Value::Int(e), Value::Text("B" + std::to_string(e % 10)),
           Value::Text("r" + std::to_string(e % 3))}));
    }
  }
  // Loans: 395 clean loans covering members 1..150 and isbns I1..I120,
  // plus 5 orphaned member references (900..904) — the dirty foreign key
  // that becomes an NEI. The multipliers are coprime with the cycle
  // lengths so no accidental FDs arise (e.g. member ↛ due needs two loans
  // of one member with different due values).
  {
    DBRE_ASSIGN_OR_RETURN(Table * loans, database->GetMutableTable("Loans"));
    for (int64_t loan = 1; loan <= 395; ++loan) {
      DBRE_RETURN_IF_ERROR(loans->Insert(
          {Value::Int(loan), Value::Int(1 + (loan * 7) % 150),
           Value::Text("I" + std::to_string(1 + (loan * 11) % 120)),
           Value::Text("d" + std::to_string(loan % 7))}));
    }
    for (int64_t k = 0; k < 5; ++k) {
      DBRE_RETURN_IF_ERROR(loans->Insert(
          {Value::Int(396 + k), Value::Int(900 + k),
           Value::Text("I" + std::to_string(1 + k)),
           Value::Text("d" + std::to_string(k))}));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Database> BuildLibraryDatabase() {
  Database database;
  DBRE_RETURN_IF_ERROR(AddLibrarySchemas(&database));
  DBRE_RETURN_IF_ERROR(PopulateLibraryData(&database));
  return database;
}

std::vector<std::pair<std::string, std::string>> LibraryProgramSources() {
  std::vector<std::pair<std::string, std::string>> sources;
  sources.emplace_back("loans.pc", R"(
void overdue_list(void) {
  EXEC SQL SELECT m.name, l.due
           FROM Loans l, Members m
           WHERE l.member = m.id AND l.due = :today;
}
void loaned_titles(void) {
  EXEC SQL SELECT b.title FROM Loans l JOIN Books b ON l.isbn = b.isbn;
}
)");
  sources.emplace_back("membership.sql", R"(
-- members who do hold a card (the sets coincide, in fact)
SELECT id FROM Members
INTERSECT
SELECT id FROM Cardholders;

-- the status codes the counter application cares about
SELECT name FROM Members WHERE status = 'active';
SELECT name FROM Members WHERE status = 'barred';
)");
  sources.emplace_back("catalog.pc", R"(
void staffed_branches(void) {
  EXEC SQL SELECT title FROM Books
           WHERE branch IN (SELECT branch FROM Staff);
}
)");
  return sources;
}

std::vector<EquiJoin> LibraryJoinSet() {
  std::vector<EquiJoin> joins;
  joins.push_back(EquiJoin::Single("Loans", "member", "Members", "id"));
  joins.push_back(EquiJoin::Single("Loans", "isbn", "Books", "isbn"));
  joins.push_back(EquiJoin::Single("Members", "id", "Cardholders", "id"));
  joins.push_back(EquiJoin::Single("Books", "branch", "Staff", "branch"));
  return CanonicalJoinSet(joins);
}

std::unique_ptr<ScriptedOracle> LibraryOracle() {
  auto oracle = std::make_unique<ScriptedOracle>();
  // The orphaned member references make Loans-Members an NEI; the expert
  // disregards the extension and asserts the inclusion (§6.1 case (vi)).
  oracle->ScriptNei(
      EquiJoin::Single("Loans", "member", "Members", "id")
          .Canonicalize()
          .ToString(),
      NeiDecision{NeiAction::kForceLeftInRight, ""});
  // The corrupted Books tuple breaks branch → branch_city; the expert
  // enforces it anyway (§6.2.2 case (ii)).
  oracle->ScriptEnforceFd("Books: {branch} -> {branch_city}", true);
  // Names for the restructured relations.
  oracle->ScriptFdRelationName("Books: {branch} -> {branch_city}",
                               "Branch");
  return oracle;
}

}  // namespace dbre::workload
