// A second fully-worked legacy database: the municipal library.
//
// Where the paper's HR example exercises the happy paths (clean
// inclusions, one NEI conceptualization, hidden objects), this scenario is
// engineered to hit the *other* expert-decision branches in one coherent
// session:
//   * a dirty foreign key (Loans.member has orphans) → NEI resolved by
//     FORCING the inclusion (§6.1 case (vi));
//   * a corrupted denormalized attribute (one Loans row contradicts
//     branch → branch_city) → the expert ENFORCES the failed FD
//     (§6.2.2 case (ii));
//   * two relations over the same identifier domain (Members / Cardholders
//     with equal id sets) → cyclic INDs → mutual is-a, collapsible by the
//     is-a cycle merge;
//   * a status attribute compared against a small constant set in the
//     programs → a discriminator candidate for the selection analysis.
//
// Ground truth for assertions is exposed alongside the builders.
#ifndef DBRE_WORKLOAD_LIBRARY_EXAMPLE_H_
#define DBRE_WORKLOAD_LIBRARY_EXAMPLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/oracle.h"
#include "relational/database.h"
#include "relational/equi_join.h"

namespace dbre::workload {

// Schema:
//   Members(id*, name, status)                 key {id}
//   Cardholders(id*, card_no°)                 key {id}; same id domain
//   Books(isbn*, title, branch, branch_city)   key {isbn}; branch → city
//                                              (with 1 corrupted row)
//   Loans(loan*, member, isbn, due)            key {loan}; member has 5
//                                              orphan values
Result<Database> BuildLibraryDatabase();

// Application programs: joins Loans-Members, Loans-Books,
// Members-Cardholders (INTERSECT idiom), Books self-branch navigation via
// a second reference, plus status selections ('active'/'barred').
std::vector<std::pair<std::string, std::string>> LibraryProgramSources();

// The equi-join set the programs yield (canonicalized).
std::vector<EquiJoin> LibraryJoinSet();

// The expert session: forces Loans[member] ≪ Members[id] despite the
// orphans, enforces Books: branch → branch_city despite the corrupted
// row, declines all hidden objects except Books.{branch}.
std::unique_ptr<ScriptedOracle> LibraryOracle();

}  // namespace dbre::workload

#endif  // DBRE_WORKLOAD_LIBRARY_EXAMPLE_H_
