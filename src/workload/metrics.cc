#include "workload/metrics.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace dbre::workload {
namespace {

template <typename T>
PrecisionRecall CompareSets(std::set<T> recovered, std::set<T> truth) {
  PrecisionRecall pr;
  for (const T& item : recovered) {
    if (truth.contains(item)) {
      ++pr.true_positives;
    } else {
      ++pr.false_positives;
    }
  }
  for (const T& item : truth) {
    if (!recovered.contains(item)) ++pr.false_negatives;
  }
  return pr;
}

std::set<FunctionalDependency> SplitToSingletons(
    const std::vector<FunctionalDependency>& fds) {
  std::set<FunctionalDependency> out;
  for (const FunctionalDependency& fd : fds) {
    for (const std::string& attribute : fd.rhs) {
      out.insert(FunctionalDependency(fd.relation, fd.lhs,
                                      AttributeSet::Single(attribute)));
    }
  }
  return out;
}

}  // namespace

std::string PrecisionRecall::ToString() const {
  std::ostringstream os;
  os << "P=" << Precision() << " R=" << Recall() << " F1=" << F1() << " (tp="
     << true_positives << " fp=" << false_positives << " fn="
     << false_negatives << ")";
  return os.str();
}

PrecisionRecall CompareInds(const std::vector<InclusionDependency>& recovered,
                            const std::vector<InclusionDependency>& truth) {
  return CompareSets(
      std::set<InclusionDependency>(recovered.begin(), recovered.end()),
      std::set<InclusionDependency>(truth.begin(), truth.end()));
}

PrecisionRecall CompareFds(const std::vector<FunctionalDependency>& recovered,
                           const std::vector<FunctionalDependency>& truth) {
  return CompareSets(SplitToSingletons(recovered), SplitToSingletons(truth));
}

PrecisionRecall CompareQualified(
    const std::vector<QualifiedAttributes>& recovered,
    const std::vector<QualifiedAttributes>& truth) {
  return CompareSets(
      std::set<QualifiedAttributes>(recovered.begin(), recovered.end()),
      std::set<QualifiedAttributes>(truth.begin(), truth.end()));
}

}  // namespace dbre::workload
