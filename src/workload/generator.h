// Synthetic denormalized databases with known ground truth.
//
// The paper evaluates on a hand-built example; to measure scaling (P1–P5)
// and recovery quality (R1) we need arbitrarily sized inputs whose true
// dependencies are known. The generator forward-engineers a conceptual
// design and then denormalizes it, recording everything the DBRE method is
// supposed to rediscover:
//
//   * `num_entities` base entities E_0..E_{n-1}; each E_i (i > 0)
//     references a random earlier entity through a foreign-key attribute
//     (kept as a plain non-key column — old dictionaries declare no FKs).
//     Ground truth: R_i[fk] ≪ E_j[id] (key-based INDs).
//   * `num_merged` additional entities are denormalized away: each merged
//     entity M gets a *host* relation (gaining M's identifier and payload
//     columns — ground-truth FD  host: m_id → payload) and a *referrer*
//     relation (gaining just the identifier column). The identifier values
//     of the host are a subset of the referrer's, so host[m_id] ≪
//     referrer[m_id] is the ground-truth non-key IND whose analysis
//     reveals the FD — exactly the paper's Department/HEmployee pattern.
//     Hosts with zero payload attributes produce pure hidden objects.
//   * the application workload: one equi-join per link, emitted both as
//     structured EquiJoins and as embedded-SQL program sources (rotating
//     through WHERE joins, JOIN..ON, IN subqueries and INTERSECT so the
//     front end is exercised end to end), subsampled by `query_coverage`.
//   * optional corruption: `orphan_rate` > 0 plants foreign-key values
//     missing from the referenced relation, turning clean INDs into NEIs.
//
// Everything is driven by a seeded PRNG — same spec, same database.
#ifndef DBRE_WORKLOAD_GENERATOR_H_
#define DBRE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "deps/fd.h"
#include "deps/ind.h"
#include "relational/attribute_set.h"
#include "relational/database.h"
#include "relational/equi_join.h"

namespace dbre::workload {

struct SyntheticSpec {
  size_t num_entities = 5;        // base entities (≥ 2)
  // The first num_composite_keys entities carry two-part keys (hi, lo);
  // links to them become multi-attribute joins and INDs, exercising the
  // positional-pairing paths end to end.
  size_t num_composite_keys = 0;
  size_t num_merged = 2;          // denormalized (merged-away) entities
  size_t payload_per_entity = 2;  // non-key attributes per base entity
  size_t payload_per_merged = 2;  // payload columns a merged entity carries
  size_t rows_per_entity = 500;   // tuples per base relation
  double query_coverage = 1.0;    // fraction of links with a query
  double orphan_rate = 0.0;       // fraction of FK values made dangling
  uint64_t seed = 42;

  // Emit program sources (embedded SQL) in addition to structured joins.
  bool emit_program_sources = true;

  // Obfuscate link-attribute names: foreign-key columns become fk<i> and
  // the two sides of a merged identifier get unrelated names. Query-guided
  // discovery is unaffected (programs reference whatever names exist);
  // name-matching heuristics lose their signal. Used by experiment A5.
  bool obfuscate_names = false;
};

struct SyntheticDatabase {
  Database database;
  std::vector<EquiJoin> queries;  // the covered links, canonicalized
  std::vector<std::pair<std::string, std::string>> program_sources;

  // Ground truth to score recovery against.
  std::vector<InclusionDependency> true_inds;      // all links (clean form)
  std::vector<FunctionalDependency> true_fds;      // merged-entity FDs
  std::vector<QualifiedAttributes> true_identifiers;  // non-key identifiers
                                                       // (FD LHS + hidden)
};

// Generates a database per `spec`.
Result<SyntheticDatabase> GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace dbre::workload

#endif  // DBRE_WORKLOAD_GENERATOR_H_
