#include "workload/generator.h"

#include <algorithm>
#include <random>

#include "common/string_util.h"

namespace dbre::workload {
namespace {

// One navigation link of the generated design; becomes a query and a
// ground-truth IND. Attribute lists are parallel (composite-key links pair
// several columns).
struct Link {
  std::string lhs_relation;
  std::vector<std::string> lhs_attributes;
  std::string rhs_relation;
  std::vector<std::string> rhs_attributes;
};

std::string EntityName(size_t i) { return "E" + std::to_string(i); }
std::string EntityPayload(size_t i, size_t k) {
  return "e" + std::to_string(i) + "_p" + std::to_string(k);
}
std::string MergedId(size_t j) { return "m" + std::to_string(j) + "_id"; }
std::string MergedPayload(size_t j, size_t k) {
  return "m" + std::to_string(j) + "_p" + std::to_string(k);
}

// The pair-encoding base for composite keys; coprime-ish with typical row
// counts so both parts vary.
constexpr int64_t kCompositeBase = 97;

// Renders one link as an embedded-SQL program, rotating join idioms.
std::string RenderProgram(const Link& link, size_t idiom) {
  std::string sql;
  const size_t k = link.lhs_attributes.size();
  switch (idiom % 4) {
    case 0: {
      sql = "SELECT a." + link.lhs_attributes[0] + " FROM " +
            link.lhs_relation + " a, " + link.rhs_relation + " b WHERE ";
      for (size_t i = 0; i < k; ++i) {
        if (i > 0) sql += " AND ";
        sql += "a." + link.lhs_attributes[i] + " = b." +
               link.rhs_attributes[i];
      }
      break;
    }
    case 1: {
      sql = "SELECT a." + link.lhs_attributes[0] + " FROM " +
            link.lhs_relation + " a JOIN " + link.rhs_relation + " b ON ";
      for (size_t i = 0; i < k; ++i) {
        if (i > 0) sql += " AND ";
        sql += "a." + link.lhs_attributes[i] + " = b." +
               link.rhs_attributes[i];
      }
      break;
    }
    case 2: {
      std::string lhs_list = Join(link.lhs_attributes, ", ");
      std::string rhs_list = Join(link.rhs_attributes, ", ");
      if (k == 1) {
        sql = "SELECT " + lhs_list + " FROM " + link.lhs_relation +
              " WHERE " + lhs_list + " IN (SELECT " + rhs_list + " FROM " +
              link.rhs_relation + ")";
      } else {
        sql = "SELECT " + link.lhs_attributes[0] + " FROM " +
              link.lhs_relation + " WHERE (" + lhs_list + ") IN (SELECT " +
              rhs_list + " FROM " + link.rhs_relation + ")";
      }
      break;
    }
    default:
      sql = "SELECT " + Join(link.lhs_attributes, ", ") + " FROM " +
            link.lhs_relation + " INTERSECT SELECT " +
            Join(link.rhs_attributes, ", ") + " FROM " + link.rhs_relation;
      break;
  }
  return "void query_" + std::to_string(idiom) + "(void) {\n  EXEC SQL " +
         sql + ";\n}\n";
}

}  // namespace

Result<SyntheticDatabase> GenerateSynthetic(const SyntheticSpec& spec) {
  if (spec.num_entities < 2) {
    return InvalidArgumentError("need at least 2 base entities");
  }
  if (spec.rows_per_entity == 0) {
    return InvalidArgumentError("rows_per_entity must be positive");
  }
  if (spec.num_composite_keys > spec.num_entities) {
    return InvalidArgumentError(
        "num_composite_keys exceeds num_entities");
  }
  std::mt19937_64 rng(spec.seed);
  auto rand_index = [&](size_t bound) {
    return static_cast<size_t>(rng() % bound);
  };
  auto rand_unit = [&]() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  };

  SyntheticDatabase out;
  const size_t n = spec.num_entities;
  const int64_t rows = static_cast<int64_t>(spec.rows_per_entity);

  // Plan the structure first (parents, merged placements) so schemas can be
  // declared completely before data generation.
  std::vector<size_t> parent(n, 0);
  for (size_t i = 1; i < n; ++i) parent[i] = rand_index(i);

  struct MergedPlan {
    size_t host;
    size_t referrer;
  };
  std::vector<MergedPlan> merged(spec.num_merged);
  for (size_t j = 0; j < spec.num_merged; ++j) {
    merged[j].host = rand_index(n);
    merged[j].referrer = (merged[j].host + 1 + rand_index(n - 1)) % n;
  }

  // Entity i has a composite (two-part) key iff i < num_composite_keys.
  auto is_composite = [&](size_t i) { return i < spec.num_composite_keys; };
  auto merged_holder_is_host = [&](size_t j, size_t i) {
    return merged[j].host == i;
  };
  auto key_columns = [&](size_t i) -> std::vector<std::string> {
    if (is_composite(i)) {
      return {"e" + std::to_string(i) + "_hi",
              "e" + std::to_string(i) + "_lo"};
    }
    return {"e" + std::to_string(i) + "_id"};
  };
  auto ref_columns = [&](size_t p) -> std::vector<std::string> {
    if (spec.obfuscate_names) {
      if (is_composite(p)) {
        return {"fk" + std::to_string(p) + "a",
                "fk" + std::to_string(p) + "b"};
      }
      return {"fk" + std::to_string(p)};
    }
    if (is_composite(p)) {
      return {"e" + std::to_string(p) + "_ref_hi",
              "e" + std::to_string(p) + "_ref_lo"};
    }
    return {"e" + std::to_string(p) + "_ref"};
  };
  // Merged-id column name within relation i: identical on both sides when
  // names are aligned, unrelated when obfuscated.
  auto merged_id_name = [&](size_t j, size_t i) -> std::string {
    if (!spec.obfuscate_names) return MergedId(j);
    return (merged_holder_is_host(j, i) ? "hcol" : "rcol") +
           std::to_string(j);
  };
  // Encodes a (1-based) parent row id into its key values.
  auto encode_key = [&](size_t p, int64_t id) -> std::vector<int64_t> {
    if (is_composite(p)) return {id / kCompositeBase, id % kCompositeBase};
    return {id};
  };


  // Schemas.
  for (size_t i = 0; i < n; ++i) {
    RelationSchema schema(EntityName(i));
    for (const std::string& column : key_columns(i)) {
      DBRE_RETURN_IF_ERROR(schema.AddAttribute(column, DataType::kInt64));
    }
    for (size_t k = 0; k < spec.payload_per_entity; ++k) {
      DBRE_RETURN_IF_ERROR(
          schema.AddAttribute(EntityPayload(i, k), DataType::kString));
    }
    if (i > 0) {
      for (const std::string& column : ref_columns(parent[i])) {
        DBRE_RETURN_IF_ERROR(schema.AddAttribute(column, DataType::kInt64));
      }
    }
    for (size_t j = 0; j < spec.num_merged; ++j) {
      if (merged[j].host == i) {
        DBRE_RETURN_IF_ERROR(
            schema.AddAttribute(merged_id_name(j, i), DataType::kInt64));
        for (size_t k = 0; k < spec.payload_per_merged; ++k) {
          DBRE_RETURN_IF_ERROR(
              schema.AddAttribute(MergedPayload(j, k), DataType::kString));
        }
      }
      if (merged[j].referrer == i) {
        DBRE_RETURN_IF_ERROR(
            schema.AddAttribute(merged_id_name(j, i), DataType::kInt64));
      }
    }
    DBRE_RETURN_IF_ERROR(
        schema.DeclareUnique(AttributeSet(key_columns(i))));
    DBRE_RETURN_IF_ERROR(out.database.CreateRelation(std::move(schema)));
  }

  // Data. The merged-id domain is smaller than the row count so identifier
  // values repeat (FDs get multi-tuple witness groups).
  const int64_t merged_domain = std::max<int64_t>(2, rows / 5);
  const int64_t host_domain = std::max<int64_t>(1, merged_domain / 2);
  for (size_t i = 0; i < n; ++i) {
    DBRE_ASSIGN_OR_RETURN(Table * table,
                          out.database.GetMutableTable(EntityName(i)));
    const RelationSchema& schema = table->schema();
    const std::vector<std::string> keys = key_columns(i);
    const std::vector<std::string> refs =
        i > 0 ? ref_columns(parent[i]) : std::vector<std::string>{};
    for (int64_t row = 1; row <= rows; ++row) {
      // Pre-draw this row's FK target so all ref columns agree.
      int64_t ref_target =
          1 + static_cast<int64_t>(rand_index(static_cast<size_t>(rows)));
      if (spec.orphan_rate > 0.0 && rand_unit() < spec.orphan_rate) {
        ref_target += rows;  // dangling
      }
      std::vector<int64_t> key_values = encode_key(i, row);
      std::vector<int64_t> ref_values =
          i > 0 ? encode_key(parent[i], ref_target) : std::vector<int64_t>{};

      ValueVector values;
      values.reserve(schema.arity());
      for (const Attribute& attribute : schema.attributes()) {
        const std::string& name = attribute.name;
        if (auto it = std::find(keys.begin(), keys.end(), name);
            it != keys.end()) {
          values.push_back(
              Value::Int(key_values[static_cast<size_t>(it - keys.begin())]));
          continue;
        }
        if (auto it = std::find(refs.begin(), refs.end(), name);
            it != refs.end()) {
          values.push_back(
              Value::Int(ref_values[static_cast<size_t>(it - refs.begin())]));
          continue;
        }
        bool handled = false;
        for (size_t j = 0; j < spec.num_merged && !handled; ++j) {
          if (name == merged_id_name(j, i)) {
            int64_t domain =
                merged[j].host == i ? host_domain : merged_domain;
            int64_t id = 1 + static_cast<int64_t>(rand_index(
                                 static_cast<size_t>(domain)));
            if (merged[j].referrer == i) {
              // Guarantee full domain coverage with the first
              // merged_domain rows (so host ⊆ referrer); stay random after
              // that so two merged-id columns in the same relation are not
              // accidentally bijective (which would plant spurious FDs).
              if (row <= merged_domain) {
                id = row;
              } else {
                id = 1 + static_cast<int64_t>(
                             rand_index(static_cast<size_t>(merged_domain)));
              }
            }
            if (merged[j].host == i && spec.orphan_rate > 0.0 &&
                rand_unit() < spec.orphan_rate) {
              id += merged_domain;  // value outside the referrer's domain
            }
            values.push_back(Value::Int(id));
            handled = true;
            continue;
          }
          for (size_t k = 0; k < spec.payload_per_merged; ++k) {
            if (name == MergedPayload(j, k)) {
              // Function of the merged id (already generated: the id column
              // precedes its payload columns in the schema).
              size_t id_index =
                  schema.AttributeIndex(merged_id_name(j, i)).value();
              int64_t id = values[id_index].as_int();
              values.push_back(Value::Text(
                  "mp" + std::to_string(k) + "_" + std::to_string(id * 7)));
              handled = true;
              break;
            }
          }
        }
        if (handled) continue;
        // Entity payload: pseudo-random, repeating, NOT a function of the
        // key restricted to any single column pair (depends on row).
        values.push_back(Value::Text(
            "p_" + std::to_string((row * 31 + static_cast<int64_t>(
                                                  values.size()) * 7) %
                                  97)));
      }
      DBRE_RETURN_IF_ERROR(table->Insert(std::move(values)));
    }
  }

  // Links, ground truth, queries.
  std::vector<Link> links;
  for (size_t i = 1; i < n; ++i) {
    Link link{EntityName(i), ref_columns(parent[i]),
              EntityName(parent[i]), key_columns(parent[i])};
    out.true_inds.emplace_back(link.lhs_relation, link.lhs_attributes,
                               link.rhs_relation, link.rhs_attributes);
    links.push_back(std::move(link));
  }
  for (size_t j = 0; j < spec.num_merged; ++j) {
    Link link{EntityName(merged[j].host),
              {merged_id_name(j, merged[j].host)},
              EntityName(merged[j].referrer),
              {merged_id_name(j, merged[j].referrer)}};
    out.true_inds.emplace_back(link.lhs_relation, link.lhs_attributes,
                               link.rhs_relation, link.rhs_attributes);
    AttributeSet rhs;
    for (size_t k = 0; k < spec.payload_per_merged; ++k) {
      rhs.Insert(MergedPayload(j, k));
    }
    if (!rhs.empty()) {
      out.true_fds.emplace_back(
          EntityName(merged[j].host),
          AttributeSet::Single(merged_id_name(j, merged[j].host)), rhs);
    }
    out.true_identifiers.push_back(QualifiedAttributes{
        EntityName(merged[j].host),
        AttributeSet::Single(merged_id_name(j, merged[j].host))});
    out.true_identifiers.push_back(QualifiedAttributes{
        EntityName(merged[j].referrer),
        AttributeSet::Single(merged_id_name(j, merged[j].referrer))});
    links.push_back(std::move(link));
  }
  std::sort(out.true_inds.begin(), out.true_inds.end());
  std::sort(out.true_fds.begin(), out.true_fds.end());
  std::sort(out.true_identifiers.begin(), out.true_identifiers.end());
  out.true_identifiers.erase(
      std::unique(out.true_identifiers.begin(), out.true_identifiers.end()),
      out.true_identifiers.end());

  std::vector<EquiJoin> joins;
  for (size_t idx = 0; idx < links.size(); ++idx) {
    if (rand_unit() >= spec.query_coverage) continue;
    const Link& link = links[idx];
    EquiJoin join;
    join.left_relation = link.lhs_relation;
    join.left_attributes = link.lhs_attributes;
    join.right_relation = link.rhs_relation;
    join.right_attributes = link.rhs_attributes;
    joins.push_back(std::move(join));
    if (spec.emit_program_sources) {
      out.program_sources.emplace_back(
          "prog_" + std::to_string(idx) + ".pc", RenderProgram(link, idx));
    }
  }
  out.queries = CanonicalJoinSet(joins);
  return out;
}

}  // namespace dbre::workload
