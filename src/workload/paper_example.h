// The paper's running example (§5), fully materialized.
//
// Schema (keys underlined in the paper → unique declarations here):
//   Person(id*, name, street, number, zip-code, state)        key {id}
//   HEmployee(no*, date*, salary)                             key {no, date}
//   Department(dep*, emp, skill, location°, proj)             key {dep}
//   Assignment(emp*, dep*, proj*, date, project-name)         key {emp,dep,proj}
// (° = declared not null.)
//
// The extension is engineered to reproduce every valuation the paper
// reports:
//   ‖Person[id]‖ = 2200, ‖HEmployee[no]‖ = 1550, join = 1550
//     → HEmployee[no] ≪ Person[id];
//   Assignment[dep] ⋈ Department[dep] is a genuine NEI — the paper's copy
//     omits the literal counts, we fix ‖Assignment[dep]‖ = 300,
//     ‖Department[dep]‖ = 35, join = 30;
//   Department[emp] ⊆ HEmployee[no] (with NULLs in emp, as §6.2.2 needs),
//   Assignment[emp] ⊆ HEmployee[no], Department[proj] ⊆ Assignment[proj];
//   Department: emp → skill, proj and Assignment: proj → project-name hold;
//   Person: zip-code → state holds (the FD the method deliberately does
//   NOT elicit); HEmployee: no ↛ salary, Assignment: emp ↛ date, ...
//
// Application programs (embedded SQL + a report script) yield exactly the
// five equi-joins of §5, and PaperOracle() scripts the expert's decisions
// of §6–§7 (Ass-Dept, Employee, Other-Dept, Manager, Project).
#ifndef DBRE_WORKLOAD_PAPER_EXAMPLE_H_
#define DBRE_WORKLOAD_PAPER_EXAMPLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/oracle.h"
#include "relational/database.h"
#include "relational/equi_join.h"

namespace dbre::workload {

// Builds the schema and the engineered extension.
Result<Database> BuildPaperDatabase();

// Builds only the schema (empty extension) — for tests that load their own
// data.
Result<Database> BuildPaperSchema();

// The application-program sources of the example: (file name, content).
// Scanning + extraction yields exactly the five equi-joins of §5.
std::vector<std::pair<std::string, std::string>> PaperProgramSources();

// The five equi-joins of §5, directly (canonicalized).
std::vector<EquiJoin> PaperJoinSet();

// The expert's scripted decisions for the full session of §6–§7.
std::unique_ptr<ScriptedOracle> PaperOracle();

}  // namespace dbre::workload

#endif  // DBRE_WORKLOAD_PAPER_EXAMPLE_H_
