// Recovery-quality metrics: how much of the ground truth did the method
// rediscover (experiment R1)?
#ifndef DBRE_WORKLOAD_METRICS_H_
#define DBRE_WORKLOAD_METRICS_H_

#include <string>
#include <vector>

#include "deps/fd.h"
#include "deps/ind.h"
#include "relational/attribute_set.h"

namespace dbre::workload {

struct PrecisionRecall {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  double Precision() const {
    size_t denom = true_positives + false_positives;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
  double Recall() const {
    size_t denom = true_positives + false_negatives;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  std::string ToString() const;
};

// Set comparison on exact IND equality.
PrecisionRecall CompareInds(const std::vector<InclusionDependency>& recovered,
                            const std::vector<InclusionDependency>& truth);

// FDs are compared after splitting to singleton right-hand sides, so
// R: a → bc counts as recovering both R: a → b and R: a → c.
PrecisionRecall CompareFds(const std::vector<FunctionalDependency>& recovered,
                           const std::vector<FunctionalDependency>& truth);

// Qualified attribute sets (identifiers / hidden objects).
PrecisionRecall CompareQualified(
    const std::vector<QualifiedAttributes>& recovered,
    const std::vector<QualifiedAttributes>& truth);

}  // namespace dbre::workload

#endif  // DBRE_WORKLOAD_METRICS_H_
