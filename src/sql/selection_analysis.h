// Selection-predicate analysis — the paper's closing perspective.
//
// §8 suggests treating "the application programs of legacy systems ... as
// oracles that help to discover the relevant information in the data
// mines". Equi-joins give inter-object links (§6); this module harvests
// the other recurring predicate family, *selections on constants*
// (`WHERE type = 'M'`), which witnesses value-based specialization: an
// attribute repeatedly compared against a small set of literals across the
// program corpus is a candidate subtype discriminator (cf. the cognitive
// patterns of Signore et al., the paper's ref [22]).
//
// The analysis reports, per (relation, attribute): the distinct constants
// the programs compare it with, how many statements do so, and — when the
// extension is available — what fraction of the stored values those
// constants cover. High coverage by few constants = strong discriminator
// evidence.
#ifndef DBRE_SQL_SELECTION_ANALYSIS_H_
#define DBRE_SQL_SELECTION_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "sql/ast.h"
#include "sql/extractor.h"

namespace dbre::sql {

struct DiscriminatorCandidate {
  std::string relation;
  std::string attribute;
  // Distinct literal texts the programs compare the attribute with,
  // sorted. (Rendered as in the source: strings unquoted, numbers as
  // written.)
  std::vector<std::string> constants;
  size_t statements = 0;  // statements containing such a comparison
  // Fraction of the relation's stored (non-NULL) values covered by the
  // constants; -1 when no extension was supplied.
  double value_coverage = -1.0;

  std::string ToString() const;
};

struct SelectionAnalysisOptions {
  // Only report attributes compared with at most this many distinct
  // constants (discriminators have small domains).
  size_t max_constants = 8;
  // Require at least this many distinct constants (a single constant is a
  // filter, not a partition).
  size_t min_constants = 2;
  const Database* catalog = nullptr;  // for resolution and coverage
};

// Harvests constant-equality selections from one parsed statement into
// `accumulator` keyed by "relation.attribute" (exposed for streaming over
// corpora); use AnalyzeSelections for the end-to-end path.
void CollectConstantSelections(
    const SelectStatement& statement, const ExtractionOptions& resolution,
    std::vector<DiscriminatorCandidate>* accumulator);

// Scans `sources` (name, content — same shapes as the scanner accepts),
// merges per-attribute evidence, filters by the options, computes coverage
// against the catalog's extension, and returns candidates sorted by
// descending statement count.
Result<std::vector<DiscriminatorCandidate>> AnalyzeSelections(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const SelectionAnalysisOptions& options = {});

}  // namespace dbre::sql

#endif  // DBRE_SQL_SELECTION_ANALYSIS_H_
