#include "sql/dml.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/string_util.h"
#include "sql/token.h"

namespace dbre::sql {
namespace {

// Numeric-coercing comparison mirroring the executor's CompareValues, but
// total: incomparable types yield nullopt and the predicate is false.
std::optional<int> Compare(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    return a.as_int() < b.as_int() ? -1 : (a.as_int() > b.as_int() ? 1 : 0);
  }
  if ((a.is_int() || a.is_real()) && (b.is_int() || b.is_real())) {
    double da = a.is_int() ? static_cast<double>(a.as_int()) : a.as_real();
    double db = b.is_int() ? static_cast<double>(b.as_int()) : b.as_real();
    if (da < db) return -1;
    if (da > db) return 1;
    if (da == db) return 0;
    return std::nullopt;  // NaN involved: no ordering, predicate false
  }
  if (a.is_text() && b.is_text()) {
    int cmp = a.as_text().compare(b.as_text());
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return std::nullopt;
}

enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kIsNull, kIsNotNull };

struct SimplePredicate {
  size_t column = 0;
  Op op = Op::kEq;
  Value literal;
};

bool PredicateMatches(const SimplePredicate& predicate,
                      const ValueVector& row) {
  const Value& cell = row[predicate.column];
  switch (predicate.op) {
    case Op::kIsNull:
      return cell.is_null();
    case Op::kIsNotNull:
      return !cell.is_null();
    default:
      break;
  }
  if (cell.is_null() || predicate.literal.is_null()) return false;
  std::optional<int> cmp = Compare(cell, predicate.literal);
  if (!cmp.has_value()) return false;
  switch (predicate.op) {
    case Op::kEq:
      return *cmp == 0;
    case Op::kNe:
      return *cmp != 0;
    case Op::kLt:
      return *cmp < 0;
    case Op::kLe:
      return *cmp <= 0;
    case Op::kGt:
      return *cmp > 0;
    case Op::kGe:
      return *cmp >= 0;
    default:
      return false;
  }
}

bool ConjunctionMatches(const std::vector<SimplePredicate>& where,
                        const ValueVector& row) {
  for (const SimplePredicate& predicate : where) {
    if (!PredicateMatches(predicate, row)) return false;
  }
  return true;
}

struct Statement {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;
  Table* table = nullptr;
  std::string table_name;
  std::vector<ValueVector> insert_rows;  // kInsert
  std::vector<size_t> set_columns;       // kUpdate, sorted by parse order
  ValueVector set_values;                // kUpdate, parallel to set_columns
  std::vector<SimplePredicate> where;    // kUpdate/kDelete; empty = all rows
};

class DmlParser {
 public:
  DmlParser(std::vector<Token> tokens, Database* database)
      : tokens_(std::move(tokens)), database_(database) {}

  Result<std::vector<Statement>> Run() {
    std::vector<Statement> statements;
    while (!Check(TokenType::kEnd)) {
      if (Match(TokenType::kSemicolon)) continue;
      Statement statement;
      if (CheckKeyword("INSERT")) {
        DBRE_RETURN_IF_ERROR(ParseInsert(&statement));
      } else if (CheckKeyword("UPDATE")) {
        DBRE_RETURN_IF_ERROR(ParseUpdate(&statement));
      } else if (CheckKeyword("DELETE")) {
        DBRE_RETURN_IF_ERROR(ParseDelete(&statement));
      } else {
        return ErrorHere("expected INSERT, UPDATE or DELETE");
      }
      statements.push_back(std::move(statement));
    }
    return statements;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;
    return tokens_[index];
  }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kKeyword && Peek().text == keyword;
  }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }
  bool MatchKeyword(std::string_view keyword) {
    if (!CheckKeyword(keyword)) return false;
    ++pos_;
    return true;
  }
  Status ErrorHere(std::string_view message) const {
    return dbre::ParseError(std::string(message) + " at line " +
                            std::to_string(Peek().line) + " near " +
                            Peek().ToString());
  }
  Status Expect(TokenType type) {
    if (Match(type)) return Status::Ok();
    return ErrorHere(std::string("expected ") + TokenTypeName(type));
  }
  Status ExpectKeyword(std::string_view keyword) {
    if (MatchKeyword(keyword)) return Status::Ok();
    return ErrorHere("expected " + std::string(keyword));
  }
  Result<std::string> ExpectIdentifier() {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected identifier");
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  Result<Value> ParseLiteral(DataType type) {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger:
      case TokenType::kDecimal: {
        DBRE_ASSIGN_OR_RETURN(Value value, Value::Parse(token.text, type));
        ++pos_;
        return value;
      }
      case TokenType::kString: {
        Value value = type == DataType::kString ? Value::Text(token.text)
                                                : Value();
        if (type != DataType::kString) {
          DBRE_ASSIGN_OR_RETURN(value, Value::Parse(token.text, type));
        }
        ++pos_;
        return value;
      }
      case TokenType::kKeyword:
        if (token.text == "NULL") {
          ++pos_;
          return Value::Null();
        }
        break;
      case TokenType::kIdentifier:
        // Unquoted TRUE/FALSE for booleans.
        if (type == DataType::kBool) {
          DBRE_ASSIGN_OR_RETURN(Value value, Value::Parse(token.text, type));
          ++pos_;
          return value;
        }
        break;
      default:
        break;
    }
    return ErrorHere("expected literal");
  }

  Result<Table*> ResolveTable(const std::string& name) {
    DBRE_ASSIGN_OR_RETURN(Table * table, database_->GetMutableTable(name));
    return table;
  }

  // predicate [AND predicate]* over `schema`; resolved to column indexes.
  Result<std::vector<SimplePredicate>> ParseWhere(
      const RelationSchema& schema) {
    std::vector<SimplePredicate> where;
    do {
      SimplePredicate predicate;
      DBRE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      DBRE_ASSIGN_OR_RETURN(predicate.column, schema.AttributeIndex(name));
      if (MatchKeyword("IS")) {
        predicate.op = MatchKeyword("NOT") ? Op::kIsNotNull : Op::kIsNull;
        DBRE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      } else {
        switch (Peek().type) {
          case TokenType::kEquals:
            predicate.op = Op::kEq;
            break;
          case TokenType::kNotEquals:
            predicate.op = Op::kNe;
            break;
          case TokenType::kLess:
            predicate.op = Op::kLt;
            break;
          case TokenType::kLessEquals:
            predicate.op = Op::kLe;
            break;
          case TokenType::kGreater:
            predicate.op = Op::kGt;
            break;
          case TokenType::kGreaterEquals:
            predicate.op = Op::kGe;
            break;
          default:
            return ErrorHere("expected comparison operator or IS [NOT] NULL");
        }
        ++pos_;
        DBRE_ASSIGN_OR_RETURN(
            predicate.literal,
            ParseLiteral(schema.attributes()[predicate.column].type));
      }
      where.push_back(std::move(predicate));
    } while (MatchKeyword("AND"));
    return where;
  }

  Status ParseInsert(Statement* statement) {
    statement->kind = Statement::Kind::kInsert;
    DBRE_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    DBRE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    DBRE_ASSIGN_OR_RETURN(statement->table_name, ExpectIdentifier());
    DBRE_ASSIGN_OR_RETURN(statement->table,
                          ResolveTable(statement->table_name));
    const RelationSchema& schema = statement->table->schema();
    const AttributeSet not_null = schema.NotNullAttributes();

    std::vector<size_t> column_indexes;
    if (Check(TokenType::kLeftParen)) {
      ++pos_;
      while (true) {
        DBRE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
        DBRE_ASSIGN_OR_RETURN(size_t index, schema.AttributeIndex(name));
        column_indexes.push_back(index);
        if (!Match(TokenType::kComma)) break;
      }
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
    } else {
      for (size_t i = 0; i < schema.arity(); ++i) column_indexes.push_back(i);
    }

    DBRE_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
      ValueVector row(schema.arity());  // defaults to NULLs
      size_t position = 0;
      while (true) {
        if (position >= column_indexes.size()) {
          return ErrorHere("too many values in INSERT row");
        }
        size_t column = column_indexes[position];
        DBRE_ASSIGN_OR_RETURN(
            Value value, ParseLiteral(schema.attributes()[column].type));
        row[column] = std::move(value);
        ++position;
        if (!Match(TokenType::kComma)) break;
      }
      if (position != column_indexes.size()) {
        return ErrorHere("too few values in INSERT row");
      }
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
      // Validate now so the apply phase cannot fail mid-script.
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i].is_null() &&
            not_null.Contains(schema.attributes()[i].name)) {
          return ErrorHere("NULL in not-null attribute " + schema.name() +
                           "." + schema.attributes()[i].name);
        }
      }
      statement->insert_rows.push_back(std::move(row));
      if (!Match(TokenType::kComma)) break;
    }
    Match(TokenType::kSemicolon);
    return Status::Ok();
  }

  Status ParseUpdate(Statement* statement) {
    statement->kind = Statement::Kind::kUpdate;
    DBRE_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    DBRE_ASSIGN_OR_RETURN(statement->table_name, ExpectIdentifier());
    DBRE_ASSIGN_OR_RETURN(statement->table,
                          ResolveTable(statement->table_name));
    const RelationSchema& schema = statement->table->schema();
    const AttributeSet not_null = schema.NotNullAttributes();
    DBRE_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      DBRE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      DBRE_ASSIGN_OR_RETURN(size_t column, schema.AttributeIndex(name));
      if (std::find(statement->set_columns.begin(),
                    statement->set_columns.end(),
                    column) != statement->set_columns.end()) {
        return ErrorHere("duplicate SET column " + name);
      }
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kEquals));
      DBRE_ASSIGN_OR_RETURN(Value value,
                            ParseLiteral(schema.attributes()[column].type));
      if (value.is_null() && not_null.Contains(schema.attributes()[column].name)) {
        return ErrorHere("NULL in not-null attribute " + schema.name() + "." +
                         schema.attributes()[column].name);
      }
      statement->set_columns.push_back(column);
      statement->set_values.push_back(std::move(value));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("WHERE")) {
      DBRE_ASSIGN_OR_RETURN(statement->where, ParseWhere(schema));
    }
    Match(TokenType::kSemicolon);
    return Status::Ok();
  }

  Status ParseDelete(Statement* statement) {
    statement->kind = Statement::Kind::kDelete;
    DBRE_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    DBRE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DBRE_ASSIGN_OR_RETURN(statement->table_name, ExpectIdentifier());
    DBRE_ASSIGN_OR_RETURN(statement->table,
                          ResolveTable(statement->table_name));
    if (MatchKeyword("WHERE")) {
      DBRE_ASSIGN_OR_RETURN(statement->where,
                            ParseWhere(statement->table->schema()));
    }
    Match(TokenType::kSemicolon);
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  Database* database_;
  size_t pos_ = 0;
};

TableMutation* MutationFor(DmlStats* stats, const std::string& table) {
  for (TableMutation& mutation : stats->tables) {
    if (mutation.table == table) return &mutation;
  }
  stats->tables.push_back(TableMutation{});
  stats->tables.back().table = table;
  return &stats->tables.back();
}

}  // namespace

Result<DmlStats> ExecuteDmlScript(std::string_view sql, Database* database) {
  if (database == nullptr) return InvalidArgumentError("database is null");
  DBRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  DmlParser parser(std::move(tokens), database);
  DBRE_ASSIGN_OR_RETURN(std::vector<Statement> statements, parser.Run());

  // Materialize every paged target up front: content-preserving, so a
  // failure here leaves the catalog logically unchanged and the script
  // unapplied. Mutations never write through the buffer pool.
  for (Statement& statement : statements) {
    if (statement.table->is_paged()) {
      DBRE_RETURN_IF_ERROR(statement.table->EnsureMaterialized());
    }
  }

  DmlStats stats;
  stats.statements = statements.size();
  for (Statement& statement : statements) {
    TableMutation* mutation = MutationFor(&stats, statement.table_name);
    switch (statement.kind) {
      case Statement::Kind::kInsert:
        for (ValueVector& row : statement.insert_rows) {
          DBRE_RETURN_IF_ERROR(statement.table->Insert(std::move(row)));
        }
        mutation->inserted += statement.insert_rows.size();
        stats.rows_inserted += statement.insert_rows.size();
        break;
      case Statement::Kind::kUpdate: {
        const std::vector<SimplePredicate>& where = statement.where;
        DBRE_ASSIGN_OR_RETURN(
            size_t updated,
            statement.table->UpdateRows(
                statement.set_columns, statement.set_values,
                [&where](const ValueVector& row) {
                  return ConjunctionMatches(where, row);
                }));
        mutation->updated += updated;
        stats.rows_updated += updated;
        if (updated > 0) {
          std::vector<size_t> merged = mutation->updated_columns;
          merged.insert(merged.end(), statement.set_columns.begin(),
                        statement.set_columns.end());
          std::sort(merged.begin(), merged.end());
          merged.erase(std::unique(merged.begin(), merged.end()),
                       merged.end());
          mutation->updated_columns = std::move(merged);
        }
        break;
      }
      case Statement::Kind::kDelete: {
        const std::vector<SimplePredicate>& where = statement.where;
        DBRE_ASSIGN_OR_RETURN(
            size_t deleted,
            statement.table->DeleteRows([&where](const ValueVector& row) {
              return ConjunctionMatches(where, row);
            }));
        mutation->deleted += deleted;
        stats.rows_deleted += deleted;
        if (deleted > 0) mutation->structural = true;
        break;
      }
    }
  }
  return stats;
}

}  // namespace dbre::sql
