#include "sql/ddl.h"

#include <vector>

#include "common/string_util.h"
#include "sql/token.h"

namespace dbre::sql {
namespace {

class DdlParser {
 public:
  DdlParser(std::vector<Token> tokens, Database* database)
      : tokens_(std::move(tokens)), database_(database) {}

  Result<DdlStats> Run() {
    DdlStats stats;
    while (!Check(TokenType::kEnd)) {
      if (Match(TokenType::kSemicolon)) continue;
      if (CheckKeyword("CREATE")) {
        DBRE_RETURN_IF_ERROR(ParseCreateTable());
        ++stats.tables_created;
      } else if (CheckKeyword("INSERT")) {
        DBRE_ASSIGN_OR_RETURN(size_t rows, ParseInsert());
        stats.rows_inserted += rows;
      } else {
        return ErrorHere("expected CREATE TABLE or INSERT");
      }
    }
    return stats;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;
    return tokens_[index];
  }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(std::string_view keyword) const {
    return Peek().type == TokenType::kKeyword && Peek().text == keyword;
  }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }
  bool MatchKeyword(std::string_view keyword) {
    if (!CheckKeyword(keyword)) return false;
    ++pos_;
    return true;
  }
  Status ErrorHere(std::string_view message) const {
    return dbre::ParseError(std::string(message) + " at line " +
                            std::to_string(Peek().line) + " near " +
                            Peek().ToString());
  }
  Status Expect(TokenType type) {
    if (Match(type)) return Status::Ok();
    return ErrorHere(std::string("expected ") + TokenTypeName(type));
  }
  Status ExpectKeyword(std::string_view keyword) {
    if (MatchKeyword(keyword)) return Status::Ok();
    return ErrorHere("expected " + std::string(keyword));
  }
  Result<std::string> ExpectIdentifier() {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected identifier");
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  // TYPE [( n [, m] )] → DataType; the optional scale decides NUMBER/
  // DECIMAL between int64 and double.
  Result<DataType> ParseType() {
    DBRE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    std::string upper = ToUpper(name);
    bool has_scale = false;
    if (Match(TokenType::kLeftParen)) {
      if (!Check(TokenType::kInteger)) {
        return ErrorHere("expected precision in type");
      }
      ++pos_;
      if (Match(TokenType::kComma)) {
        if (!Check(TokenType::kInteger)) {
          return ErrorHere("expected scale in type");
        }
        has_scale = Peek().text != "0";
        ++pos_;
      }
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
    }
    if (upper == "INT" || upper == "INTEGER" || upper == "SMALLINT" ||
        upper == "BIGINT" || upper == "INT64") {
      return DataType::kInt64;
    }
    if (upper == "NUMBER" || upper == "NUMERIC" || upper == "DECIMAL") {
      return has_scale ? DataType::kDouble : DataType::kInt64;
    }
    if (upper == "DOUBLE" || upper == "REAL" || upper == "FLOAT") {
      return DataType::kDouble;
    }
    if (upper == "BOOLEAN" || upper == "BOOL") return DataType::kBool;
    if (upper == "CHAR" || upper == "VARCHAR" || upper == "VARCHAR2" ||
        upper == "TEXT" || upper == "STRING" || upper == "DATE") {
      return DataType::kString;
    }
    return ErrorHere("unknown type " + name);
  }

  Result<AttributeSet> ParseColumnNameList() {
    DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
    AttributeSet columns;
    while (true) {
      DBRE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      columns.Insert(std::move(name));
      if (!Match(TokenType::kComma)) break;
    }
    DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
    return columns;
  }

  Status ParseCreateTable() {
    DBRE_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    DBRE_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DBRE_ASSIGN_OR_RETURN(std::string table_name, ExpectIdentifier());
    RelationSchema schema(table_name);
    std::vector<AttributeSet> uniques;
    AttributeSet primary_key;
    DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
    while (true) {
      if (MatchKeyword("UNIQUE")) {
        DBRE_ASSIGN_OR_RETURN(AttributeSet columns, ParseColumnNameList());
        uniques.push_back(std::move(columns));
      } else if (MatchKeyword("PRIMARY")) {
        DBRE_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        DBRE_ASSIGN_OR_RETURN(AttributeSet columns, ParseColumnNameList());
        if (!primary_key.empty()) {
          return ErrorHere("multiple PRIMARY KEY clauses");
        }
        primary_key = std::move(columns);
      } else {
        DBRE_ASSIGN_OR_RETURN(std::string column_name, ExpectIdentifier());
        DBRE_ASSIGN_OR_RETURN(DataType type, ParseType());
        bool not_null = false;
        while (true) {
          if (MatchKeyword("NOT")) {
            DBRE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
            not_null = true;
            continue;
          }
          if (MatchKeyword("UNIQUE")) {
            uniques.push_back(AttributeSet::Single(column_name));
            continue;
          }
          if (MatchKeyword("PRIMARY")) {
            DBRE_RETURN_IF_ERROR(ExpectKeyword("KEY"));
            if (!primary_key.empty()) {
              return ErrorHere("multiple PRIMARY KEY clauses");
            }
            primary_key = AttributeSet::Single(column_name);
            continue;
          }
          break;
        }
        DBRE_RETURN_IF_ERROR(
            schema.AddAttribute(std::move(column_name), type, not_null));
      }
      if (!Match(TokenType::kComma)) break;
    }
    DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
    Match(TokenType::kSemicolon);
    if (!primary_key.empty()) {
      DBRE_RETURN_IF_ERROR(schema.DeclareUnique(std::move(primary_key)));
    }
    for (AttributeSet& unique : uniques) {
      DBRE_RETURN_IF_ERROR(schema.DeclareUnique(std::move(unique)));
    }
    return database_->CreateRelation(std::move(schema));
  }

  Result<Value> ParseLiteral(DataType type) {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger:
      case TokenType::kDecimal: {
        DBRE_ASSIGN_OR_RETURN(Value value, Value::Parse(token.text, type));
        ++pos_;
        return value;
      }
      case TokenType::kString: {
        Value value = type == DataType::kString
                          ? Value::Text(token.text)
                          : Value();
        if (type != DataType::kString) {
          DBRE_ASSIGN_OR_RETURN(value, Value::Parse(token.text, type));
        }
        ++pos_;
        return value;
      }
      case TokenType::kKeyword:
        if (token.text == "NULL") {
          ++pos_;
          return Value::Null();
        }
        break;
      case TokenType::kIdentifier:
        // Unquoted TRUE/FALSE for booleans.
        if (type == DataType::kBool) {
          DBRE_ASSIGN_OR_RETURN(Value value, Value::Parse(token.text, type));
          ++pos_;
          return value;
        }
        break;
      default:
        break;
    }
    return ErrorHere("expected literal");
  }

  Result<size_t> ParseInsert() {
    DBRE_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    DBRE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    DBRE_ASSIGN_OR_RETURN(std::string table_name, ExpectIdentifier());
    DBRE_ASSIGN_OR_RETURN(Table * table,
                          database_->GetMutableTable(table_name));
    const RelationSchema& schema = table->schema();

    // Optional explicit column list.
    std::vector<size_t> column_indexes;
    if (Check(TokenType::kLeftParen)) {
      ++pos_;
      while (true) {
        DBRE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
        DBRE_ASSIGN_OR_RETURN(size_t index, schema.AttributeIndex(name));
        column_indexes.push_back(index);
        if (!Match(TokenType::kComma)) break;
      }
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
    } else {
      for (size_t i = 0; i < schema.arity(); ++i) column_indexes.push_back(i);
    }

    DBRE_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    size_t inserted = 0;
    while (true) {
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
      ValueVector row(schema.arity());  // defaults to NULLs
      size_t position = 0;
      while (true) {
        if (position >= column_indexes.size()) {
          return ErrorHere("too many values in INSERT row");
        }
        size_t column = column_indexes[position];
        DBRE_ASSIGN_OR_RETURN(Value value,
                              ParseLiteral(schema.attributes()[column].type));
        row[column] = std::move(value);
        ++position;
        if (!Match(TokenType::kComma)) break;
      }
      if (position != column_indexes.size()) {
        return ErrorHere("too few values in INSERT row");
      }
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
      DBRE_RETURN_IF_ERROR(table->Insert(std::move(row)));
      ++inserted;
      if (!Match(TokenType::kComma)) break;
    }
    Match(TokenType::kSemicolon);
    return inserted;
  }

  std::vector<Token> tokens_;
  Database* database_;
  size_t pos_ = 0;
};

}  // namespace

Result<DdlStats> ExecuteDdlScript(std::string_view sql, Database* database) {
  if (database == nullptr) return InvalidArgumentError("database is null");
  DBRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  DdlParser parser(std::move(tokens), database);
  return parser.Run();
}

}  // namespace dbre::sql
