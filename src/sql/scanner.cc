#include "sql/scanner.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"
#include "sql/parser.h"

namespace dbre::sql {
namespace {

size_t CountLines(std::string_view text, size_t end) {
  size_t lines = 1;
  for (size_t i = 0; i < end && i < text.size(); ++i) {
    if (text[i] == '\n') ++lines;
  }
  return lines;
}

// Case-insensitive search for `needle` in `haystack` starting at `from`.
size_t FindIgnoreCase(std::string_view haystack, std::string_view needle,
                      size_t from) {
  if (needle.empty() || haystack.size() < needle.size()) {
    return std::string_view::npos;
  }
  for (size_t i = from; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return i;
    }
  }
  return std::string_view::npos;
}

// True if position `pos` is at a word boundary on both sides of a match of
// length `len`.
bool IsWordBounded(std::string_view text, size_t pos, size_t len) {
  auto is_word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  if (pos > 0 && is_word(text[pos - 1])) return false;
  if (pos + len < text.size() && is_word(text[pos + len])) return false;
  return true;
}

// Extracts EXEC SQL ... ; / END-EXEC blocks.
void ScanExecSqlBlocks(std::string_view source,
                       std::vector<EmbeddedStatement>* out) {
  size_t pos = 0;
  while (true) {
    size_t start = FindIgnoreCase(source, "EXEC SQL", pos);
    if (start == std::string_view::npos) break;
    if (!IsWordBounded(source, start, 8)) {
      pos = start + 8;
      continue;
    }
    size_t body_start = start + 8;
    // Terminator: ';' or END-EXEC, whichever comes first.
    size_t semicolon = source.find(';', body_start);
    size_t end_exec = FindIgnoreCase(source, "END-EXEC", body_start);
    size_t body_end;
    size_t next;
    if (semicolon == std::string_view::npos &&
        end_exec == std::string_view::npos) {
      body_end = source.size();
      next = source.size();
    } else if (end_exec == std::string_view::npos ||
               (semicolon != std::string_view::npos &&
                semicolon < end_exec)) {
      body_end = semicolon;
      next = semicolon + 1;
    } else {
      body_end = end_exec;
      next = end_exec + 8;
    }
    std::string_view body =
        TrimWhitespace(source.substr(body_start, body_end - body_start));
    if (!body.empty()) {
      out->push_back(EmbeddedStatement{std::string(body),
                                       CountLines(source, start)});
    }
    pos = next;
  }
}

// Extracts double-quoted string literals that look like SELECT statements
// (call-level interface style). Handles \" escapes and adjacent-literal
// concatenation ("SELECT ..." " FROM ...").
void ScanStringLiteralQueries(std::string_view source,
                              std::vector<EmbeddedStatement>* out) {
  size_t i = 0;
  while (i < source.size()) {
    if (source[i] != '"') {
      ++i;
      continue;
    }
    size_t literal_start = i;
    std::string text;
    // Consume a run of adjacent string literals separated by whitespace.
    while (i < source.size() && source[i] == '"') {
      ++i;  // opening quote
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < source.size()) {
          text += source[i + 1];
          i += 2;
          continue;
        }
        text += source[i];
        ++i;
      }
      if (i < source.size()) ++i;  // closing quote
      size_t lookahead = i;
      while (lookahead < source.size() &&
             std::isspace(static_cast<unsigned char>(source[lookahead]))) {
        ++lookahead;
      }
      if (lookahead < source.size() && source[lookahead] == '"') {
        i = lookahead;
        continue;
      }
      break;
    }
    std::string_view trimmed = TrimWhitespace(text);
    if (trimmed.size() >= 6 &&
        EqualsIgnoreCase(trimmed.substr(0, 6), "SELECT")) {
      out->push_back(EmbeddedStatement{std::string(trimmed),
                                       CountLines(source, literal_start)});
    }
  }
}

}  // namespace

std::vector<EmbeddedStatement> ScanProgramText(std::string_view source) {
  std::vector<EmbeddedStatement> statements;
  ScanExecSqlBlocks(source, &statements);
  ScanStringLiteralQueries(source, &statements);
  return statements;
}

Result<std::vector<EmbeddedStatement>> ScanProgramFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string source = buffer.str();

  if (EndsWith(ToLower(path), ".sql")) {
    // Whole file is a SQL script: report it as one embedded statement per
    // ';'-separated statement, letting the parser do the splitting later.
    std::vector<EmbeddedStatement> statements;
    statements.push_back(EmbeddedStatement{std::move(source), 1});
    return statements;
  }
  return ScanProgramText(source);
}

namespace {

// Collects the raw (already canonicalized-per-script, but not deduplicated
// across statements) joins of a statement corpus.
Result<std::vector<EquiJoin>> CollectJoins(
    const std::vector<EmbeddedStatement>& statements,
    const ExtractionOptions& options, ExtractionStats* stats,
    std::vector<Status>* errors) {
  ExtractionStats local_stats;
  ExtractionStats* s = stats != nullptr ? stats : &local_stats;
  std::vector<EquiJoin> joins;
  for (const EmbeddedStatement& statement : statements) {
    ExtractionStats piece_stats;
    auto result = ExtractEquiJoinsFromScript(statement.text, options,
                                             &piece_stats, errors);
    if (!result.ok()) {
      if (errors != nullptr) errors->push_back(result.status());
      continue;
    }
    *s += piece_stats;
    for (EquiJoin& join : *result) joins.push_back(std::move(join));
  }
  return joins;
}

Result<std::vector<EquiJoin>> BuildFromStatements(
    const std::vector<EmbeddedStatement>& statements,
    const ExtractionOptions& options, ExtractionStats* stats,
    std::vector<Status>* errors) {
  DBRE_ASSIGN_OR_RETURN(std::vector<EquiJoin> joins,
                        CollectJoins(statements, options, stats, errors));
  return CanonicalJoinSet(joins);
}

std::vector<EmbeddedStatement> StatementsFromSources(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  std::vector<EmbeddedStatement> statements;
  for (const auto& [name, content] : sources) {
    std::vector<EmbeddedStatement> found;
    if (EndsWith(ToLower(name), ".sql")) {
      found.push_back(EmbeddedStatement{content, 1});
    } else {
      found = ScanProgramText(content);
    }
    for (EmbeddedStatement& statement : found) {
      statements.push_back(std::move(statement));
    }
  }
  return statements;
}

}  // namespace

Result<std::vector<EquiJoin>> BuildQueryJoinSet(
    const std::vector<std::string>& paths, const ExtractionOptions& options,
    ExtractionStats* stats, std::vector<Status>* errors) {
  if (stats != nullptr) *stats = ExtractionStats{};
  std::vector<EmbeddedStatement> statements;
  for (const std::string& path : paths) {
    DBRE_ASSIGN_OR_RETURN(std::vector<EmbeddedStatement> found,
                          ScanProgramFile(path));
    for (EmbeddedStatement& statement : found) {
      statements.push_back(std::move(statement));
    }
  }
  return BuildFromStatements(statements, options, stats, errors);
}

Result<std::vector<EquiJoin>> BuildQueryJoinSetFromSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const ExtractionOptions& options, ExtractionStats* stats,
    std::vector<Status>* errors) {
  if (stats != nullptr) *stats = ExtractionStats{};
  return BuildFromStatements(StatementsFromSources(sources), options, stats,
                             errors);
}

Result<std::vector<WeightedJoin>> BuildWeightedJoinSetFromSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const ExtractionOptions& options, ExtractionStats* stats,
    std::vector<Status>* errors) {
  if (stats != nullptr) *stats = ExtractionStats{};
  DBRE_ASSIGN_OR_RETURN(
      std::vector<EquiJoin> joins,
      CollectJoins(StatementsFromSources(sources), options, stats, errors));
  std::map<EquiJoin, size_t> counts;
  for (const EquiJoin& join : joins) ++counts[join.Canonicalize()];
  std::vector<WeightedJoin> weighted;
  weighted.reserve(counts.size());
  for (auto& [join, occurrences] : counts) {
    weighted.push_back(WeightedJoin{join, occurrences});
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const WeightedJoin& a, const WeightedJoin& b) {
              if (a.occurrences != b.occurrences) {
                return a.occurrences > b.occurrences;
              }
              return a.join < b.join;
            });
  return weighted;
}

}  // namespace dbre::sql
