// Recursive-descent parser for the legacy SQL query subset.
//
// Grammar (informal):
//   statement   := select [(INTERSECT | UNION [ALL] | MINUS) select]*
//   select      := SELECT [DISTINCT] select_list FROM from_list
//                  [WHERE expr] [GROUP BY cols] [ORDER BY cols [ASC|DESC]]
//   select_list := '*' | item (',' item)*          item := COUNT(...) | col
//   from_list   := table_ref ([INNER] JOIN table_ref ON expr | ',' table_ref)*
//   expr        := and_expr (OR and_expr)*
//   and_expr    := unary (AND unary)*
//   unary       := NOT unary | '(' expr ')' | predicate
//   predicate   := operand cmp operand | cols [NOT] IN '(' statement ')'
//                | [NOT] EXISTS '(' statement ')' | operand IS [NOT] NULL
//                | operand [NOT] BETWEEN operand AND operand
//                | operand [NOT] LIKE operand
//
// GROUP BY / ORDER BY clauses are parsed and discarded (they carry no
// navigation information).
#ifndef DBRE_SQL_PARSER_H_
#define DBRE_SQL_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace dbre::sql {

// Parses a single statement (a trailing ';' is allowed).
Result<std::unique_ptr<SelectStatement>> ParseSelect(std::string_view sql);

// Parses a ';'-separated script of SELECT statements, skipping statements
// that are not SELECTs (UPDATE/DELETE text is rejected per statement, not
// per script — live-session mutation goes through sql/dml.h instead).
// Returns parsed selects; `errors` (optional) collects per-statement parse
// failures.
Result<std::vector<std::unique_ptr<SelectStatement>>> ParseScript(
    std::string_view sql, std::vector<Status>* errors = nullptr);

}  // namespace dbre::sql

#endif  // DBRE_SQL_PARSER_H_
