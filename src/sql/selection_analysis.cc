#include "sql/selection_analysis.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/string_util.h"
#include "sql/parser.h"
#include "sql/scanner.h"

namespace dbre::sql {

std::string DiscriminatorCandidate::ToString() const {
  std::string out = relation + "." + attribute + " in {" +
                    Join(constants, ", ") + "} (" +
                    std::to_string(statements) + " statements";
  if (value_coverage >= 0.0) {
    out += ", covers " + std::to_string(static_cast<int>(
                             value_coverage * 100.0 + 0.5)) +
           "% of values";
  }
  out += ")";
  return out;
}

namespace {

// (relation, attribute) → set of constant texts seen in this statement.
using StatementFindings = std::map<std::pair<std::string, std::string>,
                                   std::set<std::string>>;

class SelectionWalker {
 public:
  SelectionWalker(const ExtractionOptions& resolution,
                  StatementFindings* findings)
      : resolution_(resolution), findings_(findings) {}

  void WalkStatement(const SelectStatement& statement) {
    scopes_.push_back(&statement.from);
    for (const auto& condition : statement.join_conditions) {
      WalkExpression(*condition);
    }
    if (statement.where != nullptr) WalkExpression(*statement.where);
    if (statement.set_rhs != nullptr) WalkStatement(*statement.set_rhs);
    scopes_.pop_back();
  }

 private:
  void WalkExpression(const Expression& expr) {
    switch (expr.kind) {
      case Expression::Kind::kComparison:
        if (expr.op == ComparisonOp::kEq) {
          TryRecord(expr.lhs, expr.rhs);
          TryRecord(expr.rhs, expr.lhs);
        }
        return;
      case Expression::Kind::kAnd:
      case Expression::Kind::kOr:
      case Expression::Kind::kNot:
        for (const auto& child : expr.children) WalkExpression(*child);
        return;
      case Expression::Kind::kInSubquery:
      case Expression::Kind::kExists:
        if (expr.subquery != nullptr) WalkStatement(*expr.subquery);
        return;
      default:
        return;
    }
  }

  void TryRecord(const Operand& column_side, const Operand& literal_side) {
    if (column_side.kind != Operand::Kind::kColumn) return;
    bool literal = literal_side.kind == Operand::Kind::kString ||
                   literal_side.kind == Operand::Kind::kInteger ||
                   literal_side.kind == Operand::Kind::kDecimal;
    if (!literal) return;
    std::optional<std::pair<std::string, std::string>> resolved =
        Resolve(column_side.column);
    if (!resolved.has_value()) return;
    (*findings_)[*resolved].insert(literal_side.literal);
  }

  // Minimal resolution mirroring the extractor's rules.
  std::optional<std::pair<std::string, std::string>> Resolve(
      const ColumnRef& ref) const {
    for (size_t depth = scopes_.size(); depth-- > 0;) {
      const std::vector<TableRef>& from = *scopes_[depth];
      if (!ref.qualifier.empty()) {
        for (const TableRef& table_ref : from) {
          const std::string& name = table_ref.alias.empty()
                                        ? table_ref.table
                                        : table_ref.alias;
          if (name == ref.qualifier) {
            return std::make_pair(table_ref.table, ref.column);
          }
        }
        continue;
      }
      if (from.size() == 1) {
        return std::make_pair(from[0].table, ref.column);
      }
      if (resolution_.catalog != nullptr) {
        std::optional<std::pair<std::string, std::string>> found;
        bool ambiguous = false;
        for (const TableRef& table_ref : from) {
          auto table = resolution_.catalog->GetTable(table_ref.table);
          if (!table.ok()) continue;
          if ((*table.value()).schema().HasAttribute(ref.column)) {
            if (found.has_value()) {
              ambiguous = true;
              break;
            }
            found = std::make_pair(table_ref.table, ref.column);
          }
        }
        if (found.has_value() && !ambiguous) return found;
        if (ambiguous) return std::nullopt;
      }
    }
    return std::nullopt;
  }

  const ExtractionOptions& resolution_;
  StatementFindings* findings_;
  std::vector<const std::vector<TableRef>*> scopes_;
};

// Fraction of the stored non-NULL values of relation.attribute that equal
// one of `constants` (parsed at the column's type).
Result<double> ComputeCoverage(const Database& catalog,
                               const std::string& relation,
                               const std::string& attribute,
                               const std::vector<std::string>& constants) {
  DBRE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(relation));
  DBRE_ASSIGN_OR_RETURN(DataType type,
                        table->schema().AttributeType(attribute));
  std::set<Value> values;
  for (const std::string& constant : constants) {
    auto parsed = Value::Parse(constant, type);
    if (parsed.ok()) values.insert(std::move(parsed).value());
  }
  DBRE_ASSIGN_OR_RETURN(size_t index,
                        table->schema().AttributeIndex(attribute));
  size_t total = 0, covered = 0;
  DBRE_RETURN_IF_ERROR(table->ForEachRow([&](const ValueVector& row) {
    if (row[index].is_null()) return;
    ++total;
    if (values.contains(row[index])) ++covered;
  }));
  if (total == 0) return 0.0;
  return static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace

void CollectConstantSelections(
    const SelectStatement& statement, const ExtractionOptions& resolution,
    std::vector<DiscriminatorCandidate>* accumulator) {
  StatementFindings findings;
  SelectionWalker walker(resolution, &findings);
  walker.WalkStatement(statement);
  for (const auto& [key, constants] : findings) {
    DiscriminatorCandidate candidate;
    candidate.relation = key.first;
    candidate.attribute = key.second;
    candidate.constants.assign(constants.begin(), constants.end());
    candidate.statements = 1;
    accumulator->push_back(std::move(candidate));
  }
}

Result<std::vector<DiscriminatorCandidate>> AnalyzeSelections(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const SelectionAnalysisOptions& options) {
  ExtractionOptions resolution;
  resolution.catalog = options.catalog;

  // Gather per-statement findings across the corpus.
  std::vector<DiscriminatorCandidate> raw;
  for (const auto& [name, content] : sources) {
    std::vector<EmbeddedStatement> statements;
    if (EndsWith(ToLower(name), ".sql")) {
      statements.push_back(EmbeddedStatement{content, 1});
    } else {
      statements = ScanProgramText(content);
    }
    for (const EmbeddedStatement& embedded : statements) {
      std::vector<Status> errors;
      auto parsed = ParseScript(embedded.text, &errors);
      if (!parsed.ok()) continue;
      for (const auto& statement : *parsed) {
        CollectConstantSelections(*statement, resolution, &raw);
      }
    }
  }

  // Merge by attribute.
  std::map<std::pair<std::string, std::string>, DiscriminatorCandidate>
      merged;
  for (DiscriminatorCandidate& candidate : raw) {
    auto key = std::make_pair(candidate.relation, candidate.attribute);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, std::move(candidate));
      continue;
    }
    DiscriminatorCandidate& existing = it->second;
    existing.statements += candidate.statements;
    std::vector<std::string> combined = existing.constants;
    combined.insert(combined.end(), candidate.constants.begin(),
                    candidate.constants.end());
    std::sort(combined.begin(), combined.end());
    combined.erase(std::unique(combined.begin(), combined.end()),
                   combined.end());
    existing.constants = std::move(combined);
  }

  // Filter and score.
  std::vector<DiscriminatorCandidate> result;
  for (auto& [key, candidate] : merged) {
    if (candidate.constants.size() < options.min_constants) continue;
    if (candidate.constants.size() > options.max_constants) continue;
    if (options.catalog != nullptr) {
      auto coverage =
          ComputeCoverage(*options.catalog, candidate.relation,
                          candidate.attribute, candidate.constants);
      if (coverage.ok()) candidate.value_coverage = *coverage;
    }
    result.push_back(std::move(candidate));
  }
  std::sort(result.begin(), result.end(),
            [](const DiscriminatorCandidate& a,
               const DiscriminatorCandidate& b) {
              if (a.statements != b.statements) {
                return a.statements > b.statements;
              }
              return std::tie(a.relation, a.attribute) <
                     std::tie(b.relation, b.attribute);
            });
  return result;
}

}  // namespace dbre::sql
