// Data-dictionary DDL: CREATE TABLE and INSERT for the legacy subset.
//
// §4 assumes the available constraints are exactly what old dictionaries
// record: `unique` and `not null`. The supported forms are:
//
//   CREATE TABLE name (
//     col TYPE [NOT NULL] [UNIQUE] [PRIMARY KEY],
//     ...,
//     UNIQUE (a, b, ...),
//     PRIMARY KEY (a, b, ...)
//   );
//   INSERT INTO name [(cols)] VALUES (v, ...) [, (v, ...)]* ;
//
// Types map onto the engine's four runtime types: INT/INTEGER/SMALLINT/
// NUMBER(p) → int64; NUMBER(p,s)/DECIMAL/FLOAT/REAL/DOUBLE → double;
// CHAR/VARCHAR/TEXT/STRING/DATE → string; BOOLEAN → bool. PRIMARY KEY is
// recorded as a unique declaration (placed first, so it becomes the
// relation's key per RelationSchema::PrimaryKey).
#ifndef DBRE_SQL_DDL_H_
#define DBRE_SQL_DDL_H_

#include <string_view>

#include "common/status.h"
#include "relational/database.h"

namespace dbre::sql {

struct DdlStats {
  size_t tables_created = 0;
  size_t rows_inserted = 0;
};

// Executes a ';'-separated script of CREATE TABLE / INSERT statements
// against `database`. Stops at the first error.
Result<DdlStats> ExecuteDdlScript(std::string_view sql, Database* database);

}  // namespace dbre::sql

#endif  // DBRE_SQL_DDL_H_
