// Lexer for the legacy SQL subset found in application programs.
//
// Handles identifiers (bare or "quoted"), keywords (case-insensitive),
// integer/decimal/string literals, host variables (:name, as found in
// embedded SQL), punctuation and comparison operators, plus SQL comments
// (-- to end of line and /* ... */).
#ifndef DBRE_SQL_TOKEN_H_
#define DBRE_SQL_TOKEN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dbre::sql {

enum class TokenType {
  kIdentifier,    // person, "Person"
  kKeyword,       // SELECT, FROM, ... (text is uppercased)
  kInteger,       // 42
  kDecimal,       // 3.14
  kString,        // 'text' (text is unescaped)
  kHostVariable,  // :emp_no
  kComma,
  kDot,
  kLeftParen,
  kRightParen,
  kEquals,        // =
  kNotEquals,     // <> or !=
  kLess,
  kLessEquals,
  kGreater,
  kGreaterEquals,
  kStar,          // *
  kSemicolon,
  kEnd,           // end of input
};

const char* TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/keyword/literal payload
  size_t line = 1;    // 1-based position for diagnostics
  size_t column = 1;

  std::string ToString() const;
};

// True if `word` (any case) is one of the recognized SQL keywords.
bool IsKeyword(std::string_view word);

// Tokenizes `sql`; the result always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace dbre::sql

#endif  // DBRE_SQL_TOKEN_H_
