#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"

namespace dbre::sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    DBRE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> stmt,
                          ParseSelectCore());
    // Set-operation chaining.
    SelectStatement* tail = stmt.get();
    while (true) {
      SelectStatement::SetOp op = SelectStatement::SetOp::kNone;
      if (MatchKeyword("INTERSECT")) {
        op = SelectStatement::SetOp::kIntersect;
      } else if (MatchKeyword("UNION")) {
        MatchKeyword("ALL");
        op = SelectStatement::SetOp::kUnion;
      } else if (MatchKeyword("MINUS")) {
        op = SelectStatement::SetOp::kMinus;
      } else {
        break;
      }
      DBRE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> rhs,
                            ParseSelectCore());
      tail->set_op = op;
      tail->set_rhs = std::move(rhs);
      tail = tail->set_rhs.get();
    }
    Match(TokenType::kSemicolon);
    if (!Check(TokenType::kEnd)) {
      return ErrorHere("trailing input after statement");
    }
    return stmt;
  }

  // Parses one statement, stopping after its optional ';' without requiring
  // end of input (for scripts).
  Result<std::unique_ptr<SelectStatement>> ParseStatementInScript() {
    DBRE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> stmt,
                          ParseSelectCore());
    SelectStatement* tail = stmt.get();
    while (true) {
      SelectStatement::SetOp op = SelectStatement::SetOp::kNone;
      if (MatchKeyword("INTERSECT")) {
        op = SelectStatement::SetOp::kIntersect;
      } else if (MatchKeyword("UNION")) {
        MatchKeyword("ALL");
        op = SelectStatement::SetOp::kUnion;
      } else if (MatchKeyword("MINUS")) {
        op = SelectStatement::SetOp::kMinus;
      } else {
        break;
      }
      DBRE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> rhs,
                            ParseSelectCore());
      tail->set_op = op;
      tail->set_rhs = std::move(rhs);
      tail = tail->set_rhs.get();
    }
    Match(TokenType::kSemicolon);
    return stmt;
  }

  bool AtEnd() const { return Check(TokenType::kEnd); }

  // Skips tokens until just past the next top-level ';' (error recovery).
  void SkipToNextStatement() {
    int depth = 0;
    while (!Check(TokenType::kEnd)) {
      if (Check(TokenType::kLeftParen)) ++depth;
      if (Check(TokenType::kRightParen) && depth > 0) --depth;
      bool was_semicolon = Check(TokenType::kSemicolon) && depth == 0;
      ++pos_;
      if (was_semicolon) break;
    }
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;
    return tokens_[index];
  }

  bool Check(TokenType type) const { return Peek().type == type; }

  bool CheckKeyword(std::string_view keyword, size_t ahead = 0) const {
    const Token& token = Peek(ahead);
    return token.type == TokenType::kKeyword && token.text == keyword;
  }

  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }

  bool MatchKeyword(std::string_view keyword) {
    if (!CheckKeyword(keyword)) return false;
    ++pos_;
    return true;
  }

  Status ErrorHere(std::string_view message) const {
    const Token& token = Peek();
    return dbre::ParseError(std::string(message) + " at line " +
                            std::to_string(token.line) + " near " +
                            token.ToString());
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (MatchKeyword(keyword)) return Status::Ok();
    return ErrorHere("expected " + std::string(keyword));
  }

  Status Expect(TokenType type) {
    if (Match(type)) return Status::Ok();
    return ErrorHere(std::string("expected ") + TokenTypeName(type));
  }

  Result<ColumnRef> ParseColumnRef() {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected column reference");
    }
    ColumnRef ref;
    ref.column = Peek().text;
    ++pos_;
    if (Match(TokenType::kDot)) {
      if (!Check(TokenType::kIdentifier) && !Check(TokenType::kStar)) {
        return ErrorHere("expected column after '.'");
      }
      ref.qualifier = std::move(ref.column);
      if (Match(TokenType::kStar)) {
        ref.column = "*";
      } else {
        ref.column = Peek().text;
        ++pos_;
      }
    }
    return ref;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Match(TokenType::kStar)) {
      item.star = true;
      return item;
    }
    if (MatchKeyword("COUNT")) {
      item.count = true;
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
      if (Match(TokenType::kStar)) {
        item.star = true;
      } else {
        if (MatchKeyword("DISTINCT")) item.distinct = true;
        DBRE_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      }
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
      return item;
    }
    DBRE_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
    if (item.column.column == "*") item.star = true;
    return item;
  }

  Result<TableRef> ParseTableRef() {
    if (!Check(TokenType::kIdentifier)) {
      return ErrorHere("expected table name");
    }
    TableRef ref;
    ref.table = Peek().text;
    ++pos_;
    if (MatchKeyword("AS")) {
      if (!Check(TokenType::kIdentifier)) {
        return ErrorHere("expected alias after AS");
      }
      ref.alias = Peek().text;
      ++pos_;
    } else if (Check(TokenType::kIdentifier)) {
      ref.alias = Peek().text;
      ++pos_;
    }
    return ref;
  }

  Result<Operand> ParseOperand() {
    const Token& token = Peek();
    Operand op;
    switch (token.type) {
      case TokenType::kIdentifier: {
        DBRE_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        return Operand::Column(std::move(ref));
      }
      case TokenType::kInteger:
        op.kind = Operand::Kind::kInteger;
        op.literal = token.text;
        ++pos_;
        return op;
      case TokenType::kDecimal:
        op.kind = Operand::Kind::kDecimal;
        op.literal = token.text;
        ++pos_;
        return op;
      case TokenType::kString:
        op.kind = Operand::Kind::kString;
        op.literal = token.text;
        ++pos_;
        return op;
      case TokenType::kHostVariable:
        op.kind = Operand::Kind::kHostVariable;
        op.literal = token.text;
        ++pos_;
        return op;
      case TokenType::kKeyword:
        if (token.text == "NULL") {
          op.kind = Operand::Kind::kNull;
          ++pos_;
          return op;
        }
        break;
      default:
        break;
    }
    return ErrorHere("expected operand");
  }

  Result<ComparisonOp> ParseComparisonOp() {
    if (Match(TokenType::kEquals)) return ComparisonOp::kEq;
    if (Match(TokenType::kNotEquals)) return ComparisonOp::kNe;
    if (Match(TokenType::kLess)) return ComparisonOp::kLt;
    if (Match(TokenType::kLessEquals)) return ComparisonOp::kLe;
    if (Match(TokenType::kGreater)) return ComparisonOp::kGt;
    if (Match(TokenType::kGreaterEquals)) return ComparisonOp::kGe;
    return ErrorHere("expected comparison operator");
  }

  // predicate after an already-parsed first operand.
  Result<std::unique_ptr<Expression>> ParsePredicateWithOperand(Operand lhs) {
    auto expr = std::make_unique<Expression>();
    bool negated = MatchKeyword("NOT");
    if (MatchKeyword("IN")) {
      if (lhs.kind != Operand::Kind::kColumn) {
        return ErrorHere("IN requires a column on the left");
      }
      expr->kind = Expression::Kind::kInSubquery;
      expr->negated = negated;
      expr->in_columns.push_back(lhs.column);
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
      if (!CheckKeyword("SELECT")) {
        return ErrorHere("only IN (SELECT ...) is supported");
      }
      DBRE_ASSIGN_OR_RETURN(expr->subquery, ParseSelectCore());
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
      return expr;
    }
    if (MatchKeyword("BETWEEN")) {
      expr->kind = Expression::Kind::kBetween;
      expr->negated = negated;
      expr->lhs = std::move(lhs);
      DBRE_ASSIGN_OR_RETURN(Operand low, ParseOperand());
      (void)low;
      DBRE_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DBRE_ASSIGN_OR_RETURN(Operand high, ParseOperand());
      (void)high;
      return expr;
    }
    if (MatchKeyword("LIKE")) {
      expr->kind = Expression::Kind::kLike;
      expr->negated = negated;
      expr->lhs = std::move(lhs);
      DBRE_ASSIGN_OR_RETURN(expr->rhs, ParseOperand());
      return expr;
    }
    if (negated) return ErrorHere("expected IN/BETWEEN/LIKE after NOT");
    if (MatchKeyword("IS")) {
      expr->kind = Expression::Kind::kIsNull;
      expr->negated = MatchKeyword("NOT");
      DBRE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      expr->lhs = std::move(lhs);
      return expr;
    }
    expr->kind = Expression::Kind::kComparison;
    DBRE_ASSIGN_OR_RETURN(expr->op, ParseComparisonOp());
    expr->lhs = std::move(lhs);
    DBRE_ASSIGN_OR_RETURN(expr->rhs, ParseOperand());
    return expr;
  }

  Result<std::unique_ptr<Expression>> ParseUnary() {
    if (MatchKeyword("NOT")) {
      // NOT EXISTS (...) folds into the exists node.
      if (CheckKeyword("EXISTS")) {
        DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> exists,
                              ParseUnary());
        exists->negated = !exists->negated;
        return exists;
      }
      auto expr = std::make_unique<Expression>();
      expr->kind = Expression::Kind::kNot;
      DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> child, ParseUnary());
      expr->children.push_back(std::move(child));
      return expr;
    }
    if (MatchKeyword("EXISTS")) {
      auto expr = std::make_unique<Expression>();
      expr->kind = Expression::Kind::kExists;
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
      if (!CheckKeyword("SELECT")) {
        return ErrorHere("expected SELECT after EXISTS(");
      }
      DBRE_ASSIGN_OR_RETURN(expr->subquery, ParseSelectCore());
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
      return expr;
    }
    if (Check(TokenType::kLeftParen)) {
      // Either a parenthesized boolean expression or a column tuple for a
      // multi-column IN: (a, b) IN (SELECT ...).
      if (IsColumnTupleAhead()) {
        ++pos_;  // consume '('
        auto expr = std::make_unique<Expression>();
        expr->kind = Expression::Kind::kInSubquery;
        while (true) {
          DBRE_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
          expr->in_columns.push_back(std::move(ref));
          if (!Match(TokenType::kComma)) break;
        }
        DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
        expr->negated = MatchKeyword("NOT");
        DBRE_RETURN_IF_ERROR(ExpectKeyword("IN"));
        DBRE_RETURN_IF_ERROR(Expect(TokenType::kLeftParen));
        if (!CheckKeyword("SELECT")) {
          return ErrorHere("only IN (SELECT ...) is supported");
        }
        DBRE_ASSIGN_OR_RETURN(expr->subquery, ParseSelectCore());
        DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
        return expr;
      }
      ++pos_;  // consume '('
      DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> inner, ParseExpr());
      DBRE_RETURN_IF_ERROR(Expect(TokenType::kRightParen));
      return inner;
    }
    DBRE_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    return ParsePredicateWithOperand(std::move(lhs));
  }

  // Lookahead check for "( col [, col]* ) [NOT] IN".
  bool IsColumnTupleAhead() const {
    size_t ahead = 1;  // past '('
    int commas = 0;
    while (true) {
      const Token& token = Peek(ahead);
      if (token.type != TokenType::kIdentifier) return false;
      ++ahead;
      if (Peek(ahead).type == TokenType::kDot) {
        ahead += 2;  // .column
      }
      if (Peek(ahead).type == TokenType::kComma) {
        ++commas;
        ++ahead;
        continue;
      }
      break;
    }
    if (Peek(ahead).type != TokenType::kRightParen) return false;
    ++ahead;
    if (Peek(ahead).type == TokenType::kKeyword &&
        Peek(ahead).text == "NOT") {
      ++ahead;
    }
    return commas > 0 && Peek(ahead).type == TokenType::kKeyword &&
           Peek(ahead).text == "IN";
  }

  Result<std::unique_ptr<Expression>> ParseAnd() {
    DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> first, ParseUnary());
    if (!CheckKeyword("AND")) return first;
    auto expr = std::make_unique<Expression>();
    expr->kind = Expression::Kind::kAnd;
    expr->children.push_back(std::move(first));
    while (MatchKeyword("AND")) {
      DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> next, ParseUnary());
      expr->children.push_back(std::move(next));
    }
    return expr;
  }

  Result<std::unique_ptr<Expression>> ParseExpr() {
    DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> first, ParseAnd());
    if (!CheckKeyword("OR")) return first;
    auto expr = std::make_unique<Expression>();
    expr->kind = Expression::Kind::kOr;
    expr->children.push_back(std::move(first));
    while (MatchKeyword("OR")) {
      DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> next, ParseAnd());
      expr->children.push_back(std::move(next));
    }
    return expr;
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelectCore() {
    DBRE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();
    if (MatchKeyword("DISTINCT")) stmt->select_distinct = true;
    while (true) {
      DBRE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->select_list.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
    DBRE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DBRE_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    while (true) {
      if (Match(TokenType::kComma)) {
        DBRE_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      bool inner = CheckKeyword("INNER");
      if (inner || CheckKeyword("JOIN")) {
        if (inner) ++pos_;
        DBRE_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        DBRE_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        DBRE_RETURN_IF_ERROR(ExpectKeyword("ON"));
        DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> condition,
                              ParseExpr());
        stmt->join_conditions.push_back(std::move(condition));
        continue;
      }
      break;
    }
    if (MatchKeyword("WHERE")) {
      DBRE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      DBRE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DBRE_RETURN_IF_ERROR(SkipColumnList());
      if (MatchKeyword("HAVING")) {
        DBRE_ASSIGN_OR_RETURN(std::unique_ptr<Expression> having,
                              ParseExpr());
        (void)having;  // carries no navigation info
      }
    }
    if (MatchKeyword("ORDER")) {
      DBRE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DBRE_RETURN_IF_ERROR(SkipColumnList());
    }
    return stmt;
  }

  Status SkipColumnList() {
    while (true) {
      DBRE_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      (void)ref;
      MatchKeyword("ASC") || MatchKeyword("DESC");
      if (!Match(TokenType::kComma)) break;
    }
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStatement>> ParseSelect(std::string_view sql) {
  DBRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::vector<std::unique_ptr<SelectStatement>>> ParseScript(
    std::string_view sql, std::vector<Status>* errors) {
  DBRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  std::vector<std::unique_ptr<SelectStatement>> statements;
  while (!parser.AtEnd()) {
    auto result = parser.ParseStatementInScript();
    if (result.ok()) {
      statements.push_back(std::move(result).value());
    } else {
      if (errors != nullptr) errors->push_back(result.status());
      parser.SkipToNextStatement();
    }
  }
  return statements;
}

}  // namespace dbre::sql
