#include "sql/ddl_writer.h"

#include <cstdio>

namespace dbre::sql {
namespace {

const char* TypeKeyword(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "FLOAT";
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kString:
      return "TEXT";
  }
  return "TEXT";
}

// Renders a value as a literal ExecuteDdlScript can parse back.
std::string Literal(const Value& value) {
  if (value.is_null()) return "NULL";
  if (value.is_text()) {
    std::string out = "'";
    for (char c : value.as_text()) {
      if (c == '\'') out += '\'';
      out += c;
    }
    out += "'";
    return out;
  }
  if (value.is_real()) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value.as_real());
    std::string out = buffer;
    // Bare integers would parse as INT literals; that is fine for FLOAT
    // columns (Value::Parse accepts them), so no decoration needed.
    return out;
  }
  if (value.is_bool()) return value.as_bool() ? "TRUE" : "FALSE";
  return value.ToString();
}

}  // namespace

std::string WriteCreateTable(const RelationSchema& schema) {
  std::string out = "CREATE TABLE " + schema.name() + " (\n";
  const auto& uniques = schema.unique_constraints();
  for (size_t i = 0; i < schema.attributes().size(); ++i) {
    const Attribute& attribute = schema.attributes()[i];
    out += "  " + attribute.name + " " + TypeKeyword(attribute.type);
    if (attribute.not_null) out += " NOT NULL";
    if (i + 1 < schema.attributes().size() || !uniques.empty()) out += ",";
    out += "\n";
  }
  for (size_t i = 0; i < uniques.size(); ++i) {
    out += i == 0 ? "  PRIMARY KEY (" : "  UNIQUE (";
    const auto& names = uniques[i].names();
    for (size_t j = 0; j < names.size(); ++j) {
      if (j > 0) out += ", ";
      out += names[j];
    }
    out += ")";
    if (i + 1 < uniques.size()) out += ",";
    out += "\n";
  }
  out += ");\n";
  return out;
}

std::string WriteInserts(const Table& table, size_t batch_size) {
  if (table.num_rows() == 0) return "";
  if (batch_size == 0) batch_size = 1;
  std::string out;
  // Stream rows in order (works for both materialized and paged
  // extensions), opening a new INSERT batch every batch_size rows.
  size_t index = 0;
  (void)table.ForEachRow([&](const ValueVector& row) {
    const size_t offset = index % batch_size;
    if (offset == 0) {
      if (index > 0) out += ";\n";
      out += "INSERT INTO " + table.schema().name() + " VALUES\n  (";
    } else {
      out += ",\n  (";
    }
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ", ";
      out += Literal(row[c]);
    }
    out += ")";
    ++index;
  });
  out += ";\n";
  return out;
}

std::string WriteDdl(const Database& database,
                     const DdlWriterOptions& options) {
  std::string out;
  for (const std::string& relation : database.RelationNames()) {
    const Table& table = **database.GetTable(relation);
    out += WriteCreateTable(table.schema());
  }
  if (options.include_inserts) {
    for (const std::string& relation : database.RelationNames()) {
      const Table& table = **database.GetTable(relation);
      out += WriteInserts(table, options.insert_batch_size);
    }
  }
  return out;
}

}  // namespace dbre::sql
