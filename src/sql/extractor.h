// Equi-join extraction from parsed SQL — building the paper's set Q.
//
// §4 notes that "an equi-join can be performed in different ways, with
// nested or unnested queries, with a where clause or with an intersect
// operator". This extractor recognizes:
//   * column = column conjuncts in WHERE clauses and JOIN ... ON conditions
//     (equalities anywhere in the boolean tree are harvested: even under OR
//     or NOT, an equality between attributes of two relations witnesses a
//     navigation path the programmer relies on);
//   * R.a IN (SELECT b FROM S ...) and multi-column (a, b) IN (SELECT ...);
//   * correlated [NOT] EXISTS subqueries (outer aliases stay visible);
//   * SELECT ... INTERSECT SELECT ... (select lists pair positionally).
// Multiple equalities between the same pair of relation instances in one
// statement fuse into a single multi-attribute equi-join, as in §4's
// illustration.
//
// Unqualified columns are resolved against the FROM scope; with a catalog
// (Database) they are resolved by attribute membership, innermost scope
// first. Unresolvable references are counted and skipped, never fatal.
#ifndef DBRE_SQL_EXTRACTOR_H_
#define DBRE_SQL_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/equi_join.h"
#include "sql/ast.h"

namespace dbre::sql {

struct ExtractionOptions {
  // Optional data dictionary used to resolve unqualified column references
  // by attribute membership.
  const Database* catalog = nullptr;
};

struct ExtractionStats {
  size_t statements = 0;            // statements walked (incl. subqueries)
  size_t equalities_seen = 0;       // column=column equalities encountered
  size_t unresolved_columns = 0;    // references that could not be resolved
  size_t self_pair_skipped = 0;     // R.a = R.a on the same instance/attr
  size_t joins_extracted = 0;       // joins before canonical dedup

  ExtractionStats& operator+=(const ExtractionStats& other);
};

// Extracts equi-joins from one parsed statement (including its subqueries
// and set-operation branches).
std::vector<EquiJoin> ExtractEquiJoins(const SelectStatement& statement,
                                       const ExtractionOptions& options = {},
                                       ExtractionStats* stats = nullptr);

// Parses `sql` as a script and extracts from every statement; parse errors
// are recovered per statement (collected in `errors` when non-null). The
// result is canonicalized and deduplicated — it is the set Q.
Result<std::vector<EquiJoin>> ExtractEquiJoinsFromScript(
    std::string_view sql, const ExtractionOptions& options = {},
    ExtractionStats* stats = nullptr,
    std::vector<Status>* errors = nullptr);

}  // namespace dbre::sql

#endif  // DBRE_SQL_EXTRACTOR_H_
