#include "sql/token.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/string_util.h"

namespace dbre::sql {
namespace {

// Keywords of the recognized subset (queries, dictionary DDL, DML).
constexpr std::array<std::string_view, 39> kKeywords = {
    "SELECT", "FROM",     "WHERE",  "AND",    "OR",     "NOT",
    "IN",     "EXISTS",   "INTERSECT", "UNION", "ALL",  "DISTINCT",
    "COUNT",  "AS",       "JOIN",   "INNER",  "ON",     "ORDER",
    "BY",     "GROUP",    "HAVING", "CREATE", "TABLE",  "UNIQUE",
    "NULL",   "PRIMARY",  "KEY",    "INSERT", "INTO",   "VALUES",
    "ASC",    "DESC",     "IS",     "BETWEEN", "LIKE",  "MINUS",
    "UPDATE", "DELETE",   "SET",
};

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '#' || c == '$';
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kKeyword: return "keyword";
    case TokenType::kInteger: return "integer";
    case TokenType::kDecimal: return "decimal";
    case TokenType::kString: return "string";
    case TokenType::kHostVariable: return "host_variable";
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kLeftParen: return "(";
    case TokenType::kRightParen: return ")";
    case TokenType::kEquals: return "=";
    case TokenType::kNotEquals: return "<>";
    case TokenType::kLess: return "<";
    case TokenType::kLessEquals: return "<=";
    case TokenType::kGreater: return ">";
    case TokenType::kGreaterEquals: return ">=";
    case TokenType::kStar: return "*";
    case TokenType::kSemicolon: return ";";
    case TokenType::kEnd: return "<end>";
  }
  return "unknown";
}

std::string Token::ToString() const {
  std::string out = TokenTypeName(type);
  if (!text.empty()) {
    out += "(";
    out += text;
    out += ")";
  }
  return out;
}

bool IsKeyword(std::string_view word) {
  std::string upper = ToUpper(word);
  return std::find(kKeywords.begin(), kKeywords.end(), upper) !=
         kKeywords.end();
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t line = 1;
  size_t column = 1;
  size_t i = 0;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < sql.size(); ++k, ++i) {
      if (sql[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };
  auto push = [&](TokenType type, std::string text, size_t tok_line,
                  size_t tok_column) {
    tokens.push_back(Token{type, std::move(text), tok_line, tok_column});
  };

  while (i < sql.size()) {
    char c = sql[i];
    size_t tok_line = line;
    size_t tok_column = column;

    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < sql.size() && sql[i + 1] == '*') {
      advance(2);
      while (i + 1 < sql.size() && !(sql[i] == '*' && sql[i + 1] == '/')) {
        advance(1);
      }
      if (i + 1 >= sql.size()) {
        return ParseError("unterminated /* comment at line " +
                          std::to_string(tok_line));
      }
      advance(2);
      continue;
    }
    // String literal.
    if (c == '\'') {
      std::string text;
      advance(1);
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            text += '\'';
            advance(2);
            continue;
          }
          advance(1);
          closed = true;
          break;
        }
        text += sql[i];
        advance(1);
      }
      if (!closed) {
        return ParseError("unterminated string literal at line " +
                          std::to_string(tok_line));
      }
      push(TokenType::kString, std::move(text), tok_line, tok_column);
      continue;
    }
    // Quoted identifier.
    if (c == '"') {
      std::string text;
      advance(1);
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '"') {
          advance(1);
          closed = true;
          break;
        }
        text += sql[i];
        advance(1);
      }
      if (!closed) {
        return ParseError("unterminated quoted identifier at line " +
                          std::to_string(tok_line));
      }
      push(TokenType::kIdentifier, std::move(text), tok_line, tok_column);
      continue;
    }
    // Host variable (:name in embedded SQL).
    if (c == ':') {
      advance(1);
      std::string text;
      while (i < sql.size() && IsIdentifierChar(sql[i])) {
        text += sql[i];
        advance(1);
      }
      if (text.empty()) {
        return ParseError("':' without a host variable name at line " +
                          std::to_string(tok_line));
      }
      push(TokenType::kHostVariable, std::move(text), tok_line, tok_column);
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      bool decimal = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              (!decimal && sql[i] == '.' && i + 1 < sql.size() &&
               std::isdigit(static_cast<unsigned char>(sql[i + 1]))))) {
        if (sql[i] == '.') decimal = true;
        text += sql[i];
        advance(1);
      }
      push(decimal ? TokenType::kDecimal : TokenType::kInteger,
           std::move(text), tok_line, tok_column);
      continue;
    }
    // Identifier or keyword.
    if (IsIdentifierStart(c)) {
      std::string text;
      while (i < sql.size() && IsIdentifierChar(sql[i])) {
        text += sql[i];
        advance(1);
      }
      // Identifiers may contain '-' (the paper uses zip-code, project-name);
      // a trailing '-' is never part of an identifier.
      while (!text.empty() && text.back() == '-') {
        text.pop_back();
        --i;  // give the '-' back (cannot underflow: text consumed >= 1)
        --column;
      }
      if (IsKeyword(text)) {
        push(TokenType::kKeyword, ToUpper(text), tok_line, tok_column);
      } else {
        push(TokenType::kIdentifier, std::move(text), tok_line, tok_column);
      }
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case ',': push(TokenType::kComma, "", tok_line, tok_column); advance(1); break;
      case '.': push(TokenType::kDot, "", tok_line, tok_column); advance(1); break;
      case '(': push(TokenType::kLeftParen, "", tok_line, tok_column); advance(1); break;
      case ')': push(TokenType::kRightParen, "", tok_line, tok_column); advance(1); break;
      case '*': push(TokenType::kStar, "", tok_line, tok_column); advance(1); break;
      case ';': push(TokenType::kSemicolon, "", tok_line, tok_column); advance(1); break;
      case '=': push(TokenType::kEquals, "", tok_line, tok_column); advance(1); break;
      case '!':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          push(TokenType::kNotEquals, "", tok_line, tok_column);
          advance(2);
        } else {
          return ParseError("unexpected '!' at line " +
                            std::to_string(tok_line));
        }
        break;
      case '<':
        if (i + 1 < sql.size() && sql[i + 1] == '>') {
          push(TokenType::kNotEquals, "", tok_line, tok_column);
          advance(2);
        } else if (i + 1 < sql.size() && sql[i + 1] == '=') {
          push(TokenType::kLessEquals, "", tok_line, tok_column);
          advance(2);
        } else {
          push(TokenType::kLess, "", tok_line, tok_column);
          advance(1);
        }
        break;
      case '>':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          push(TokenType::kGreaterEquals, "", tok_line, tok_column);
          advance(2);
        } else {
          push(TokenType::kGreater, "", tok_line, tok_column);
          advance(1);
        }
        break;
      default:
        return ParseError(std::string("unexpected character '") + c +
                          "' at line " + std::to_string(tok_line));
    }
  }
  tokens.push_back(Token{TokenType::kEnd, "", line, column});
  return tokens;
}

}  // namespace dbre::sql
