#include "sql/extractor.h"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>

#include "sql/parser.h"

namespace dbre::sql {

ExtractionStats& ExtractionStats::operator+=(const ExtractionStats& other) {
  statements += other.statements;
  equalities_seen += other.equalities_seen;
  unresolved_columns += other.unresolved_columns;
  self_pair_skipped += other.self_pair_skipped;
  joins_extracted += other.joins_extracted;
  return *this;
}

namespace {

// A resolved column: which FROM entry (relation instance) it belongs to.
struct ResolvedColumn {
  size_t scope_depth = 0;   // index into the scope stack
  size_t from_index = 0;    // index into that scope's FROM list
  std::string table;        // real table name
  std::string column;
};

// Identity of a relation *instance* (distinguishes self-join aliases).
using InstanceKey = std::pair<size_t, size_t>;  // (scope_depth, from_index)

class Extractor {
 public:
  Extractor(const ExtractionOptions& options, ExtractionStats* stats,
            std::vector<EquiJoin>* out)
      : options_(options), stats_(stats), out_(out) {}

  void WalkStatement(const SelectStatement& statement) {
    ++stats_->statements;
    scopes_.push_back(&statement.from);
    // Joins from this statement's predicates accumulate per instance pair,
    // then fuse into multi-attribute equi-joins.
    std::map<std::pair<InstanceKey, InstanceKey>,
             std::pair<std::vector<std::string>, std::vector<std::string>>>
        pair_groups;

    for (const auto& condition : statement.join_conditions) {
      WalkExpression(*condition, &pair_groups);
    }
    if (statement.where != nullptr) {
      WalkExpression(*statement.where, &pair_groups);
    }
    EmitGroups(pair_groups);

    if (statement.set_rhs != nullptr) {
      if (statement.set_op == SelectStatement::SetOp::kIntersect) {
        EmitIntersectJoin(statement, *statement.set_rhs);
      }
      WalkStatement(*statement.set_rhs);
    }
    scopes_.pop_back();
  }

 private:
  void WalkExpression(
      const Expression& expr,
      std::map<std::pair<InstanceKey, InstanceKey>,
               std::pair<std::vector<std::string>, std::vector<std::string>>>*
          pair_groups) {
    switch (expr.kind) {
      case Expression::Kind::kComparison:
        if (expr.op == ComparisonOp::kEq &&
            expr.lhs.kind == Operand::Kind::kColumn &&
            expr.rhs.kind == Operand::Kind::kColumn) {
          ++stats_->equalities_seen;
          RecordEquality(expr.lhs.column, expr.rhs.column, pair_groups);
        }
        return;
      case Expression::Kind::kAnd:
      case Expression::Kind::kOr:
      case Expression::Kind::kNot:
        for (const auto& child : expr.children) {
          WalkExpression(*child, pair_groups);
        }
        return;
      case Expression::Kind::kInSubquery:
        HandleInSubquery(expr);
        return;
      case Expression::Kind::kExists:
        if (expr.subquery != nullptr) WalkStatement(*expr.subquery);
        return;
      case Expression::Kind::kIsNull:
      case Expression::Kind::kBetween:
      case Expression::Kind::kLike:
        return;
    }
  }

  void HandleInSubquery(const Expression& expr) {
    if (expr.subquery == nullptr) return;
    // Pair left columns with the subquery's select list positionally.
    const SelectStatement& sub = *expr.subquery;
    bool pairable = sub.select_list.size() == expr.in_columns.size() &&
                    std::all_of(sub.select_list.begin(),
                                sub.select_list.end(),
                                [](const SelectItem& item) {
                                  return !item.star && !item.count;
                                });
    if (pairable) {
      // Resolve outer columns in the current scope, inner columns in the
      // subquery's scope.
      std::vector<std::optional<ResolvedColumn>> outer;
      outer.reserve(expr.in_columns.size());
      for (const ColumnRef& ref : expr.in_columns) {
        outer.push_back(Resolve(ref));
      }
      scopes_.push_back(&sub.from);
      std::map<std::pair<InstanceKey, InstanceKey>,
               std::pair<std::vector<std::string>, std::vector<std::string>>>
          groups;
      for (size_t i = 0; i < expr.in_columns.size(); ++i) {
        std::optional<ResolvedColumn> inner =
            Resolve(sub.select_list[i].column);
        if (!outer[i].has_value() || !inner.has_value()) {
          ++stats_->unresolved_columns;
          continue;
        }
        AddPair(*outer[i], *inner, &groups);
      }
      EmitGroups(groups);
      scopes_.pop_back();
    }
    // Recurse for joins inside the subquery itself (correlated or not).
    WalkStatement(sub);
  }

  void EmitIntersectJoin(const SelectStatement& left,
                         const SelectStatement& right) {
    if (left.select_list.size() != right.select_list.size()) return;
    auto concrete = [](const SelectItem& item) {
      return !item.star && !item.count;
    };
    if (!std::all_of(left.select_list.begin(), left.select_list.end(),
                     concrete) ||
        !std::all_of(right.select_list.begin(), right.select_list.end(),
                     concrete)) {
      return;
    }
    std::map<std::pair<InstanceKey, InstanceKey>,
             std::pair<std::vector<std::string>, std::vector<std::string>>>
        groups;
    // Left side resolves in the current (already pushed) scope; right side
    // in its own.
    std::vector<std::optional<ResolvedColumn>> lhs;
    for (const SelectItem& item : left.select_list) {
      lhs.push_back(Resolve(item.column));
    }
    scopes_.push_back(&right.from);
    for (size_t i = 0; i < right.select_list.size(); ++i) {
      std::optional<ResolvedColumn> rhs = Resolve(right.select_list[i].column);
      if (!lhs[i].has_value() || !rhs.has_value()) {
        ++stats_->unresolved_columns;
        continue;
      }
      AddPair(*lhs[i], *rhs, &groups);
    }
    scopes_.pop_back();
    EmitGroups(groups);
  }

  void RecordEquality(
      const ColumnRef& left, const ColumnRef& right,
      std::map<std::pair<InstanceKey, InstanceKey>,
               std::pair<std::vector<std::string>, std::vector<std::string>>>*
          pair_groups) {
    std::optional<ResolvedColumn> lhs = Resolve(left);
    std::optional<ResolvedColumn> rhs = Resolve(right);
    if (!lhs.has_value() || !rhs.has_value()) {
      ++stats_->unresolved_columns;
      return;
    }
    AddPair(*lhs, *rhs, pair_groups);
  }

  void AddPair(
      const ResolvedColumn& lhs, const ResolvedColumn& rhs,
      std::map<std::pair<InstanceKey, InstanceKey>,
               std::pair<std::vector<std::string>, std::vector<std::string>>>*
          pair_groups) {
    InstanceKey lhs_key{lhs.scope_depth, lhs.from_index};
    InstanceKey rhs_key{rhs.scope_depth, rhs.from_index};
    if (lhs_key == rhs_key) {
      // A condition within one relation instance (e.g. r.a = r.b) is a
      // restriction, not a navigation step.
      ++stats_->self_pair_skipped;
      return;
    }
    const ResolvedColumn* a = &lhs;
    const ResolvedColumn* b = &rhs;
    if (rhs_key < lhs_key) {
      std::swap(a, b);
      std::swap(lhs_key, rhs_key);
    }
    auto& group = (*pair_groups)[{lhs_key, rhs_key}];
    group.first.push_back(a->column);
    group.second.push_back(b->column);
    // Table names ride along via a side map.
    instance_tables_[lhs_key] = a->table;
    instance_tables_[rhs_key] = b->table;
  }

  void EmitGroups(
      const std::map<
          std::pair<InstanceKey, InstanceKey>,
          std::pair<std::vector<std::string>, std::vector<std::string>>>&
          pair_groups) {
    for (const auto& [keys, columns] : pair_groups) {
      EquiJoin join;
      join.left_relation = instance_tables_.at(keys.first);
      join.left_attributes = columns.first;
      join.right_relation = instance_tables_.at(keys.second);
      join.right_attributes = columns.second;
      if (!join.Validate().ok()) {
        ++stats_->self_pair_skipped;
        continue;
      }
      out_->push_back(std::move(join));
      ++stats_->joins_extracted;
    }
  }

  // Resolves a column reference against the scope stack, innermost first.
  std::optional<ResolvedColumn> Resolve(const ColumnRef& ref) const {
    if (ref.column.empty() || ref.column == "*") return std::nullopt;
    for (size_t depth = scopes_.size(); depth-- > 0;) {
      const std::vector<TableRef>& from = *scopes_[depth];
      if (!ref.qualifier.empty()) {
        for (size_t i = 0; i < from.size(); ++i) {
          const TableRef& table_ref = from[i];
          bool matches = table_ref.alias.empty()
                             ? table_ref.table == ref.qualifier
                             : table_ref.alias == ref.qualifier;
          // A bare table name also matches when an alias exists, as several
          // legacy dialects allow it only without alias; be strict: alias
          // shadows the table name.
          if (matches) {
            return ResolvedColumn{depth, i, table_ref.table, ref.column};
          }
        }
        continue;  // try outer scope
      }
      // Unqualified: unique FROM entry, or unique catalog match.
      if (from.size() == 1) {
        return ResolvedColumn{depth, 0, from[0].table, ref.column};
      }
      if (options_.catalog != nullptr) {
        std::optional<ResolvedColumn> found;
        bool ambiguous = false;
        for (size_t i = 0; i < from.size(); ++i) {
          auto table = options_.catalog->GetTable(from[i].table);
          if (!table.ok()) continue;
          if ((*table.value()).schema().HasAttribute(ref.column)) {
            if (found.has_value()) {
              ambiguous = true;
              break;
            }
            found = ResolvedColumn{depth, i, from[i].table, ref.column};
          }
        }
        if (found.has_value() && !ambiguous) return found;
        if (ambiguous) return std::nullopt;
      }
    }
    return std::nullopt;
  }

  const ExtractionOptions& options_;
  ExtractionStats* stats_;
  std::vector<EquiJoin>* out_;
  std::vector<const std::vector<TableRef>*> scopes_;
  mutable std::map<InstanceKey, std::string> instance_tables_;
};

}  // namespace

std::vector<EquiJoin> ExtractEquiJoins(const SelectStatement& statement,
                                       const ExtractionOptions& options,
                                       ExtractionStats* stats) {
  ExtractionStats local_stats;
  ExtractionStats* s = stats != nullptr ? stats : &local_stats;
  std::vector<EquiJoin> joins;
  Extractor extractor(options, s, &joins);
  extractor.WalkStatement(statement);
  return joins;
}

Result<std::vector<EquiJoin>> ExtractEquiJoinsFromScript(
    std::string_view sql, const ExtractionOptions& options,
    ExtractionStats* stats, std::vector<Status>* errors) {
  ExtractionStats local_stats;
  ExtractionStats* s = stats != nullptr ? stats : &local_stats;
  *s = ExtractionStats{};
  DBRE_ASSIGN_OR_RETURN(auto statements, ParseScript(sql, errors));
  std::vector<EquiJoin> joins;
  for (const auto& statement : statements) {
    ExtractionStats statement_stats;
    std::vector<EquiJoin> found =
        ExtractEquiJoins(*statement, options, &statement_stats);
    *s += statement_stats;
    joins.insert(joins.end(), std::make_move_iterator(found.begin()),
                 std::make_move_iterator(found.end()));
  }
  return CanonicalJoinSet(joins);
}

}  // namespace dbre::sql
