// AST for the legacy SQL query subset.
//
// Rich enough to represent the equi-join idioms of §4: flat multi-table
// SELECTs with conjunctive WHERE clauses, explicit JOIN ... ON, nested IN /
// EXISTS subqueries (possibly correlated), and INTERSECT between SELECTs.
#ifndef DBRE_SQL_AST_H_
#define DBRE_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dbre::sql {

// A possibly-qualified column reference: `emp`, `Department.emp`, `d.emp`.
struct ColumnRef {
  std::string qualifier;  // table name or alias; empty if unqualified
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.qualifier == b.qualifier && a.column == b.column;
  }
};

// A scalar operand in a comparison.
struct Operand {
  enum class Kind { kColumn, kInteger, kDecimal, kString, kHostVariable, kNull };
  Kind kind = Kind::kNull;
  ColumnRef column;     // kColumn
  std::string literal;  // literal text / host variable name

  static Operand Column(ColumnRef ref) {
    Operand op;
    op.kind = Kind::kColumn;
    op.column = std::move(ref);
    return op;
  }
  std::string ToString() const;
};

enum class ComparisonOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* ComparisonOpName(ComparisonOp op);

struct SelectStatement;

// Boolean expression tree over comparisons and subquery predicates.
struct Expression {
  enum class Kind {
    kComparison,   // lhs <op> rhs
    kAnd,          // children
    kOr,           // children
    kNot,          // children[0]
    kInSubquery,   // columns IN (subquery); NOT IN when negated
    kExists,       // EXISTS (subquery); NOT EXISTS when negated
    kIsNull,       // operand IS [NOT] NULL
    kBetween,      // operand BETWEEN low AND high (kept opaque)
    kLike,         // operand LIKE pattern (kept opaque)
  };

  Kind kind = Kind::kAnd;
  // kComparison / kIsNull / kBetween / kLike:
  ComparisonOp op = ComparisonOp::kEq;
  Operand lhs;
  Operand rhs;
  bool negated = false;
  // kAnd / kOr / kNot:
  std::vector<std::unique_ptr<Expression>> children;
  // kInSubquery: the columns on the left of IN (one, or a parenthesized
  // list); kInSubquery / kExists: the subquery.
  std::vector<ColumnRef> in_columns;
  std::unique_ptr<SelectStatement> subquery;

  std::string ToString() const;
};

// An entry in the FROM clause.
struct TableRef {
  std::string table;
  std::string alias;  // empty if none

  std::string ToString() const {
    return alias.empty() ? table : table + " " + alias;
  }
};

// An item of the select list: a column, or '*' (column.column == "*").
struct SelectItem {
  bool star = false;
  bool count = false;     // COUNT(...) wrapper
  bool distinct = false;  // COUNT(DISTINCT ...)
  ColumnRef column;

  std::string ToString() const;
};

struct SelectStatement {
  std::vector<SelectItem> select_list;
  bool select_distinct = false;
  std::vector<TableRef> from;
  // ON conditions of explicit JOIN syntax, folded as expressions.
  std::vector<std::unique_ptr<Expression>> join_conditions;
  std::unique_ptr<Expression> where;  // may be null
  // INTERSECT / MINUS / UNION chaining: pairwise with the next statement.
  enum class SetOp { kNone, kIntersect, kUnion, kMinus };
  SetOp set_op = SetOp::kNone;
  std::unique_ptr<SelectStatement> set_rhs;

  std::string ToString() const;
};

}  // namespace dbre::sql

#endif  // DBRE_SQL_AST_H_
