// Scanning application-program sources for embedded SQL.
//
// Legacy applications embed their data-manipulation statements in host
// language code. This scanner recognizes the two dominant conventions:
//   * embedded SQL blocks:   EXEC SQL <statement> ;   (C / COBOL style,
//     END-EXEC also accepted as the terminator);
//   * string-literal queries: host code containing a double-quoted string
//     whose content starts with SELECT (call-level interfaces).
// Plain .sql files are treated as ';'-separated scripts.
//
// The output of a scan is the raw statement texts; feeding them through
// the extractor yields the paper's set Q.
#ifndef DBRE_SQL_SCANNER_H_
#define DBRE_SQL_SCANNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/equi_join.h"
#include "sql/extractor.h"

namespace dbre::sql {

// One statement found in a program source.
struct EmbeddedStatement {
  std::string text;
  size_t line = 1;  // 1-based line of the statement start
};

// Extracts embedded statements from host-language source text.
std::vector<EmbeddedStatement> ScanProgramText(std::string_view source);

// Reads `path`; `.sql` files are split on ';', anything else is scanned as
// host-language source.
Result<std::vector<EmbeddedStatement>> ScanProgramFile(
    const std::string& path);

// Full front end: scan every file, parse every statement, extract and
// canonicalize the equi-joins — the set Q of §4.
Result<std::vector<EquiJoin>> BuildQueryJoinSet(
    const std::vector<std::string>& paths,
    const ExtractionOptions& options = {}, ExtractionStats* stats = nullptr,
    std::vector<Status>* errors = nullptr);

// Same, over in-memory sources (name, content) — used by tests and the
// synthetic workload generator.
Result<std::vector<EquiJoin>> BuildQueryJoinSetFromSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const ExtractionOptions& options = {}, ExtractionStats* stats = nullptr,
    std::vector<Status>* errors = nullptr);

// A join with its occurrence count across the corpus — how often the
// programs actually walk that navigation path. Useful to prioritize
// expert attention (frequently-used links first).
struct WeightedJoin {
  EquiJoin join;  // canonical form
  size_t occurrences = 0;
};

// Like BuildQueryJoinSetFromSources, but keeps per-join occurrence counts
// (each extraction of the same canonical join in any statement counts).
// Sorted by descending occurrences, then join order.
Result<std::vector<WeightedJoin>> BuildWeightedJoinSetFromSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const ExtractionOptions& options = {}, ExtractionStats* stats = nullptr,
    std::vector<Status>* errors = nullptr);

}  // namespace dbre::sql

#endif  // DBRE_SQL_SCANNER_H_
