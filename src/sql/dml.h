// Live-session DML: INSERT / UPDATE / DELETE for the legacy subset.
//
// Real legacy databases keep taking writes while being reverse-engineered;
// this is the mutation front end the service layer journals and replays
// (docs/INCREMENTAL.md). The supported forms are:
//
//   INSERT INTO name [(cols)] VALUES (v, ...) [, (v, ...)]* ;
//   UPDATE name SET col = lit [, col = lit]* [WHERE conjunction] ;
//   DELETE FROM name [WHERE conjunction] ;
//
// where `conjunction` is `predicate [AND predicate]*` and a predicate is
// `col op literal` (op one of = != <> < <= > >=) or `col IS [NOT] NULL`.
// SQL NULL semantics: a comparison against a NULL cell is false (only
// IS NULL / IS NOT NULL match NULLs), and comparing incomparable types is
// false, never an error.
//
// Execution is two-phase: the whole script parses and validates first
// (unknown tables/columns, literal types against declared types, NULL into
// not-null attributes are all parse errors), then applies — so a journaled
// script is exactly what mutated the catalog, never a prefix. Paged
// (read-only) target tables are materialized before the first mutation
// touches them; mutations never write through the buffer pool.
#ifndef DBRE_SQL_DML_H_
#define DBRE_SQL_DML_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/database.h"

namespace dbre::sql {

// Per-table effect of one script, in first-touch order. `updated_columns`
// are the schema indexes assigned by UPDATE statements (sorted, unique) —
// what the incremental re-validation driver keys its witness analysis on.
struct TableMutation {
  std::string table;
  size_t inserted = 0;
  size_t updated = 0;
  size_t deleted = 0;
  bool structural = false;  // rows removed: caches rebuilt cold
  std::vector<size_t> updated_columns;
};

struct DmlStats {
  size_t statements = 0;
  size_t rows_inserted = 0;
  size_t rows_updated = 0;
  size_t rows_deleted = 0;
  std::vector<TableMutation> tables;
};

// Executes a ';'-separated script of INSERT / UPDATE / DELETE statements
// against `database`. The script is parsed and validated in full before
// any row changes (see above).
Result<DmlStats> ExecuteDmlScript(std::string_view sql, Database* database);

}  // namespace dbre::sql

#endif  // DBRE_SQL_DML_H_
