#include "sql/ast.h"

namespace dbre::sql {

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column.ToString();
    case Kind::kInteger:
    case Kind::kDecimal:
      return literal;
    case Kind::kString:
      return "'" + literal + "'";
    case Kind::kHostVariable:
      return ":" + literal;
    case Kind::kNull:
      return "NULL";
  }
  return "?";
}

const char* ComparisonOpName(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq: return "=";
    case ComparisonOp::kNe: return "<>";
    case ComparisonOp::kLt: return "<";
    case ComparisonOp::kLe: return "<=";
    case ComparisonOp::kGt: return ">";
    case ComparisonOp::kGe: return ">=";
  }
  return "?";
}

std::string Expression::ToString() const {
  switch (kind) {
    case Kind::kComparison:
      return lhs.ToString() + " " + ComparisonOpName(op) + " " +
             rhs.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "NOT (" + (children.empty() ? "" : children[0]->ToString()) +
             ")";
    case Kind::kInSubquery: {
      std::string out;
      if (in_columns.size() > 1) out += "(";
      for (size_t i = 0; i < in_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_columns[i].ToString();
      }
      if (in_columns.size() > 1) out += ")";
      out += negated ? " NOT IN (" : " IN (";
      out += subquery ? subquery->ToString() : "";
      out += ")";
      return out;
    }
    case Kind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" +
             (subquery ? subquery->ToString() : "") + ")";
    case Kind::kIsNull:
      return lhs.ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kBetween:
      return lhs.ToString() + " BETWEEN ... AND ...";
    case Kind::kLike:
      return lhs.ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             rhs.ToString();
  }
  return "?";
}

std::string SelectItem::ToString() const {
  if (star) return count ? "COUNT(*)" : "*";
  std::string inner = column.ToString();
  if (count) {
    return std::string("COUNT(") + (distinct ? "DISTINCT " : "") + inner +
           ")";
  }
  return inner;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (select_distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  for (const auto& condition : join_conditions) {
    out += " ON " + condition->ToString();
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (set_op != SetOp::kNone && set_rhs != nullptr) {
    switch (set_op) {
      case SetOp::kIntersect: out += " INTERSECT "; break;
      case SetOp::kUnion: out += " UNION "; break;
      case SetOp::kMinus: out += " MINUS "; break;
      case SetOp::kNone: break;
    }
    out += set_rhs->ToString();
  }
  return out;
}

}  // namespace dbre::sql
