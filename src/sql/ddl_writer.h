// Rendering a catalog back to dictionary DDL.
//
// Produces CREATE TABLE statements (types, NOT NULL, PRIMARY KEY for the
// first unique declaration, UNIQUE for the rest) that round-trip through
// ExecuteDdlScript, and optionally INSERT statements for the extension.
// Used to export a restructured schema as a migration script.
#ifndef DBRE_SQL_DDL_WRITER_H_
#define DBRE_SQL_DDL_WRITER_H_

#include <string>

#include "common/status.h"
#include "relational/database.h"

namespace dbre::sql {

struct DdlWriterOptions {
  bool include_inserts = false;  // also emit the extension
  size_t insert_batch_size = 50; // rows per INSERT statement
};

// One CREATE TABLE statement for `schema`.
std::string WriteCreateTable(const RelationSchema& schema);

// INSERT statements for `table`'s rows (empty string for empty tables).
std::string WriteInserts(const Table& table, size_t batch_size = 50);

// The whole catalog (alphabetical), with extensions if requested.
std::string WriteDdl(const Database& database,
                     const DdlWriterOptions& options = {});

}  // namespace dbre::sql

#endif  // DBRE_SQL_DDL_WRITER_H_
