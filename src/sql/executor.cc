#include "sql/executor.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/string_util.h"
#include "sql/parser.h"

namespace dbre::sql {
namespace {

// SQL three-valued logic.
enum class Ternary { kFalse, kTrue, kUnknown };

Ternary And(Ternary a, Ternary b) {
  if (a == Ternary::kFalse || b == Ternary::kFalse) return Ternary::kFalse;
  if (a == Ternary::kTrue && b == Ternary::kTrue) return Ternary::kTrue;
  return Ternary::kUnknown;
}

Ternary Or(Ternary a, Ternary b) {
  if (a == Ternary::kTrue || b == Ternary::kTrue) return Ternary::kTrue;
  if (a == Ternary::kFalse && b == Ternary::kFalse) return Ternary::kFalse;
  return Ternary::kUnknown;
}

Ternary Not(Ternary a) {
  if (a == Ternary::kTrue) return Ternary::kFalse;
  if (a == Ternary::kFalse) return Ternary::kTrue;
  return Ternary::kUnknown;
}

// One table instance of a FROM clause with its current row.
struct Binding {
  const TableRef* ref = nullptr;
  const Table* table = nullptr;
  const ValueVector* row = nullptr;
};

using Frame = std::vector<Binding>;

// Numeric-coercing comparison; NULLs must be handled by the caller.
Result<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    return a.as_int() < b.as_int() ? -1 : (a.as_int() > b.as_int() ? 1 : 0);
  }
  if ((a.is_int() || a.is_real()) && (b.is_int() || b.is_real())) {
    double da = a.is_int() ? static_cast<double>(a.as_int()) : a.as_real();
    double db = b.is_int() ? static_cast<double>(b.as_int()) : b.as_real();
    return da < db ? -1 : (da > db ? 1 : 0);
  }
  if (a.is_text() && b.is_text()) {
    int cmp = a.as_text().compare(b.as_text());
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return InvalidArgumentError("cannot compare " + a.ToString() + " with " +
                              b.ToString());
}

// SQL LIKE with % (any run) and _ (any one character).
bool LikeMatches(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer with backtracking on the last %.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

class Evaluator {
 public:
  Evaluator(const Database& database, const ExecutorOptions& options)
      : database_(database), options_(options) {}

  Result<ResultSet> ExecuteStatement(const SelectStatement& statement) {
    DBRE_ASSIGN_OR_RETURN(ResultSet left, ExecuteCore(statement));
    if (statement.set_rhs == nullptr) return left;
    DBRE_ASSIGN_OR_RETURN(ResultSet right,
                          ExecuteStatement(*statement.set_rhs));
    if (left.columns.size() != right.columns.size()) {
      return InvalidArgumentError(
          "set operation over differently-shaped selects");
    }
    // SQL set operations work on distinct rows.
    auto distinct = [](std::vector<ValueVector> rows) {
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      return rows;
    };
    std::vector<ValueVector> lhs = distinct(std::move(left.rows));
    std::vector<ValueVector> rhs = distinct(std::move(right.rows));
    std::vector<ValueVector> out;
    switch (statement.set_op) {
      case SelectStatement::SetOp::kIntersect:
        std::set_intersection(lhs.begin(), lhs.end(), rhs.begin(),
                              rhs.end(), std::back_inserter(out));
        break;
      case SelectStatement::SetOp::kUnion:
        std::set_union(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(),
                       std::back_inserter(out));
        break;
      case SelectStatement::SetOp::kMinus:
        std::set_difference(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(),
                            std::back_inserter(out));
        break;
      case SelectStatement::SetOp::kNone:
        return InternalError("set_rhs without set_op");
    }
    left.rows = std::move(out);
    return left;
  }

 private:
  Result<ResultSet> ExecuteCore(const SelectStatement& statement) {
    // Resolve the FROM tables.
    Frame frame;
    frame.reserve(statement.from.size());
    for (const TableRef& ref : statement.from) {
      DBRE_ASSIGN_OR_RETURN(const Table* table,
                            database_.GetTable(ref.table));
      frame.push_back(Binding{&ref, table, nullptr});
    }
    env_.push_back(&frame);

    // Classify the select list: plain columns or aggregate COUNTs.
    bool has_count = false, has_scalar = false;
    for (const SelectItem& item : statement.select_list) {
      (item.count ? has_count : has_scalar) = true;
    }
    if (has_count && has_scalar) {
      env_.pop_back();
      return InvalidArgumentError(
          "mixed COUNT and plain columns without GROUP BY support");
    }

    ResultSet result;
    Status failure = Status::Ok();

    // For COUNT queries we gather the counted values; for plain queries,
    // the projected rows.
    std::vector<ValueVector> projected;
    size_t plain_row_count = 0;

    // Enumerate the cross product of the FROM tables.
    std::vector<size_t> cursor(frame.size(), 0);
    bool exhausted = frame.empty();
    for (const Binding& binding : frame) {
      if (binding.table->num_rows() == 0) exhausted = true;
    }
    while (!exhausted) {
      for (size_t i = 0; i < frame.size(); ++i) {
        frame[i].row = &frame[i].table->row(cursor[i]);
      }
      // Evaluate the ON conditions and the WHERE clause.
      Ternary keep = Ternary::kTrue;
      for (const auto& condition : statement.join_conditions) {
        auto value = EvaluateExpression(*condition);
        if (!value.ok()) {
          failure = value.status();
          break;
        }
        keep = And(keep, *value);
      }
      if (failure.ok() && keep == Ternary::kTrue &&
          statement.where != nullptr) {
        auto value = EvaluateExpression(*statement.where);
        if (!value.ok()) {
          failure = value.status();
        } else {
          keep = And(keep, *value);
        }
      }
      if (!failure.ok()) break;

      if (keep == Ternary::kTrue) {
        ++plain_row_count;
        auto row = ProjectRow(statement.select_list, has_count);
        if (!row.ok()) {
          failure = row.status();
          break;
        }
        projected.push_back(std::move(row).value());
        if (options_.max_intermediate_rows != 0 &&
            projected.size() > options_.max_intermediate_rows) {
          failure = FailedPreconditionError(
              "query exceeded max_intermediate_rows");
          break;
        }
      }
      // Advance the odometer.
      size_t level = frame.size();
      while (level > 0) {
        --level;
        if (++cursor[level] < frame[level].table->num_rows()) break;
        cursor[level] = 0;
        if (level == 0) exhausted = true;
      }
    }
    env_.pop_back();
    DBRE_RETURN_IF_ERROR(failure);

    // Column names.
    DBRE_RETURN_IF_ERROR(
        NameColumns(statement, frame, has_count, &result.columns));

    if (has_count) {
      // Aggregate: one output row of counts.
      ValueVector counts;
      for (size_t c = 0; c < statement.select_list.size(); ++c) {
        const SelectItem& item = statement.select_list[c];
        if (item.star) {
          counts.push_back(Value::Int(static_cast<int64_t>(plain_row_count)));
          continue;
        }
        // COUNT(col): non-NULL values; DISTINCT dedups.
        std::vector<Value> values;
        for (const ValueVector& row : projected) {
          if (!row[c].is_null()) values.push_back(row[c]);
        }
        if (item.distinct) {
          std::sort(values.begin(), values.end());
          values.erase(std::unique(values.begin(), values.end()),
                       values.end());
        }
        counts.push_back(Value::Int(static_cast<int64_t>(values.size())));
      }
      result.rows.push_back(std::move(counts));
      return result;
    }

    if (statement.select_distinct) {
      std::sort(projected.begin(), projected.end());
      projected.erase(std::unique(projected.begin(), projected.end()),
                      projected.end());
    }
    result.rows = std::move(projected);
    return result;
  }

  // Projects the current bound row combination onto the select list. For
  // COUNT items the counted column value is projected (aggregated later).
  Result<ValueVector> ProjectRow(const std::vector<SelectItem>& select_list,
                                 bool for_count) {
    ValueVector out;
    for (const SelectItem& item : select_list) {
      if (item.star) {
        if (for_count) {
          out.push_back(Value::Int(1));  // placeholder; COUNT(*) uses rows
          continue;
        }
        // Expand *: all columns of all (or the qualified) tables in the
        // innermost frame.
        const Frame& frame = *env_.back();
        for (const Binding& binding : frame) {
          if (!item.column.qualifier.empty()) {
            const std::string& name = binding.ref->alias.empty()
                                          ? binding.ref->table
                                          : binding.ref->alias;
            if (name != item.column.qualifier) continue;
          }
          for (const Value& value : *binding.row) out.push_back(value);
        }
        continue;
      }
      DBRE_ASSIGN_OR_RETURN(Value value, ResolveColumnValue(item.column));
      out.push_back(std::move(value));
    }
    return out;
  }

  Status NameColumns(const SelectStatement& statement, const Frame& frame,
                     bool has_count, std::vector<std::string>* names) {
    for (const SelectItem& item : statement.select_list) {
      if (item.star && !has_count) {
        for (const Binding& binding : frame) {
          if (!item.column.qualifier.empty()) {
            const std::string& name = binding.ref->alias.empty()
                                          ? binding.ref->table
                                          : binding.ref->alias;
            if (name != item.column.qualifier) continue;
          }
          for (const Attribute& attribute :
               binding.table->schema().attributes()) {
            names->push_back(attribute.name);
          }
        }
        continue;
      }
      names->push_back(item.ToString());
    }
    return Status::Ok();
  }

  // Looks up a column in the environment, innermost frame first.
  Result<Value> ResolveColumnValue(const ColumnRef& ref) {
    for (size_t depth = env_.size(); depth-- > 0;) {
      const Frame& frame = *env_[depth];
      const Binding* found = nullptr;
      for (const Binding& binding : frame) {
        if (!ref.qualifier.empty()) {
          const std::string& name = binding.ref->alias.empty()
                                        ? binding.ref->table
                                        : binding.ref->alias;
          if (name != ref.qualifier) continue;
          found = &binding;
          break;
        }
        if (binding.table->schema().HasAttribute(ref.column)) {
          if (found != nullptr) {
            return InvalidArgumentError("ambiguous column " + ref.column);
          }
          found = &binding;
        }
      }
      if (found == nullptr) continue;
      auto index = found->table->schema().AttributeIndex(ref.column);
      if (!index.ok()) {
        if (!ref.qualifier.empty()) return index.status();
        continue;  // unqualified: keep searching outer scopes
      }
      if (found->row == nullptr) {
        return InternalError("column referenced outside row context");
      }
      return (*found->row)[*index];
    }
    return NotFoundError("cannot resolve column " + ref.ToString());
  }

  Result<Value> EvaluateOperand(const Operand& operand) {
    switch (operand.kind) {
      case Operand::Kind::kColumn:
        return ResolveColumnValue(operand.column);
      case Operand::Kind::kInteger: {
        DBRE_ASSIGN_OR_RETURN(Value value,
                              Value::Parse(operand.literal,
                                           DataType::kInt64));
        return value;
      }
      case Operand::Kind::kDecimal: {
        DBRE_ASSIGN_OR_RETURN(Value value,
                              Value::Parse(operand.literal,
                                           DataType::kDouble));
        return value;
      }
      case Operand::Kind::kString:
        return Value::Text(operand.literal);
      case Operand::Kind::kHostVariable:
        // Host variables have no value at reverse-engineering time; SQL
        // NULL makes the containing predicate unknown, which is the
        // conservative reading.
        return Value::Null();
      case Operand::Kind::kNull:
        return Value::Null();
    }
    return InternalError("unhandled operand kind");
  }

  Result<Ternary> EvaluateComparison(const Expression& expr) {
    DBRE_ASSIGN_OR_RETURN(Value lhs, EvaluateOperand(expr.lhs));
    DBRE_ASSIGN_OR_RETURN(Value rhs, EvaluateOperand(expr.rhs));
    if (lhs.is_null() || rhs.is_null()) return Ternary::kUnknown;
    DBRE_ASSIGN_OR_RETURN(int cmp, CompareValues(lhs, rhs));
    bool truth = false;
    switch (expr.op) {
      case ComparisonOp::kEq: truth = cmp == 0; break;
      case ComparisonOp::kNe: truth = cmp != 0; break;
      case ComparisonOp::kLt: truth = cmp < 0; break;
      case ComparisonOp::kLe: truth = cmp <= 0; break;
      case ComparisonOp::kGt: truth = cmp > 0; break;
      case ComparisonOp::kGe: truth = cmp >= 0; break;
    }
    return truth ? Ternary::kTrue : Ternary::kFalse;
  }

  Result<Ternary> EvaluateExpression(const Expression& expr) {
    switch (expr.kind) {
      case Expression::Kind::kComparison:
        return EvaluateComparison(expr);
      case Expression::Kind::kAnd: {
        Ternary value = Ternary::kTrue;
        for (const auto& child : expr.children) {
          DBRE_ASSIGN_OR_RETURN(Ternary v, EvaluateExpression(*child));
          value = And(value, v);
          if (value == Ternary::kFalse) break;
        }
        return value;
      }
      case Expression::Kind::kOr: {
        Ternary value = Ternary::kFalse;
        for (const auto& child : expr.children) {
          DBRE_ASSIGN_OR_RETURN(Ternary v, EvaluateExpression(*child));
          value = Or(value, v);
          if (value == Ternary::kTrue) break;
        }
        return value;
      }
      case Expression::Kind::kNot: {
        if (expr.children.empty()) return InternalError("NOT without child");
        DBRE_ASSIGN_OR_RETURN(Ternary v,
                              EvaluateExpression(*expr.children[0]));
        return Not(v);
      }
      case Expression::Kind::kIsNull: {
        DBRE_ASSIGN_OR_RETURN(Value value, EvaluateOperand(expr.lhs));
        bool is_null = value.is_null();
        return (is_null != expr.negated) ? Ternary::kTrue : Ternary::kFalse;
      }
      case Expression::Kind::kBetween:
        // The parser keeps BETWEEN opaque (bounds discarded): evaluate as
        // unknown, which filters the row without failing the query.
        return Ternary::kUnknown;
      case Expression::Kind::kLike: {
        DBRE_ASSIGN_OR_RETURN(Value text, EvaluateOperand(expr.lhs));
        DBRE_ASSIGN_OR_RETURN(Value pattern, EvaluateOperand(expr.rhs));
        if (text.is_null() || pattern.is_null()) return Ternary::kUnknown;
        if (!text.is_text() || !pattern.is_text()) {
          return InvalidArgumentError("LIKE requires string operands");
        }
        bool matches = LikeMatches(text.as_text(), pattern.as_text());
        return (matches != expr.negated) ? Ternary::kTrue : Ternary::kFalse;
      }
      case Expression::Kind::kInSubquery:
        return EvaluateInSubquery(expr);
      case Expression::Kind::kExists: {
        if (expr.subquery == nullptr) {
          return InternalError("EXISTS without subquery");
        }
        DBRE_ASSIGN_OR_RETURN(ResultSet rows,
                              ExecuteStatement(*expr.subquery));
        bool exists = !rows.rows.empty();
        return (exists != expr.negated) ? Ternary::kTrue : Ternary::kFalse;
      }
    }
    return InternalError("unhandled expression kind");
  }

  Result<Ternary> EvaluateInSubquery(const Expression& expr) {
    if (expr.subquery == nullptr) return InternalError("IN without subquery");
    ValueVector probe;
    for (const ColumnRef& column : expr.in_columns) {
      DBRE_ASSIGN_OR_RETURN(Value value, ResolveColumnValue(column));
      probe.push_back(std::move(value));
    }
    DBRE_ASSIGN_OR_RETURN(ResultSet rows, ExecuteStatement(*expr.subquery));
    bool saw_unknown = false;
    for (const ValueVector& row : rows.rows) {
      if (row.size() != probe.size()) {
        return InvalidArgumentError("IN subquery arity mismatch");
      }
      Ternary match = Ternary::kTrue;
      for (size_t i = 0; i < probe.size() && match != Ternary::kFalse;
           ++i) {
        if (probe[i].is_null() || row[i].is_null()) {
          match = And(match, Ternary::kUnknown);
          continue;
        }
        DBRE_ASSIGN_OR_RETURN(int cmp, CompareValues(probe[i], row[i]));
        match = And(match, cmp == 0 ? Ternary::kTrue : Ternary::kFalse);
      }
      if (match == Ternary::kTrue) {
        return expr.negated ? Ternary::kFalse : Ternary::kTrue;
      }
      if (match == Ternary::kUnknown) saw_unknown = true;
    }
    if (saw_unknown) return Ternary::kUnknown;
    return expr.negated ? Ternary::kTrue : Ternary::kFalse;
  }

  const Database& database_;
  const ExecutorOptions& options_;
  std::vector<Frame*> env_;
};

}  // namespace

std::string ResultSet::ToString() const {
  // Compute column widths.
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  std::vector<std::vector<std::string>> rendered;
  for (const ValueVector& row : rows) {
    std::vector<std::string> cells;
    for (size_t c = 0; c < row.size(); ++c) {
      cells.push_back(row[c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], cells[c].size());
    }
    rendered.push_back(std::move(cells));
  }
  std::ostringstream os;
  for (size_t c = 0; c < columns.size(); ++c) {
    os << (c ? " | " : "") << columns[c]
       << std::string(widths[c] - columns[c].size(), ' ');
  }
  os << "\n";
  for (size_t c = 0; c < columns.size(); ++c) {
    os << (c ? "-+-" : "") << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& cells : rendered) {
    for (size_t c = 0; c < cells.size(); ++c) {
      size_t width = c < widths.size() ? widths[c] : cells[c].size();
      os << (c ? " | " : "") << cells[c]
         << std::string(width - std::min(width, cells[c].size()), ' ');
    }
    os << "\n";
  }
  return os.str();
}

bool ResultSet::SameRows(const ResultSet& other) const {
  std::vector<ValueVector> a = rows, b = other.rows;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

Result<ResultSet> Execute(const Database& database,
                          const SelectStatement& statement,
                          const ExecutorOptions& options) {
  Evaluator evaluator(database, options);
  return evaluator.ExecuteStatement(statement);
}

Result<ResultSet> ExecuteQuery(const Database& database,
                               std::string_view sql,
                               const ExecutorOptions& options) {
  DBRE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> statement,
                        ParseSelect(sql));
  return Execute(database, *statement, options);
}

Result<size_t> CountDistinct(const Database& database,
                             const std::string& relation,
                             const std::vector<std::string>& attributes) {
  if (attributes.empty()) {
    return InvalidArgumentError("count distinct over no attributes");
  }
  // COUNT(DISTINCT a, b, ...) is not portable SQL; evaluate as the number
  // of distinct non-NULL projections via SELECT DISTINCT.
  std::string sql = "SELECT DISTINCT " + Join(attributes, ", ") + " FROM " +
                    relation;
  DBRE_ASSIGN_OR_RETURN(ResultSet rows, ExecuteQuery(database, sql));
  size_t count = 0;
  for (const ValueVector& row : rows.rows) {
    bool has_null = std::any_of(row.begin(), row.end(),
                                [](const Value& v) { return v.is_null(); });
    if (!has_null) ++count;
  }
  return count;
}

}  // namespace dbre::sql
