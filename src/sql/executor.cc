#include "sql/executor.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "relational/column_batch.h"
#include "relational/query_cache.h"
#include "sql/parser.h"

namespace dbre::sql {
namespace {

// SQL three-valued logic.
enum class Ternary { kFalse, kTrue, kUnknown };

Ternary And(Ternary a, Ternary b) {
  if (a == Ternary::kFalse || b == Ternary::kFalse) return Ternary::kFalse;
  if (a == Ternary::kTrue && b == Ternary::kTrue) return Ternary::kTrue;
  return Ternary::kUnknown;
}

Ternary Or(Ternary a, Ternary b) {
  if (a == Ternary::kTrue || b == Ternary::kTrue) return Ternary::kTrue;
  if (a == Ternary::kFalse && b == Ternary::kFalse) return Ternary::kFalse;
  return Ternary::kUnknown;
}

Ternary Not(Ternary a) {
  if (a == Ternary::kTrue) return Ternary::kFalse;
  if (a == Ternary::kFalse) return Ternary::kTrue;
  return Ternary::kUnknown;
}

// One table instance of a FROM clause with its current row. Paged tables
// have no materialized rows: the odometer decodes the current row into
// `paged_row` through the query cache's RowReader instead.
struct Binding {
  const TableRef* ref = nullptr;
  const Table* table = nullptr;
  const ValueVector* row = nullptr;
  std::shared_ptr<QueryCache> paged_cache;
  std::unique_ptr<EncodedTable::RowReader> paged_reader;
  ValueVector paged_row;
};

using Frame = std::vector<Binding>;

// Numeric-coercing comparison; NULLs must be handled by the caller.
Result<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    return a.as_int() < b.as_int() ? -1 : (a.as_int() > b.as_int() ? 1 : 0);
  }
  if ((a.is_int() || a.is_real()) && (b.is_int() || b.is_real())) {
    double da = a.is_int() ? static_cast<double>(a.as_int()) : a.as_real();
    double db = b.is_int() ? static_cast<double>(b.as_int()) : b.as_real();
    return da < db ? -1 : (da > db ? 1 : 0);
  }
  if (a.is_text() && b.is_text()) {
    int cmp = a.as_text().compare(b.as_text());
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return InvalidArgumentError("cannot compare " + a.ToString() + " with " +
                              b.ToString());
}

// SQL LIKE with % (any run) and _ (any one character).
bool LikeMatches(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer with backtracking on the last %.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// --- Vectorized enumeration ----------------------------------------------
//
// ExecuteCore's reference enumeration is the tuple-at-a-time odometer loop.
// When every predicate of a one- or two-table statement compiles into a
// per-dictionary-code ternary truth table over a single table (plus
// cross-table equality join keys), the enumeration instead runs
// column-at-a-time over batches of codes (relational/column_batch.h):
// predicates evaluate once per distinct value instead of once per row,
// surviving rows are compacted with flat Kleene kernels, and joins
// hash-probe dictionary codes translated into the build side's code space.
// Anything the compiler cannot prove equivalent — subqueries, column-to-
// column comparisons within a table, coercing or double-typed join keys,
// resolution failures, literals that do not parse — falls back to the
// odometer, which is also the error-reporting path: the fast path never
// surfaces an error (or masks one) that the reference path would not.

using batch::Truth;

constexpr size_t kNoTable = static_cast<size_t>(-1);

obs::Counter* ExecutorPathCounter(bool vectorized) {
  static obs::Counter* vectorized_count =
      obs::Registry::Default().GetCounter(
          "dbre_executor_paths_total", {{"path", "vectorized"}},
          "SELECT enumerations by evaluation path");
  static obs::Counter* fallback_count =
      obs::Registry::Default().GetCounter(
          "dbre_executor_paths_total", {{"path", "fallback"}},
          "SELECT enumerations by evaluation path");
  return vectorized ? vectorized_count : fallback_count;
}

// A compiled ternary predicate over one table's dictionary codes: Kleene
// combinators whose leaves are truth tables indexed by code.
struct TruthProgram {
  enum class Kind { kConst, kLeaf, kAnd, kOr, kNot };

  Kind kind = Kind::kConst;
  Truth constant = Truth::kTrue;       // kConst
  size_t column = 0;                   // kLeaf
  std::vector<Truth> code_truth;       // kLeaf: per dictionary code
  Truth null_truth = Truth::kUnknown;  // kLeaf: the NULL lane
  std::vector<TruthProgram> children;  // kAnd / kOr / kNot
};

TruthProgram ConstProgram(Truth value) {
  TruthProgram node;
  node.kind = TruthProgram::Kind::kConst;
  node.constant = value;
  return node;
}

TruthProgram BoolProgram(bool value) {
  return ConstProgram(value ? Truth::kTrue : Truth::kFalse);
}

void EvalProgram(const TruthProgram& node, const EncodedTable& encoded,
                 size_t start, size_t count, Truth* out) {
  switch (node.kind) {
    case TruthProgram::Kind::kConst:
      batch::FillTruth(node.constant, count, out);
      return;
    case TruthProgram::Kind::kLeaf:
      batch::GatherTruth(encoded.codes(node.column).data() + start, count,
                         node.code_truth.data(), node.null_truth,
                         EncodedTable::kNullCode, out);
      return;
    case TruthProgram::Kind::kAnd:
    case TruthProgram::Kind::kOr: {
      const bool conjunction = node.kind == TruthProgram::Kind::kAnd;
      if (node.children.empty()) {
        batch::FillTruth(conjunction ? Truth::kTrue : Truth::kFalse, count,
                         out);
        return;
      }
      EvalProgram(node.children[0], encoded, start, count, out);
      if (node.children.size() == 1) return;
      std::vector<Truth> rhs(count);
      for (size_t i = 1; i < node.children.size(); ++i) {
        EvalProgram(node.children[i], encoded, start, count, rhs.data());
        if (conjunction) {
          batch::TruthAnd(out, rhs.data(), count, out);
        } else {
          batch::TruthOr(out, rhs.data(), count, out);
        }
      }
      return;
    }
    case TruthProgram::Kind::kNot:
      EvalProgram(node.children[0], encoded, start, count, out);
      batch::TruthNot(out, count, out);
      return;
  }
}

struct VectorContext {
  const Frame& frame;
  const std::vector<std::shared_ptr<QueryCache>>& caches;
};

// Resolves `ref` against the innermost frame exactly like
// ResolveColumnValue (first qualifier match wins; unqualified names must
// be unambiguous). nullopt means the reference is ambiguous, unknown, or
// mis-qualified — cases where the reference path errors, so the caller
// falls back.
std::optional<std::pair<size_t, size_t>> ResolveColumnIndex(
    const Frame& frame, const ColumnRef& ref) {
  const Binding* found = nullptr;
  size_t found_index = 0;
  for (size_t b = 0; b < frame.size(); ++b) {
    const Binding& binding = frame[b];
    if (!ref.qualifier.empty()) {
      const std::string& name = binding.ref->alias.empty()
                                    ? binding.ref->table
                                    : binding.ref->alias;
      if (name != ref.qualifier) continue;
      found = &binding;
      found_index = b;
      break;
    }
    if (binding.table->schema().HasAttribute(ref.column)) {
      if (found != nullptr) return std::nullopt;  // ambiguous
      found = &binding;
      found_index = b;
    }
  }
  if (found == nullptr) return std::nullopt;
  auto index = found->table->schema().AttributeIndex(ref.column);
  if (!index.ok()) return std::nullopt;
  return std::make_pair(found_index, *index);
}

// Evaluates a non-column operand to its constant value, mirroring
// EvaluateOperand. False when the operand is a column or does not parse.
bool ConstantOperand(const Operand& operand, Value* out) {
  switch (operand.kind) {
    case Operand::Kind::kColumn:
      return false;
    case Operand::Kind::kInteger: {
      auto value = Value::Parse(operand.literal, DataType::kInt64);
      if (!value.ok()) return false;
      *out = *std::move(value);
      return true;
    }
    case Operand::Kind::kDecimal: {
      auto value = Value::Parse(operand.literal, DataType::kDouble);
      if (!value.ok()) return false;
      *out = *std::move(value);
      return true;
    }
    case Operand::Kind::kString:
      *out = Value::Text(operand.literal);
      return true;
    case Operand::Kind::kHostVariable:
    case Operand::Kind::kNull:
      *out = Value::Null();
      return true;
  }
  return false;
}

bool CompareTruthValue(int cmp, ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq: return cmp == 0;
    case ComparisonOp::kNe: return cmp != 0;
    case ComparisonOp::kLt: return cmp < 0;
    case ComparisonOp::kLe: return cmp <= 0;
    case ComparisonOp::kGt: return cmp > 0;
    case ComparisonOp::kGe: return cmp >= 0;
  }
  return false;
}

// Pins the subtree to binding `binding`; a subtree may touch one table.
bool BindTable(size_t* table, size_t binding) {
  if (*table == kNoTable) {
    *table = binding;
    return true;
  }
  return *table == binding;
}

bool CompileComparison(const Expression& expr, const VectorContext& ctx,
                       TruthProgram* out, size_t* table) {
  const bool lhs_column = expr.lhs.kind == Operand::Kind::kColumn;
  const bool rhs_column = expr.rhs.kind == Operand::Kind::kColumn;
  if (lhs_column && rhs_column) return false;  // joins handled separately
  if (!lhs_column && !rhs_column) {
    Value a, b;
    if (!ConstantOperand(expr.lhs, &a)) return false;
    if (!ConstantOperand(expr.rhs, &b)) return false;
    if (a.is_null() || b.is_null()) {
      *out = ConstProgram(Truth::kUnknown);
      return true;
    }
    auto cmp = CompareValues(a, b);
    if (!cmp.ok()) return false;
    *out = BoolProgram(CompareTruthValue(*cmp, expr.op));
    return true;
  }
  const Operand& column_operand = lhs_column ? expr.lhs : expr.rhs;
  const Operand& literal_operand = lhs_column ? expr.rhs : expr.lhs;
  auto resolved = ResolveColumnIndex(ctx.frame, column_operand.column);
  if (!resolved) return false;
  if (!BindTable(table, resolved->first)) return false;
  Value literal;
  if (!ConstantOperand(literal_operand, &literal)) return false;
  if (literal.is_null()) {
    *out = ConstProgram(Truth::kUnknown);
    return true;
  }
  const size_t column = resolved->second;
  ctx.caches[resolved->first]->EnsureEncoded({column});
  const EncodedTable& encoded = ctx.caches[resolved->first]->encoded();
  TruthProgram leaf;
  leaf.kind = TruthProgram::Kind::kLeaf;
  leaf.column = column;
  leaf.null_truth = Truth::kUnknown;
  leaf.code_truth.resize(encoded.dict_size(column));
  for (uint32_t code = 0; code < leaf.code_truth.size(); ++code) {
    const Value& value = encoded.Decode(column, code);
    auto cmp = lhs_column ? CompareValues(value, literal)
                          : CompareValues(literal, value);
    if (!cmp.ok()) return false;  // mixed tags: the reference path errors
    leaf.code_truth[code] =
        CompareTruthValue(*cmp, expr.op) ? Truth::kTrue : Truth::kFalse;
  }
  *out = std::move(leaf);
  return true;
}

bool CompileIsNull(const Expression& expr, const VectorContext& ctx,
                   TruthProgram* out, size_t* table) {
  if (expr.lhs.kind != Operand::Kind::kColumn) {
    Value value;
    if (!ConstantOperand(expr.lhs, &value)) return false;
    *out = BoolProgram(value.is_null() != expr.negated);
    return true;
  }
  auto resolved = ResolveColumnIndex(ctx.frame, expr.lhs.column);
  if (!resolved) return false;
  if (!BindTable(table, resolved->first)) return false;
  const size_t column = resolved->second;
  ctx.caches[resolved->first]->EnsureEncoded({column});
  const EncodedTable& encoded = ctx.caches[resolved->first]->encoded();
  TruthProgram leaf;
  leaf.kind = TruthProgram::Kind::kLeaf;
  leaf.column = column;
  leaf.null_truth = expr.negated ? Truth::kFalse : Truth::kTrue;
  leaf.code_truth.assign(encoded.dict_size(column),
                         expr.negated ? Truth::kTrue : Truth::kFalse);
  *out = std::move(leaf);
  return true;
}

bool CompileLike(const Expression& expr, const VectorContext& ctx,
                 TruthProgram* out, size_t* table) {
  if (expr.rhs.kind == Operand::Kind::kColumn) return false;
  Value pattern;
  if (!ConstantOperand(expr.rhs, &pattern)) return false;
  if (expr.lhs.kind != Operand::Kind::kColumn) {
    Value text;
    if (!ConstantOperand(expr.lhs, &text)) return false;
    if (text.is_null() || pattern.is_null()) {
      *out = ConstProgram(Truth::kUnknown);
      return true;
    }
    if (!text.is_text() || !pattern.is_text()) return false;
    *out = BoolProgram(LikeMatches(text.as_text(), pattern.as_text()) !=
                       expr.negated);
    return true;
  }
  auto resolved = ResolveColumnIndex(ctx.frame, expr.lhs.column);
  if (!resolved) return false;
  if (!BindTable(table, resolved->first)) return false;
  if (pattern.is_null()) {
    *out = ConstProgram(Truth::kUnknown);
    return true;
  }
  if (!pattern.is_text()) return false;  // reference path errors per row
  const size_t column = resolved->second;
  ctx.caches[resolved->first]->EnsureEncoded({column});
  const EncodedTable& encoded = ctx.caches[resolved->first]->encoded();
  TruthProgram leaf;
  leaf.kind = TruthProgram::Kind::kLeaf;
  leaf.column = column;
  leaf.null_truth = Truth::kUnknown;
  leaf.code_truth.resize(encoded.dict_size(column));
  for (uint32_t code = 0; code < leaf.code_truth.size(); ++code) {
    const Value& value = encoded.Decode(column, code);
    if (!value.is_text()) return false;
    leaf.code_truth[code] =
        (LikeMatches(value.as_text(), pattern.as_text()) != expr.negated)
            ? Truth::kTrue
            : Truth::kFalse;
  }
  *out = std::move(leaf);
  return true;
}

bool CompileExpression(const Expression& expr, const VectorContext& ctx,
                       TruthProgram* out, size_t* table) {
  switch (expr.kind) {
    case Expression::Kind::kComparison:
      return CompileComparison(expr, ctx, out, table);
    case Expression::Kind::kIsNull:
      return CompileIsNull(expr, ctx, out, table);
    case Expression::Kind::kLike:
      return CompileLike(expr, ctx, out, table);
    case Expression::Kind::kBetween:
      // Opaque in the AST; the reference path always evaluates kUnknown.
      *out = ConstProgram(Truth::kUnknown);
      return true;
    case Expression::Kind::kAnd:
    case Expression::Kind::kOr: {
      TruthProgram node;
      node.kind = expr.kind == Expression::Kind::kAnd
                      ? TruthProgram::Kind::kAnd
                      : TruthProgram::Kind::kOr;
      for (const auto& child : expr.children) {
        TruthProgram compiled;
        if (!CompileExpression(*child, ctx, &compiled, table)) return false;
        node.children.push_back(std::move(compiled));
      }
      *out = std::move(node);
      return true;
    }
    case Expression::Kind::kNot: {
      if (expr.children.empty()) return false;  // reference path errors
      TruthProgram node;
      node.kind = TruthProgram::Kind::kNot;
      TruthProgram compiled;
      if (!CompileExpression(*expr.children[0], ctx, &compiled, table)) {
        return false;
      }
      node.children.push_back(std::move(compiled));
      *out = std::move(node);
      return true;
    }
    case Expression::Kind::kInSubquery:
    case Expression::Kind::kExists:
      return false;
  }
  return false;
}

// Splits an expression into its top-level conjuncts.
void FlattenConjuncts(const Expression& expr,
                      std::vector<const Expression*>* out) {
  if (expr.kind == Expression::Kind::kAnd) {
    for (const auto& child : expr.children) FlattenConjuncts(*child, out);
    return;
  }
  out->push_back(&expr);
}

// One cross-table equality of a two-table join, reduced to code equality
// in the build (right) side's code space.
struct JoinKeyPair {
  size_t left_column = 0;
  size_t right_column = 0;
  // frame[0] code → equal frame[1] code, or kNullCode when no value of the
  // right dictionary equals it.
  std::vector<uint32_t> translate;
};

// Builds the code translation for one equality pair. Requires both
// dictionaries homogeneous under the same declared type so that value
// equality coincides with the evaluator's coercing comparison; doubles are
// excluded (CompareValues treats NaN as equal to NaN, value equality may
// not). False falls back to the reference path.
bool BuildCodeTranslation(const VectorContext& ctx, JoinKeyPair* pair) {
  ctx.caches[0]->EnsureEncoded({pair->left_column});
  ctx.caches[1]->EnsureEncoded({pair->right_column});
  const EncodedTable& left = ctx.caches[0]->encoded();
  const EncodedTable& right = ctx.caches[1]->encoded();
  if (left.declared_type(pair->left_column) !=
      right.declared_type(pair->right_column)) {
    return false;
  }
  if (!left.column_typed(pair->left_column) ||
      !right.column_typed(pair->right_column)) {
    return false;
  }
  if (left.declared_type(pair->left_column) == DataType::kDouble) {
    return false;
  }
  const size_t right_dict = right.dict_size(pair->right_column);
  std::unordered_map<Value, uint32_t, ValueHash> right_code_of;
  right_code_of.reserve(right_dict);
  for (uint32_t code = 0; code < right_dict; ++code) {
    right_code_of.emplace(right.Decode(pair->right_column, code), code);
  }
  const size_t left_dict = left.dict_size(pair->left_column);
  pair->translate.assign(left_dict, EncodedTable::kNullCode);
  for (uint32_t code = 0; code < left_dict; ++code) {
    auto it = right_code_of.find(left.Decode(pair->left_column, code));
    if (it != right_code_of.end()) pair->translate[code] = it->second;
  }
  return true;
}

class Evaluator {
 public:
  Evaluator(const Database& database, const ExecutorOptions& options)
      : database_(database), options_(options) {}

  Result<ResultSet> ExecuteStatement(const SelectStatement& statement) {
    DBRE_ASSIGN_OR_RETURN(ResultSet left, ExecuteCore(statement));
    if (statement.set_rhs == nullptr) return left;
    DBRE_ASSIGN_OR_RETURN(ResultSet right,
                          ExecuteStatement(*statement.set_rhs));
    if (left.columns.size() != right.columns.size()) {
      return InvalidArgumentError(
          "set operation over differently-shaped selects");
    }
    // SQL set operations work on distinct rows.
    auto distinct = [](std::vector<ValueVector> rows) {
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      return rows;
    };
    std::vector<ValueVector> lhs = distinct(std::move(left.rows));
    std::vector<ValueVector> rhs = distinct(std::move(right.rows));
    std::vector<ValueVector> out;
    switch (statement.set_op) {
      case SelectStatement::SetOp::kIntersect:
        std::set_intersection(lhs.begin(), lhs.end(), rhs.begin(),
                              rhs.end(), std::back_inserter(out));
        break;
      case SelectStatement::SetOp::kUnion:
        std::set_union(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(),
                       std::back_inserter(out));
        break;
      case SelectStatement::SetOp::kMinus:
        std::set_difference(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(),
                            std::back_inserter(out));
        break;
      case SelectStatement::SetOp::kNone:
        return InternalError("set_rhs without set_op");
    }
    left.rows = std::move(out);
    return left;
  }

 private:
  Result<ResultSet> ExecuteCore(const SelectStatement& statement) {
    // Resolve the FROM tables.
    Frame frame;
    frame.reserve(statement.from.size());
    for (const TableRef& ref : statement.from) {
      DBRE_ASSIGN_OR_RETURN(const Table* table,
                            database_.GetTable(ref.table));
      Binding binding;
      binding.ref = &ref;
      binding.table = table;
      if (table->is_paged()) {
        DBRE_ASSIGN_OR_RETURN(std::shared_ptr<QueryCache> cache,
                              table->query_cache());
        std::vector<size_t> columns(table->schema().arity());
        std::iota(columns.begin(), columns.end(), size_t{0});
        cache->EnsureEncoded(columns);
        binding.paged_reader = std::make_unique<EncodedTable::RowReader>(
            cache->encoded().row_reader(std::move(columns)));
        binding.paged_cache = std::move(cache);
      }
      frame.push_back(std::move(binding));
    }
    env_.push_back(&frame);

    // Classify the select list: plain columns or aggregate COUNTs.
    bool has_count = false, has_scalar = false;
    for (const SelectItem& item : statement.select_list) {
      (item.count ? has_count : has_scalar) = true;
    }
    if (has_count && has_scalar) {
      env_.pop_back();
      return InvalidArgumentError(
          "mixed COUNT and plain columns without GROUP BY support");
    }

    ResultSet result;
    Status failure = Status::Ok();

    // For COUNT queries we gather the counted values; for plain queries,
    // the projected rows.
    std::vector<ValueVector> projected;
    size_t plain_row_count = 0;

    // Enumerate: the batched columnar path when the statement compiles to
    // per-dictionary-code ternary programs, the tuple-at-a-time odometer
    // otherwise (also the error-reporting path).
    std::optional<Status> vectorized = VectorizedEnumeration(
        statement, frame, has_count, &projected, &plain_row_count);
    ExecutorPathCounter(vectorized.has_value())->Add(1);
    if (vectorized.has_value()) {
      failure = *vectorized;
    } else {
      // Enumerate the cross product of the FROM tables.
      std::vector<size_t> cursor(frame.size(), 0);
      bool exhausted = frame.empty();
      for (const Binding& binding : frame) {
        if (binding.table->num_rows() == 0) exhausted = true;
      }
      while (!exhausted) {
        for (size_t i = 0; i < frame.size(); ++i) {
          Binding& binding = frame[i];
          if (binding.paged_reader != nullptr) {
            binding.paged_reader->Read(cursor[i], &binding.paged_row);
            binding.row = &binding.paged_row;
          } else {
            binding.row = &binding.table->row(cursor[i]);
          }
        }
        // Evaluate the ON conditions and the WHERE clause.
        Ternary keep = Ternary::kTrue;
        for (const auto& condition : statement.join_conditions) {
          auto value = EvaluateExpression(*condition);
          if (!value.ok()) {
            failure = value.status();
            break;
          }
          keep = And(keep, *value);
        }
        if (failure.ok() && keep == Ternary::kTrue &&
            statement.where != nullptr) {
          auto value = EvaluateExpression(*statement.where);
          if (!value.ok()) {
            failure = value.status();
          } else {
            keep = And(keep, *value);
          }
        }
        if (!failure.ok()) break;

        if (keep == Ternary::kTrue) {
          ++plain_row_count;
          auto row = ProjectRow(statement.select_list, has_count);
          if (!row.ok()) {
            failure = row.status();
            break;
          }
          projected.push_back(std::move(row).value());
          if (options_.max_intermediate_rows != 0 &&
              projected.size() > options_.max_intermediate_rows) {
            failure = FailedPreconditionError(
                "query exceeded max_intermediate_rows");
            break;
          }
        }
        // Advance the odometer.
        size_t level = frame.size();
        while (level > 0) {
          --level;
          if (++cursor[level] < frame[level].table->num_rows()) break;
          cursor[level] = 0;
          if (level == 0) exhausted = true;
        }
      }
    }
    env_.pop_back();
    DBRE_RETURN_IF_ERROR(failure);

    // Column names.
    DBRE_RETURN_IF_ERROR(
        NameColumns(statement, frame, has_count, &result.columns));

    if (has_count) {
      // Aggregate: one output row of counts.
      ValueVector counts;
      for (size_t c = 0; c < statement.select_list.size(); ++c) {
        const SelectItem& item = statement.select_list[c];
        if (item.star) {
          counts.push_back(Value::Int(static_cast<int64_t>(plain_row_count)));
          continue;
        }
        // COUNT(col): non-NULL values; DISTINCT dedups.
        std::vector<Value> values;
        for (const ValueVector& row : projected) {
          if (!row[c].is_null()) values.push_back(row[c]);
        }
        if (item.distinct) {
          std::sort(values.begin(), values.end());
          values.erase(std::unique(values.begin(), values.end()),
                       values.end());
        }
        counts.push_back(Value::Int(static_cast<int64_t>(values.size())));
      }
      result.rows.push_back(std::move(counts));
      return result;
    }

    if (statement.select_distinct) {
      std::sort(projected.begin(), projected.end());
      projected.erase(std::unique(projected.begin(), projected.end()),
                      projected.end());
    }
    result.rows = std::move(projected);
    return result;
  }

  // Attempts the batched columnar enumeration for the innermost frame.
  // On success fills `projected` / `plain_row_count` and returns the
  // enumeration's status (emission can still fail — projection errors,
  // max_intermediate_rows); nullopt falls back to the odometer loop.
  std::optional<Status> VectorizedEnumeration(
      const SelectStatement& statement, Frame& frame, bool has_count,
      std::vector<ValueVector>* projected, size_t* plain_row_count) {
    if (options_.disable_vectorized) return std::nullopt;
    // Outer scopes could capture unqualified names; only top-level frames
    // compile. Subqueries always evaluate tuple-at-a-time.
    if (env_.size() != 1) return std::nullopt;
    if (frame.empty() || frame.size() > 2) return std::nullopt;
    // The compiled kernels index flat in-memory code vectors and resident
    // dictionaries; paged extensions take the (RowReader-backed) odometer.
    for (const Binding& binding : frame) {
      if (binding.table->is_paged()) return std::nullopt;
    }

    std::vector<std::shared_ptr<QueryCache>> caches;
    caches.reserve(frame.size());
    for (const Binding& binding : frame) {
      auto cache = binding.table->query_cache();
      if (!cache.ok()) return std::nullopt;
      caches.push_back(std::move(cache).value());
    }
    VectorContext ctx{frame, caches};

    // Classify the top-level conjuncts: per-table ternary programs, or —
    // between two tables — equality join keys. Kleene AND is commutative,
    // so regrouping conjuncts by table preserves the result as long as no
    // conjunct errors, which compilation rules out.
    std::vector<const Expression*> conjuncts;
    for (const auto& condition : statement.join_conditions) {
      FlattenConjuncts(*condition, &conjuncts);
    }
    if (statement.where != nullptr) {
      FlattenConjuncts(*statement.where, &conjuncts);
    }

    std::vector<TruthProgram> programs(frame.size());
    for (TruthProgram& program : programs) {
      program.kind = TruthProgram::Kind::kAnd;
    }
    std::vector<JoinKeyPair> join_keys;
    for (const Expression* conjunct : conjuncts) {
      if (conjunct->kind == Expression::Kind::kComparison &&
          conjunct->op == ComparisonOp::kEq &&
          conjunct->lhs.kind == Operand::Kind::kColumn &&
          conjunct->rhs.kind == Operand::Kind::kColumn) {
        auto a = ResolveColumnIndex(frame, conjunct->lhs.column);
        auto b = ResolveColumnIndex(frame, conjunct->rhs.column);
        if (!a || !b || a->first == b->first) return std::nullopt;
        JoinKeyPair pair;
        pair.left_column = a->first == 0 ? a->second : b->second;
        pair.right_column = a->first == 0 ? b->second : a->second;
        if (!BuildCodeTranslation(ctx, &pair)) return std::nullopt;
        join_keys.push_back(std::move(pair));
        continue;
      }
      TruthProgram compiled;
      size_t table = kNoTable;
      if (!CompileExpression(*conjunct, ctx, &compiled, &table)) {
        return std::nullopt;
      }
      programs[table == kNoTable ? 0 : table].children.push_back(
          std::move(compiled));
    }

    auto project = [&]() -> Status {
      ++*plain_row_count;
      auto row = ProjectRow(statement.select_list, has_count);
      if (!row.ok()) return row.status();
      projected->push_back(std::move(row).value());
      if (options_.max_intermediate_rows != 0 &&
          projected->size() > options_.max_intermediate_rows) {
        return FailedPreconditionError(
            "query exceeded max_intermediate_rows");
      }
      return Status::Ok();
    };

    const EncodedTable& enc0 = caches[0]->encoded();
    std::vector<Truth> truth(batch::kBatchSize);
    std::vector<uint32_t> selected(batch::kBatchSize);

    if (frame.size() == 1) {
      const Table* table = frame[0].table;
      batch::BatchIterator batches(table->num_rows());
      size_t start = 0, count = 0;
      while (batches.Next(&start, &count)) {
        EvalProgram(programs[0], enc0, start, count, truth.data());
        batch::AddKernelRows(batch::Kernel::kScan, count);
        const size_t n =
            batch::SelectTrue(truth.data(), count, start, selected.data());
        for (size_t i = 0; i < n; ++i) {
          frame[0].row = &table->row(selected[i]);
          Status status = project();
          if (!status.ok()) return status;
        }
      }
      return Status::Ok();
    }

    // Two tables: filter the build side (frame[1]) into hash buckets over
    // its join-key codes, then stream the probe side in row order. Bucket
    // lists keep ascending row order, so emission order — probe row outer,
    // build row inner, both ascending — matches the odometer exactly.
    const Table* left_table = frame[0].table;
    const Table* right_table = frame[1].table;
    const EncodedTable& enc1 = caches[1]->encoded();
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    std::vector<uint32_t> cross_rows;  // no join keys: filtered cross product
    {
      batch::BatchIterator batches(right_table->num_rows());
      size_t start = 0, count = 0;
      while (batches.Next(&start, &count)) {
        EvalProgram(programs[1], enc1, start, count, truth.data());
        batch::AddKernelRows(batch::Kernel::kScan, count);
        const size_t n =
            batch::SelectTrue(truth.data(), count, start, selected.data());
        for (size_t i = 0; i < n; ++i) {
          const uint32_t row = selected[i];
          if (join_keys.empty()) {
            cross_rows.push_back(row);
            continue;
          }
          uint64_t hash = kRowHashSeed;
          bool valid = true;
          for (const JoinKeyPair& key : join_keys) {
            const uint32_t code = enc1.codes(key.right_column)[row];
            if (code == EncodedTable::kNullCode) {
              valid = false;  // NULL keys never join
              break;
            }
            hash = SketchHashCombine(hash, code);
          }
          if (valid) buckets[hash].push_back(row);
        }
      }
    }

    std::vector<uint32_t> probe_codes(join_keys.size());
    batch::BatchIterator batches(left_table->num_rows());
    size_t start = 0, count = 0;
    while (batches.Next(&start, &count)) {
      EvalProgram(programs[0], enc0, start, count, truth.data());
      batch::AddKernelRows(batch::Kernel::kScan, count);
      const size_t n =
          batch::SelectTrue(truth.data(), count, start, selected.data());
      batch::AddKernelRows(batch::Kernel::kJoin, n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r0 = selected[i];
        frame[0].row = &left_table->row(r0);
        if (join_keys.empty()) {
          for (uint32_t r1 : cross_rows) {
            frame[1].row = &right_table->row(r1);
            Status status = project();
            if (!status.ok()) return status;
          }
          continue;
        }
        uint64_t hash = kRowHashSeed;
        bool valid = true;
        for (size_t k = 0; k < join_keys.size(); ++k) {
          const uint32_t code = enc0.codes(join_keys[k].left_column)[r0];
          const uint32_t translated = code == EncodedTable::kNullCode
                                          ? EncodedTable::kNullCode
                                          : join_keys[k].translate[code];
          if (translated == EncodedTable::kNullCode) {
            valid = false;
            break;
          }
          probe_codes[k] = translated;
          hash = SketchHashCombine(hash, translated);
        }
        if (!valid) continue;
        auto bucket = buckets.find(hash);
        if (bucket == buckets.end()) continue;
        for (uint32_t r1 : bucket->second) {
          // Hash buckets can collide; code equality is the exact check.
          bool match = true;
          for (size_t k = 0; k < join_keys.size(); ++k) {
            if (enc1.codes(join_keys[k].right_column)[r1] !=
                probe_codes[k]) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          frame[1].row = &right_table->row(r1);
          Status status = project();
          if (!status.ok()) return status;
        }
      }
    }
    return Status::Ok();
  }

  // Projects the current bound row combination onto the select list. For
  // COUNT items the counted column value is projected (aggregated later).
  Result<ValueVector> ProjectRow(const std::vector<SelectItem>& select_list,
                                 bool for_count) {
    ValueVector out;
    for (const SelectItem& item : select_list) {
      if (item.star) {
        if (for_count) {
          out.push_back(Value::Int(1));  // placeholder; COUNT(*) uses rows
          continue;
        }
        // Expand *: all columns of all (or the qualified) tables in the
        // innermost frame.
        const Frame& frame = *env_.back();
        for (const Binding& binding : frame) {
          if (!item.column.qualifier.empty()) {
            const std::string& name = binding.ref->alias.empty()
                                          ? binding.ref->table
                                          : binding.ref->alias;
            if (name != item.column.qualifier) continue;
          }
          for (const Value& value : *binding.row) out.push_back(value);
        }
        continue;
      }
      DBRE_ASSIGN_OR_RETURN(Value value, ResolveColumnValue(item.column));
      out.push_back(std::move(value));
    }
    return out;
  }

  Status NameColumns(const SelectStatement& statement, const Frame& frame,
                     bool has_count, std::vector<std::string>* names) {
    for (const SelectItem& item : statement.select_list) {
      if (item.star && !has_count) {
        for (const Binding& binding : frame) {
          if (!item.column.qualifier.empty()) {
            const std::string& name = binding.ref->alias.empty()
                                          ? binding.ref->table
                                          : binding.ref->alias;
            if (name != item.column.qualifier) continue;
          }
          for (const Attribute& attribute :
               binding.table->schema().attributes()) {
            names->push_back(attribute.name);
          }
        }
        continue;
      }
      names->push_back(item.ToString());
    }
    return Status::Ok();
  }

  // Looks up a column in the environment, innermost frame first.
  Result<Value> ResolveColumnValue(const ColumnRef& ref) {
    for (size_t depth = env_.size(); depth-- > 0;) {
      const Frame& frame = *env_[depth];
      const Binding* found = nullptr;
      for (const Binding& binding : frame) {
        if (!ref.qualifier.empty()) {
          const std::string& name = binding.ref->alias.empty()
                                        ? binding.ref->table
                                        : binding.ref->alias;
          if (name != ref.qualifier) continue;
          found = &binding;
          break;
        }
        if (binding.table->schema().HasAttribute(ref.column)) {
          if (found != nullptr) {
            return InvalidArgumentError("ambiguous column " + ref.column);
          }
          found = &binding;
        }
      }
      if (found == nullptr) continue;
      auto index = found->table->schema().AttributeIndex(ref.column);
      if (!index.ok()) {
        if (!ref.qualifier.empty()) return index.status();
        continue;  // unqualified: keep searching outer scopes
      }
      if (found->row == nullptr) {
        return InternalError("column referenced outside row context");
      }
      return (*found->row)[*index];
    }
    return NotFoundError("cannot resolve column " + ref.ToString());
  }

  Result<Value> EvaluateOperand(const Operand& operand) {
    switch (operand.kind) {
      case Operand::Kind::kColumn:
        return ResolveColumnValue(operand.column);
      case Operand::Kind::kInteger: {
        DBRE_ASSIGN_OR_RETURN(Value value,
                              Value::Parse(operand.literal,
                                           DataType::kInt64));
        return value;
      }
      case Operand::Kind::kDecimal: {
        DBRE_ASSIGN_OR_RETURN(Value value,
                              Value::Parse(operand.literal,
                                           DataType::kDouble));
        return value;
      }
      case Operand::Kind::kString:
        return Value::Text(operand.literal);
      case Operand::Kind::kHostVariable:
        // Host variables have no value at reverse-engineering time; SQL
        // NULL makes the containing predicate unknown, which is the
        // conservative reading.
        return Value::Null();
      case Operand::Kind::kNull:
        return Value::Null();
    }
    return InternalError("unhandled operand kind");
  }

  Result<Ternary> EvaluateComparison(const Expression& expr) {
    DBRE_ASSIGN_OR_RETURN(Value lhs, EvaluateOperand(expr.lhs));
    DBRE_ASSIGN_OR_RETURN(Value rhs, EvaluateOperand(expr.rhs));
    if (lhs.is_null() || rhs.is_null()) return Ternary::kUnknown;
    DBRE_ASSIGN_OR_RETURN(int cmp, CompareValues(lhs, rhs));
    bool truth = false;
    switch (expr.op) {
      case ComparisonOp::kEq: truth = cmp == 0; break;
      case ComparisonOp::kNe: truth = cmp != 0; break;
      case ComparisonOp::kLt: truth = cmp < 0; break;
      case ComparisonOp::kLe: truth = cmp <= 0; break;
      case ComparisonOp::kGt: truth = cmp > 0; break;
      case ComparisonOp::kGe: truth = cmp >= 0; break;
    }
    return truth ? Ternary::kTrue : Ternary::kFalse;
  }

  Result<Ternary> EvaluateExpression(const Expression& expr) {
    switch (expr.kind) {
      case Expression::Kind::kComparison:
        return EvaluateComparison(expr);
      case Expression::Kind::kAnd: {
        Ternary value = Ternary::kTrue;
        for (const auto& child : expr.children) {
          DBRE_ASSIGN_OR_RETURN(Ternary v, EvaluateExpression(*child));
          value = And(value, v);
          if (value == Ternary::kFalse) break;
        }
        return value;
      }
      case Expression::Kind::kOr: {
        Ternary value = Ternary::kFalse;
        for (const auto& child : expr.children) {
          DBRE_ASSIGN_OR_RETURN(Ternary v, EvaluateExpression(*child));
          value = Or(value, v);
          if (value == Ternary::kTrue) break;
        }
        return value;
      }
      case Expression::Kind::kNot: {
        if (expr.children.empty()) return InternalError("NOT without child");
        DBRE_ASSIGN_OR_RETURN(Ternary v,
                              EvaluateExpression(*expr.children[0]));
        return Not(v);
      }
      case Expression::Kind::kIsNull: {
        DBRE_ASSIGN_OR_RETURN(Value value, EvaluateOperand(expr.lhs));
        bool is_null = value.is_null();
        return (is_null != expr.negated) ? Ternary::kTrue : Ternary::kFalse;
      }
      case Expression::Kind::kBetween:
        // The parser keeps BETWEEN opaque (bounds discarded): evaluate as
        // unknown, which filters the row without failing the query.
        return Ternary::kUnknown;
      case Expression::Kind::kLike: {
        DBRE_ASSIGN_OR_RETURN(Value text, EvaluateOperand(expr.lhs));
        DBRE_ASSIGN_OR_RETURN(Value pattern, EvaluateOperand(expr.rhs));
        if (text.is_null() || pattern.is_null()) return Ternary::kUnknown;
        if (!text.is_text() || !pattern.is_text()) {
          return InvalidArgumentError("LIKE requires string operands");
        }
        bool matches = LikeMatches(text.as_text(), pattern.as_text());
        return (matches != expr.negated) ? Ternary::kTrue : Ternary::kFalse;
      }
      case Expression::Kind::kInSubquery:
        return EvaluateInSubquery(expr);
      case Expression::Kind::kExists: {
        if (expr.subquery == nullptr) {
          return InternalError("EXISTS without subquery");
        }
        DBRE_ASSIGN_OR_RETURN(ResultSet rows,
                              ExecuteStatement(*expr.subquery));
        bool exists = !rows.rows.empty();
        return (exists != expr.negated) ? Ternary::kTrue : Ternary::kFalse;
      }
    }
    return InternalError("unhandled expression kind");
  }

  Result<Ternary> EvaluateInSubquery(const Expression& expr) {
    if (expr.subquery == nullptr) return InternalError("IN without subquery");
    ValueVector probe;
    for (const ColumnRef& column : expr.in_columns) {
      DBRE_ASSIGN_OR_RETURN(Value value, ResolveColumnValue(column));
      probe.push_back(std::move(value));
    }
    DBRE_ASSIGN_OR_RETURN(ResultSet rows, ExecuteStatement(*expr.subquery));
    bool saw_unknown = false;
    for (const ValueVector& row : rows.rows) {
      if (row.size() != probe.size()) {
        return InvalidArgumentError("IN subquery arity mismatch");
      }
      Ternary match = Ternary::kTrue;
      for (size_t i = 0; i < probe.size() && match != Ternary::kFalse;
           ++i) {
        if (probe[i].is_null() || row[i].is_null()) {
          match = And(match, Ternary::kUnknown);
          continue;
        }
        DBRE_ASSIGN_OR_RETURN(int cmp, CompareValues(probe[i], row[i]));
        match = And(match, cmp == 0 ? Ternary::kTrue : Ternary::kFalse);
      }
      if (match == Ternary::kTrue) {
        return expr.negated ? Ternary::kFalse : Ternary::kTrue;
      }
      if (match == Ternary::kUnknown) saw_unknown = true;
    }
    if (saw_unknown) return Ternary::kUnknown;
    return expr.negated ? Ternary::kTrue : Ternary::kFalse;
  }

  const Database& database_;
  const ExecutorOptions& options_;
  std::vector<Frame*> env_;
};

}  // namespace

std::string ResultSet::ToString() const {
  // Compute column widths.
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  std::vector<std::vector<std::string>> rendered;
  for (const ValueVector& row : rows) {
    std::vector<std::string> cells;
    for (size_t c = 0; c < row.size(); ++c) {
      cells.push_back(row[c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], cells[c].size());
    }
    rendered.push_back(std::move(cells));
  }
  std::ostringstream os;
  for (size_t c = 0; c < columns.size(); ++c) {
    os << (c ? " | " : "") << columns[c]
       << std::string(widths[c] - columns[c].size(), ' ');
  }
  os << "\n";
  for (size_t c = 0; c < columns.size(); ++c) {
    os << (c ? "-+-" : "") << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& cells : rendered) {
    for (size_t c = 0; c < cells.size(); ++c) {
      size_t width = c < widths.size() ? widths[c] : cells[c].size();
      os << (c ? " | " : "") << cells[c]
         << std::string(width - std::min(width, cells[c].size()), ' ');
    }
    os << "\n";
  }
  return os.str();
}

bool ResultSet::SameRows(const ResultSet& other) const {
  std::vector<ValueVector> a = rows, b = other.rows;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

Result<ResultSet> Execute(const Database& database,
                          const SelectStatement& statement,
                          const ExecutorOptions& options) {
  Evaluator evaluator(database, options);
  return evaluator.ExecuteStatement(statement);
}

Result<ResultSet> ExecuteQuery(const Database& database,
                               std::string_view sql,
                               const ExecutorOptions& options) {
  DBRE_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> statement,
                        ParseSelect(sql));
  return Execute(database, *statement, options);
}

Result<size_t> CountDistinct(const Database& database,
                             const std::string& relation,
                             const std::vector<std::string>& attributes) {
  if (attributes.empty()) {
    return InvalidArgumentError("count distinct over no attributes");
  }
  // ‖r[X]‖ answers straight from the table's memoized encoded engine when
  // the attributes resolve and the table encodes (NULL-skipping distinct
  // semantics match the SELECT DISTINCT evaluation below, which remains
  // both the fallback and the crosscheck — see tests/sql/executor_test.cc).
  DBRE_ASSIGN_OR_RETURN(const Table* table, database.GetTable(relation));
  std::vector<size_t> columns;
  columns.reserve(attributes.size());
  bool resolved = true;
  for (const std::string& attribute : attributes) {
    auto index = table->schema().AttributeIndex(attribute);
    if (!index.ok()) {
      resolved = false;  // the SQL path reports the resolution error
      break;
    }
    columns.push_back(*index);
  }
  if (resolved) {
    auto cache = table->query_cache();
    if (cache.ok()) return (*cache)->DistinctCount(columns);
  }
  // COUNT(DISTINCT a, b, ...) is not portable SQL; evaluate as the number
  // of distinct non-NULL projections via SELECT DISTINCT.
  std::string sql = "SELECT DISTINCT " + Join(attributes, ", ") + " FROM " +
                    relation;
  DBRE_ASSIGN_OR_RETURN(ResultSet rows, ExecuteQuery(database, sql));
  size_t count = 0;
  for (const ValueVector& row : rows.rows) {
    bool has_null = std::any_of(row.begin(), row.end(),
                                [](const Value& v) { return v.is_null(); });
    if (!has_null) ++count;
  }
  return count;
}

}  // namespace dbre::sql
