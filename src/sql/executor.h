// Executing the legacy SELECT subset against a Database.
//
// The paper defines its one extension primitive operationally: ‖r[X]‖ "can
// be computed in any SQL-like language as SELECT COUNT(DISTINCT X) FROM R".
// This executor makes that literal: it evaluates the parsed subset —
// multi-table FROM with conjunctive/disjunctive WHERE, JOIN..ON, IN and
// (correlated) EXISTS subqueries, DISTINCT, COUNT, INTERSECT/UNION/MINUS —
// with standard SQL three-valued NULL semantics for comparisons.
//
// The reference implementation is a tuple-at-a-time nested-loop evaluator
// over the catalog; it exists for fidelity and for tooling (the workbench,
// tests cross-checking the algebra layer). Statements whose predicates
// compile into per-dictionary-code ternary truth tables take a batched
// columnar fast path over the table's encoded image instead — same
// results, same errors, observable via dbre_executor_paths_total — and
// fall back to the reference loop otherwise.
#ifndef DBRE_SQL_EXECUTOR_H_
#define DBRE_SQL_EXECUTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "sql/ast.h"

namespace dbre::sql {

// A query result: named columns + rows.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<ValueVector> rows;

  size_t NumRows() const { return rows.size(); }

  // Renders an aligned ASCII table (for the workbench / examples).
  std::string ToString() const;

  // Rows as a set (for set-operation tests); order-insensitive compare.
  bool SameRows(const ResultSet& other) const;
};

struct ExecutorOptions {
  // Safety valve for runaway cross products in tooling contexts; 0 = off.
  size_t max_intermediate_rows = 0;
  // Forces the tuple-at-a-time reference enumeration. Results are
  // identical either way; the crosscheck tests flip this to prove it.
  bool disable_vectorized = false;
};

// Executes a parsed statement.
Result<ResultSet> Execute(const Database& database,
                          const SelectStatement& statement,
                          const ExecutorOptions& options = {});

// Parses and executes `sql` (single statement).
Result<ResultSet> ExecuteQuery(const Database& database,
                               std::string_view sql,
                               const ExecutorOptions& options = {});

// The paper's ‖·‖, computed through the executor:
// SELECT COUNT(DISTINCT x1, ..., xn) FROM relation.
Result<size_t> CountDistinct(const Database& database,
                             const std::string& relation,
                             const std::vector<std::string>& attributes);

}  // namespace dbre::sql

#endif  // DBRE_SQL_EXECUTOR_H_
