// Error-handling primitives for the dbre library.
//
// The library does not use exceptions (per the project style rules). Fallible
// operations return a `Status`, or a `Result<T>` when they also produce a
// value. Both are cheap to move and carry a code plus a human-readable
// message.
#ifndef DBRE_COMMON_STATUS_H_
#define DBRE_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace dbre {

// Machine-inspectable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named relation/attribute/file does not exist
  kAlreadyExists,     // duplicate relation/attribute/constraint
  kFailedPrecondition,// operation not valid for the current object state
  kOutOfRange,        // index past the end
  kParseError,        // SQL / CSV text could not be parsed
  kIoError,           // filesystem failure
  kInternal,          // invariant violation inside the library
};

// Returns a stable lowercase name for `code` ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Default-constructed `Status` is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring absl::*Error.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ParseError(std::string message);
Status IoError(std::string message);
Status InternalError(std::string message);

// A value of type T or an error Status. Accessing the value of a non-OK
// Result aborts the program (the caller must check `ok()` first).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      // A Result constructed from a Status must carry an error.
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) std::abort();
  }

  std::variant<T, Status> data_;
};

}  // namespace dbre

// Evaluates `expr` (a Status) and returns it from the enclosing function if
// it is not OK.
#define DBRE_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::dbre::Status _dbre_status = (expr);           \
    if (!_dbre_status.ok()) return _dbre_status;    \
  } while (false)

// Evaluates `rexpr` (a Result<T>), returns its Status on error, otherwise
// move-assigns the value into `lhs`.
#define DBRE_ASSIGN_OR_RETURN(lhs, rexpr)           \
  DBRE_ASSIGN_OR_RETURN_IMPL_(                      \
      DBRE_STATUS_CONCAT_(_dbre_result, __LINE__), lhs, rexpr)

#define DBRE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define DBRE_STATUS_CONCAT_(a, b) DBRE_STATUS_CONCAT_IMPL_(a, b)
#define DBRE_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // DBRE_COMMON_STATUS_H_
