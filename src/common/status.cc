#include "common/status.h"

namespace dbre {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace dbre
