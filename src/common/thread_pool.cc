#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace dbre {

size_t ThreadPool::HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: worker threads may outlive main()'s static teardown
  // (e.g. a detached server loop), and joining at exit from a static
  // destructor is a deadlock risk on some platforms.
  static ThreadPool* pool = new ThreadPool(HardwareThreads());
  return *pool;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

namespace {

// State shared between the calling thread and its helper tasks. Held by
// shared_ptr so a helper that the pool schedules after the caller already
// returned (possible when the caller drained every index itself) touches
// only memory that is still alive; such a late helper sees next >= n and
// never invokes fn.
struct ParallelForState {
  std::function<void(size_t)> fn;
  size_t n = 0;
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex mutex;
  std::condition_variable drained;
  size_t started = 0;   // helper tasks that began running
  size_t finished = 0;  // helper tasks that finished draining
  std::exception_ptr error;

  // Claims indexes from the shared counter until they run out; load
  // imbalance between items self-corrects. The first exception aborts
  // further claims and is stashed for the caller to rethrow.
  void Drain() {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (abort.load(std::memory_order_relaxed)) break;
      try {
        fn(i);
      } catch (...) {
        abort.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (num_threads == 0) {
    num_threads =
        pool != nullptr ? pool->num_threads() : ThreadPool::HardwareThreads();
  }
  if (n <= 1 || num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (num_threads > n) num_threads = n;
  if (pool == nullptr) pool = &ThreadPool::Shared();

  auto state = std::make_shared<ParallelForState>();
  state->fn = fn;
  state->n = n;
  // num_threads - 1 helpers: the calling thread is always the last worker,
  // which guarantees progress even when the pool is saturated (including
  // by an enclosing ParallelFor running on one of its workers).
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    pool->Submit([state] {
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        ++state->started;
      }
      state->Drain();
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        ++state->finished;
      }
      state->drained.notify_all();
    });
  }
  state->Drain();
  // Wait for started helpers only. A helper still queued cannot hold an
  // index (the counter is exhausted by now), so skipping it cannot lose
  // work or an exception; waiting for it could deadlock a nested call on
  // a saturated pool.
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->drained.wait(lock,
                        [&] { return state->started == state->finished; });
    // Move, don't copy: a helper scheduled after we return drops the last
    // reference to `state` from a pool thread, and it must not be the one
    // releasing the exception object the caller is about to inspect.
    error = std::move(state->error);
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  ParallelFor(nullptr, n, num_threads, fn);
}

}  // namespace dbre
