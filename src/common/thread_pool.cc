#include "common/thread_pool.h"

#include <atomic>

namespace dbre {

size_t ThreadPool::HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (num_threads == 0) num_threads = ThreadPool::HardwareThreads();
  if (n <= 1 || num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (num_threads > n) num_threads = n;
  ThreadPool pool(num_threads);
  // One puller task per worker; each drains a shared atomic index so load
  // imbalance between items self-corrects.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  for (size_t t = 0; t < num_threads; ++t) {
    pool.Submit([next, n, &fn] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace dbre
