#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

namespace dbre {
namespace {

// Parses a non-negative integer out of [begin, end); -1 on garbage.
int64_t ParseNumber(std::string_view text) {
  if (text.empty() || text.size() > 12) return -1;
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // never destroyed
  return *instance;
}

Failpoints::Failpoints() {
  if (const char* seed = std::getenv("DBRE_FAILPOINT_SEED")) {
    SetSeed(std::strtoull(seed, nullptr, 10));
  }
  if (const char* specs = std::getenv("DBRE_FAILPOINTS")) {
    Status armed = ArmSpecs(specs);
    if (!armed.ok()) {
      std::fprintf(stderr, "DBRE_FAILPOINTS ignored: %s\n",
                   armed.ToString().c_str());
    }
  }
}

Result<Failpoints::Point> Failpoints::ParseSpec(const std::string& spec) {
  Point point;
  point.spec = spec;
  std::string_view rest = Trim(spec);
  if (rest.empty()) return InvalidArgumentError("empty failpoint spec");

  // Trailing modifier first: *N, @N, #N, %P.
  size_t mod = rest.find_last_of("*@#%");
  if (mod != std::string_view::npos && mod > 0) {
    int64_t n = ParseNumber(rest.substr(mod + 1));
    if (n < 0) {
      return InvalidArgumentError("failpoint spec '" + spec +
                                  "': bad modifier count");
    }
    switch (rest[mod]) {
      case '*': point.when = When::kFirstN; break;
      case '@': point.when = When::kEveryN; break;
      case '#': point.when = When::kOnNth; break;
      case '%': point.when = When::kProbability; break;
    }
    point.param = static_cast<uint64_t>(n);
    if (point.when == When::kProbability && point.param > 100) {
      return InvalidArgumentError("failpoint spec '" + spec +
                                  "': probability over 100");
    }
    rest = rest.substr(0, mod);
  }

  // Optional (arg).
  int64_t arg = -1;
  size_t paren = rest.find('(');
  if (paren != std::string_view::npos) {
    if (rest.back() != ')') {
      return InvalidArgumentError("failpoint spec '" + spec +
                                  "': unclosed argument");
    }
    arg = ParseNumber(rest.substr(paren + 1, rest.size() - paren - 2));
    if (arg < 0) {
      return InvalidArgumentError("failpoint spec '" + spec +
                                  "': bad argument");
    }
    rest = rest.substr(0, paren);
  }

  if (rest == "error") {
    point.action = Action::kError;
  } else if (rest == "delay") {
    point.action = Action::kDelay;
    point.delay_ms = arg < 0 ? 1 : arg;
  } else if (rest == "torn") {
    point.action = Action::kTorn;
    point.torn_bytes = arg < 0 ? 0 : static_cast<size_t>(arg);
  } else if (rest == "crash") {
    point.action = Action::kCrash;
  } else if (rest == "off") {
    point.action = Action::kOff;
  } else {
    return InvalidArgumentError("failpoint spec '" + spec +
                                "': unknown action '" + std::string(rest) +
                                "'");
  }
  return point;
}

Status Failpoints::Arm(const std::string& point, const std::string& spec) {
  DBRE_ASSIGN_OR_RETURN(Point parsed, ParseSpec(spec));
  std::lock_guard<std::mutex> lock(mutex_);
  points_[point] = std::move(parsed);
  armed_.store(points_.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status Failpoints::ArmSpecs(const std::string& specs) {
  // Parse every entry before arming any: a bad entry must reject the
  // whole list, never leave a prefix of it armed ("DBRE_FAILPOINTS
  // ignored" has to mean ignored, and the wire `failpoint` command must
  // be all-or-nothing).
  std::vector<std::pair<std::string, Point>> parsed;
  size_t pos = 0;
  while (pos <= specs.size()) {
    size_t semi = specs.find(';', pos);
    std::string_view entry =
        Trim(std::string_view(specs).substr(
            pos, (semi == std::string::npos ? specs.size() : semi) - pos));
    pos = semi == std::string::npos ? specs.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("failpoint entry '" + std::string(entry) +
                                  "' is not point=spec");
    }
    DBRE_ASSIGN_OR_RETURN(
        Point point, ParseSpec(std::string(Trim(entry.substr(eq + 1)))));
    parsed.emplace_back(std::string(Trim(entry.substr(0, eq))),
                        std::move(point));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : parsed) points_[name] = std::move(point);
  armed_.store(points_.size(), std::memory_order_relaxed);
  return Status::Ok();
}

bool Failpoints::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool erased = points_.erase(point) > 0;
  armed_.store(points_.size(), std::memory_order_relaxed);
  return erased;
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_.store(0, std::memory_order_relaxed);
}

void Failpoints::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_.seed(seed);
}

std::vector<Failpoints::PointState> Failpoints::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PointState> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    out.push_back({name, point.spec, point.hits, point.triggers});
  }
  return out;
}

FailpointHit Failpoints::Hit(std::string_view point) {
  int64_t delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end()) return {};
    Point& p = it->second;
    ++p.hits;
    bool fire = false;
    switch (p.when) {
      case When::kAlways: fire = true; break;
      case When::kFirstN: fire = p.hits <= p.param; break;
      case When::kEveryN: fire = p.param > 0 && p.hits % p.param == 0; break;
      case When::kOnNth: fire = p.hits == p.param; break;
      case When::kProbability: fire = rng_() % 100 < p.param; break;
    }
    if (!fire || p.action == Action::kOff) return {};
    ++p.triggers;
    switch (p.action) {
      case Action::kError:
        return {FailpointHit::Action::kError, 0};
      case Action::kTorn:
        return {FailpointHit::Action::kTorn, p.torn_bytes};
      case Action::kCrash:
        // No destructors, no flushes — indistinguishable from SIGKILL at
        // this instruction, which is the point.
        std::_Exit(42);
      case Action::kDelay:
        delay_ms = p.delay_ms;
        break;
      case Action::kOff:
        return {};
    }
  }
  // Sleep outside the registry lock so a delayed point stalls only its
  // own call site.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return {};
}

Status FailpointError(std::string_view point) {
  FailpointHit hit = Failpoints::Check(point);
  if (hit.action == FailpointHit::Action::kNone) return Status::Ok();
  return IoError("injected failure (failpoint " + std::string(point) + ")");
}

}  // namespace dbre
