// Bounded retry with exponential backoff for transient I/O.
//
// The store's syscall edges (journal append/fsync, snapshot write) wrap
// their one-shot attempts in RetryWithBackoff: a kIoError is retried up to
// max_attempts times with doubling sleeps, anything else (bad arguments,
// precondition violations — and success) returns immediately. The caller's
// op must be safe to re-run as a whole; repairing partial effects between
// attempts (e.g. truncating a torn journal line) is the op's job.
#ifndef DBRE_COMMON_RETRY_H_
#define DBRE_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/status.h"

namespace dbre {

struct RetryPolicy {
  // Total attempts, first try included. <= 1 means no retries.
  int max_attempts = 4;
  int64_t initial_backoff_ms = 1;
  int64_t max_backoff_ms = 64;  // doubling is capped here
  // Called before each re-attempt (never before the first) with the
  // 1-based number of the attempt that just failed and its status. Cold
  // path only — a std::function is fine.
  std::function<void(int attempt, const Status& status)> on_retry;
};

// Transient = worth retrying. Everything the syscall edges surface as
// "the disk/socket said no right now" is kIoError; logic errors are not.
inline bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

// Runs `op` (any callable returning Status) until it succeeds, fails
// non-retryably, or exhausts the policy. Returns the last status.
template <typename Op>
Status RetryWithBackoff(const RetryPolicy& policy, Op&& op) {
  const int attempts = std::max(policy.max_attempts, 1);
  int64_t backoff_ms = policy.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    Status status = op();
    if (status.ok() || !IsRetryableStatus(status) || attempt >= attempts) {
      return status;
    }
    if (policy.on_retry) policy.on_retry(attempt, status);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(backoff_ms, policy.max_backoff_ms)));
    }
    backoff_ms = std::min(backoff_ms * 2, policy.max_backoff_ms);
  }
}

}  // namespace dbre

#endif  // DBRE_COMMON_RETRY_H_
