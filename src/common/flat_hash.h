// Minimal open-addressing hash containers over 64-bit keys.
//
// The dictionary encoder and the cross-table intersection primitives sit on
// the hot path of every extension query; a node-based std::unordered_map
// pays one allocation per distinct key, which dominates their run time. In
// both places the number of keys is bounded up front (at most one per row,
// or exactly the dictionary size), so these containers take the expected
// maximum at construction, size the slot array once to a load factor of at
// most 2/3, and never rehash or allocate again. Linear probing with
// Fibonacci (multiply-shift) hashing; no erase.
#ifndef DBRE_COMMON_FLAT_HASH_H_
#define DBRE_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbre {

namespace flat_hash_internal {

constexpr uint64_t kMultiplier = 0x9E3779B97F4A7C15ull;  // 2^64 / φ

// Capacity: smallest power of two with expected/capacity <= 2/3.
inline int CapacityBits(size_t expected) {
  int bits = 4;
  while ((size_t{1} << bits) < expected + expected / 2 + 1) ++bits;
  return bits;
}

}  // namespace flat_hash_internal

// key → uint32 value map, fixed capacity, insert-or-find only.
class FlatMap64 {
 public:
  explicit FlatMap64(size_t expected) {
    int bits = flat_hash_internal::CapacityBits(expected);
    size_t capacity = size_t{1} << bits;
    shift_ = 64 - bits;
    mask_ = capacity - 1;
    keys_.resize(capacity);
    values_.resize(capacity);
    used_.assign(capacity, 0);
  }

  // The value stored for `key`, storing `fresh` first if the key is new.
  // The caller detects an insert by comparing the result against `fresh`.
  uint32_t FindOrInsert(uint64_t key, uint32_t fresh) {
    size_t i = Start(key);
    while (used_[i]) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    keys_[i] = key;
    values_[i] = fresh;
    return fresh;
  }

 private:
  size_t Start(uint64_t key) const {
    return (key * flat_hash_internal::kMultiplier) >> shift_;
  }

  int shift_;
  size_t mask_;
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  std::vector<uint8_t> used_;
};

// Membership-only variant.
class FlatSet64 {
 public:
  explicit FlatSet64(size_t expected) {
    int bits = flat_hash_internal::CapacityBits(expected);
    size_t capacity = size_t{1} << bits;
    shift_ = 64 - bits;
    mask_ = capacity - 1;
    keys_.resize(capacity);
    used_.assign(capacity, 0);
  }

  void Insert(uint64_t key) {
    size_t i = Start(key);
    while (used_[i]) {
      if (keys_[i] == key) return;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    keys_[i] = key;
  }

  bool Contains(uint64_t key) const {
    size_t i = Start(key);
    while (used_[i]) {
      if (keys_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  // Hints the cache that `key`'s home slot is about to be probed. The
  // batched membership kernels issue a block of these ahead of the actual
  // Contains calls so the (random-access) slot loads overlap.
  void Prefetch(uint64_t key) const {
    size_t i = Start(key);
    __builtin_prefetch(used_.data() + i);
    __builtin_prefetch(keys_.data() + i);
  }

 private:
  size_t Start(uint64_t key) const {
    return (key * flat_hash_internal::kMultiplier) >> shift_;
  }

  int shift_;
  size_t mask_;
  std::vector<uint64_t> keys_;
  std::vector<uint8_t> used_;
};

}  // namespace dbre

#endif  // DBRE_COMMON_FLAT_HASH_H_
