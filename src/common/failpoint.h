// Deterministic fault injection: a process-wide registry of named
// failpoints that code at syscall-shaped edges consults before doing the
// real work.
//
// A failpoint is armed with a spec string:
//
//   action[(arg)][modifier]
//
//   actions    error          fail the operation (kIoError at the site)
//              delay(MS)      sleep MS milliseconds, then proceed
//              torn(BYTES)    write only BYTES bytes, then fail — exercises
//                             partial-write repair paths (sites without a
//                             buffer treat it as error)
//              crash          std::_Exit the process, no destructors — the
//                             moral equivalent of SIGKILL at this line
//              off            count hits but never fire
//   modifiers  *N             fire on the first N hits only
//              @N             fire on every Nth hit
//              #N             fire on exactly the Nth hit
//              %P             fire with probability P percent, drawn from
//                             the seeded RNG (SetSeed / DBRE_FAILPOINT_SEED)
//
// Example specs: "error", "error*2", "crash#5", "delay(50)%10",
// "torn(7)#1".
//
// Arming happens three ways: the DBRE_FAILPOINTS environment variable
// ("point=spec;point=spec", parsed once at first use), the `failpoint`
// wire command of the dbred service, or Arm()/ArmSpecs() from tests.
// DBRE_FAILPOINT_SEED seeds the probability RNG so %P schedules replay
// exactly.
//
// Cost when unarmed: Check() is one relaxed atomic load and a branch —
// cheap enough to sit on every journal append and socket write. The
// catalog of points wired through the tree is in docs/ROBUSTNESS.md.
#ifndef DBRE_COMMON_FAILPOINT_H_
#define DBRE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dbre {

// What a triggered failpoint asks the site to do. kNone also covers
// delay (the sleep already happened inside Check) and armed-but-not-fired.
struct FailpointHit {
  enum class Action { kNone, kError, kTorn };
  Action action = Action::kNone;
  // For kTorn: how many bytes the site should write before failing.
  size_t torn_bytes = 0;
};

class Failpoints {
 public:
  // The process-wide instance. First use parses DBRE_FAILPOINTS /
  // DBRE_FAILPOINT_SEED from the environment.
  static Failpoints& Instance();

  // The one call sites make. Fast path (nothing armed anywhere): one
  // relaxed load. kCrash fires inside (std::_Exit), so it never returns
  // through here.
  static FailpointHit Check(std::string_view point) {
    Failpoints& fps = Instance();
    if (fps.armed_.load(std::memory_order_relaxed) == 0) return {};
    return fps.Hit(point);
  }

  // Arms one point. Replaces any existing spec (hit counters reset).
  Status Arm(const std::string& point, const std::string& spec);

  // Arms a semicolon-separated list of "point=spec" entries.
  Status ArmSpecs(const std::string& specs);

  // Disarms one point; false if it was not armed.
  bool Disarm(const std::string& point);
  void DisarmAll();

  // Seeds the RNG behind %P modifiers (defaults to a fixed seed, so even
  // unseeded probabilistic schedules replay).
  void SetSeed(uint64_t seed);

  struct PointState {
    std::string point;
    std::string spec;
    uint64_t hits = 0;      // times a site consulted this point
    uint64_t triggers = 0;  // times it fired
  };
  std::vector<PointState> List() const;

 private:
  enum class Action { kOff, kError, kDelay, kTorn, kCrash };
  enum class When { kAlways, kFirstN, kEveryN, kOnNth, kProbability };

  struct Point {
    Action action = Action::kOff;
    When when = When::kAlways;
    uint64_t param = 0;   // N of *N/@N/#N, or P of %P
    int64_t delay_ms = 0;
    size_t torn_bytes = 0;
    std::string spec;
    uint64_t hits = 0;
    uint64_t triggers = 0;
  };

  Failpoints();

  FailpointHit Hit(std::string_view point);
  static Result<Point> ParseSpec(const std::string& spec);

  // Count of armed points, mirrored out of points_ so Check() can test it
  // without the mutex.
  std::atomic<uint64_t> armed_{0};

  mutable std::mutex mutex_;
  std::map<std::string, Point, std::less<>> points_;
  std::mt19937_64 rng_{0x5bd1e995};
};

// Convenience for error-only sites: Ok when `point` does not fire, a
// kIoError naming the point when it does (torn counts as error here).
Status FailpointError(std::string_view point);

}  // namespace dbre

#endif  // DBRE_COMMON_FAILPOINT_H_
