// Small string helpers shared across the dbre library.
#ifndef DBRE_COMMON_STRING_UTIL_H_
#define DBRE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dbre {

// Splits `text` on `delimiter`; an empty input yields a single empty piece.
std::vector<std::string> Split(std::string_view text, char delimiter);

// Splits and trims ASCII whitespace from every piece, dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

// Joins `pieces` with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

// ASCII lowercase / uppercase copies.
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

}  // namespace dbre

#endif  // DBRE_COMMON_STRING_UTIL_H_
