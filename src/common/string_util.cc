#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace dbre {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitAndTrim(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  for (const std::string& raw : Split(text, delimiter)) {
    std::string_view trimmed = TrimWhitespace(raw);
    if (!trimmed.empty()) pieces.emplace_back(trimmed);
  }
  return pieces;
}

std::string_view TrimWhitespace(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace dbre
