// A small fixed-size thread pool plus a ParallelFor helper.
//
// The discovery algorithms fan out independent extension valuations (one
// per equi-join, one per candidate FD) and then consume the results in the
// original input order, so parallel execution never changes an output: the
// worker writes its result into a caller-provided slot indexed by task id,
// and the sequential consumer reads the slots in order. Tasks submitted
// directly to a ThreadPool must not throw (an escaped exception terminates
// the worker thread); ParallelFor bodies may throw — the first exception
// is captured, remaining iterations are skipped, and it rethrows on the
// calling thread once every started worker has drained.
#ifndef DBRE_COMMON_THREAD_POOL_H_
#define DBRE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbre {

class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 means HardwareThreads().
  explicit ThreadPool(size_t num_threads = 0);

  // Blocks until every submitted task has finished.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; runs on some worker, in no particular order relative
  // to other tasks.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void Wait();

  // std::thread::hardware_concurrency(), never 0.
  static size_t HardwareThreads();

  // A lazily created process-wide pool with HardwareThreads() workers.
  // ParallelFor calls without a caller-supplied pool run here, so repeated
  // parallel sections reuse warm threads instead of spawning and joining a
  // fresh pool per call.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0), ..., fn(n-1) across `num_threads` workers (0 → hardware
// concurrency) and blocks until all calls return. With n <= 1 or one
// thread, runs inline on the calling thread. The assignment of indexes to
// threads is nondeterministic; determinism is the caller's job — write
// results into slot i and consume the slots in order.
//
// The calling thread always participates as one of the workers (helpers
// run on ThreadPool::Shared()), so a saturated — or nested — parallel
// section still makes progress instead of deadlocking. If any fn call
// throws, the first exception is rethrown here after in-flight iterations
// finish; iterations not yet started are skipped.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

// Same, with helper tasks submitted to a caller-supplied pool instead of
// the shared one (`pool == nullptr` falls back to ThreadPool::Shared()).
// Safe to call concurrently and reentrantly on the same pool: each call
// waits only for its own started helpers, never for the pool to go idle.
void ParallelFor(ThreadPool* pool, size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace dbre

#endif  // DBRE_COMMON_THREAD_POOL_H_
