// A small fixed-size thread pool plus a ParallelFor helper.
//
// The discovery algorithms fan out independent extension valuations (one
// per equi-join, one per candidate FD) and then consume the results in the
// original input order, so parallel execution never changes an output: the
// worker writes its result into a caller-provided slot indexed by task id,
// and the sequential consumer reads the slots in order. Tasks must not
// throw (the library is exception-free) and must handle their own errors
// via Status/Result slots.
#ifndef DBRE_COMMON_THREAD_POOL_H_
#define DBRE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbre {

class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 means HardwareThreads().
  explicit ThreadPool(size_t num_threads = 0);

  // Blocks until every submitted task has finished.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task; runs on some worker, in no particular order relative
  // to other tasks.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void Wait();

  // std::thread::hardware_concurrency(), never 0.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0), ..., fn(n-1) across `num_threads` workers (0 → hardware
// concurrency) and blocks until all calls return. With n <= 1 or one
// thread, runs inline on the calling thread. The assignment of indexes to
// threads is nondeterministic; determinism is the caller's job — write
// results into slot i and consume the slots in order.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace dbre

#endif  // DBRE_COMMON_THREAD_POOL_H_
