file(REMOVE_RECURSE
  "CMakeFiles/eer_model_test.dir/eer/model_test.cc.o"
  "CMakeFiles/eer_model_test.dir/eer/model_test.cc.o.d"
  "eer_model_test"
  "eer_model_test.pdb"
  "eer_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eer_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
