# Empty compiler generated dependencies file for eer_model_test.
# This may be replaced when dependencies are built.
