# Empty compiler generated dependencies file for key_miner_test.
# This may be replaced when dependencies are built.
