file(REMOVE_RECURSE
  "CMakeFiles/key_miner_test.dir/deps/key_miner_test.cc.o"
  "CMakeFiles/key_miner_test.dir/deps/key_miner_test.cc.o.d"
  "key_miner_test"
  "key_miner_test.pdb"
  "key_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
