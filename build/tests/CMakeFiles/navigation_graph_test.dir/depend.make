# Empty dependencies file for navigation_graph_test.
# This may be replaced when dependencies are built.
