file(REMOVE_RECURSE
  "CMakeFiles/navigation_graph_test.dir/core/navigation_graph_test.cc.o"
  "CMakeFiles/navigation_graph_test.dir/core/navigation_graph_test.cc.o.d"
  "navigation_graph_test"
  "navigation_graph_test.pdb"
  "navigation_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigation_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
