file(REMOVE_RECURSE
  "CMakeFiles/library_example_test.dir/workload/library_example_test.cc.o"
  "CMakeFiles/library_example_test.dir/workload/library_example_test.cc.o.d"
  "library_example_test"
  "library_example_test.pdb"
  "library_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
