file(REMOVE_RECURSE
  "CMakeFiles/token_test.dir/sql/token_test.cc.o"
  "CMakeFiles/token_test.dir/sql/token_test.cc.o.d"
  "token_test"
  "token_test.pdb"
  "token_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
