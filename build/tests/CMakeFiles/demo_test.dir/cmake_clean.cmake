file(REMOVE_RECURSE
  "CMakeFiles/demo_test.dir/workload/demo_test.cc.o"
  "CMakeFiles/demo_test.dir/workload/demo_test.cc.o.d"
  "demo_test"
  "demo_test.pdb"
  "demo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
