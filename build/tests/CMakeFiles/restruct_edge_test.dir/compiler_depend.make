# Empty compiler generated dependencies file for restruct_edge_test.
# This may be replaced when dependencies are built.
